//! # eole — a full reproduction of *EOLE: Paving the Way for an Effective
//! Implementation of Value Prediction* (Perais & Seznec, ISCA 2014)
//!
//! This umbrella crate re-exports the whole stack:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`isa`] | 64-bit RISC-style µ-op ISA, assembler builder, functional machine, trace generation |
//! | [`predictors`] | VTAGE-2DStride hybrid value predictor + FPC confidence, TAGE + BTB + RAS, Store Sets |
//! | [`mem`] | L1I/L1D/L2 caches, MSHRs, stride prefetcher, DRAM model |
//! | [`core`] | the cycle-level EOLE pipeline (Early Execution, OoO engine, Late Execution/Validation/Training), banked PRF, §6 complexity model |
//! | [`workloads`] | 19 synthetic kernels mirroring the paper's Table 3 suite |
//! | [`stats`] | result tables and summary statistics |
//!
//! ## Quickstart
//!
//! ```no_run
//! use eole::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = workload_by_name("gzip").expect("known workload");
//! let trace = PreparedTrace::new(workload.trace(20_000)?);
//!
//! let mut baseline = Simulator::new(&trace, CoreConfig::baseline_vp_6_64())?;
//! baseline.run(u64::MAX)?;
//!
//! let mut eole = Simulator::new(&trace, CoreConfig::eole_4_64())?;
//! eole.run(u64::MAX)?;
//!
//! // A 4-issue EOLE core keeps up with the 6-issue VP baseline.
//! assert!(eole.stats().ipc() > 0.5 * baseline.stats().ipc());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use eole_core as core;
pub use eole_isa as isa;
pub use eole_mem as mem;
pub use eole_predictors as predictors;
pub use eole_stats as stats;
pub use eole_workloads as workloads;

/// The most common imports for driving the simulator.
pub mod prelude {
    pub use eole_core::complexity::{PortCount, PrfPortModel};
    pub use eole_core::config::{CoreConfig, EoleConfig, ValuePredictorKind, VpConfig};
    pub use eole_core::pipeline::{PreparedTrace, SimError, Simulator};
    pub use eole_core::stats::SimStats;
    pub use eole_isa::{
        generate_trace, FpReg, IntReg, Machine, Program, ProgramBuilder, Trace,
    };
    pub use eole_stats::report::{Cell, ColumnSpec, ExperimentReport};
    pub use eole_stats::summary::geometric_mean;
    pub use eole_stats::table::Table;
    pub use eole_workloads::{all_workloads, workload_by_name, Workload};
}
