//! Sparse 64-bit byte-addressable memory.
//!
//! Backed by 4 KiB pages allocated on demand; unwritten memory reads as
//! zero. Accesses may straddle page boundaries.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sparse memory image used by the functional [`Machine`](crate::Machine).
#[derive(Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of 4 KiB pages currently materialized.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, materializing the page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads `N ≤ 8` bytes little-endian.
    pub fn read_le(&self, addr: u64, size: usize) -> u64 {
        debug_assert!(size <= 8);
        let mut v = 0u64;
        for i in 0..size {
            v |= (self.read_u8(addr.wrapping_add(i as u64)) as u64) << (8 * i);
        }
        v
    }

    /// Writes `N ≤ 8` bytes little-endian.
    pub fn write_le(&mut self, addr: u64, size: usize, value: u64) {
        debug_assert!(size <= 8);
        for i in 0..size {
            self.write_u8(addr.wrapping_add(i as u64), (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 64-bit word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_le(addr, 8, value);
    }

    /// Copies a byte slice into memory starting at `base`.
    pub fn load_bytes(&mut self, base: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(base.wrapping_add(i as u64), *b);
        }
    }
}

impl std::fmt::Debug for SparseMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SparseMemory({} pages)", self.pages.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn round_trip_u64() {
        let mut m = SparseMemory::new();
        m.write_u64(64, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(64), 0x0123_4567_89ab_cdef);
        // Little-endian byte order.
        assert_eq!(m.read_u8(64), 0xef);
        assert_eq!(m.read_u8(71), 0x01);
    }

    #[test]
    fn page_straddling_access() {
        let mut m = SparseMemory::new();
        let addr = (1 << 12) - 4; // 4 bytes before a page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn partial_width_reads() {
        let mut m = SparseMemory::new();
        m.write_le(16, 4, 0xaabb_ccdd);
        assert_eq!(m.read_le(16, 4), 0xaabb_ccdd);
        assert_eq!(m.read_le(16, 2), 0xccdd);
        assert_eq!(m.read_le(16, 8), 0xaabb_ccdd); // upper bytes untouched = 0
    }

    #[test]
    fn load_bytes_places_slice() {
        let mut m = SparseMemory::new();
        m.load_bytes(100, &[1, 2, 3, 4]);
        assert_eq!(m.read_le(100, 4), 0x0403_0201);
    }

    proptest! {
        #[test]
        fn write_then_read_any_width(addr in 0u64..1u64 << 40, size in 1usize..=8, value: u64) {
            let mut m = SparseMemory::new();
            m.write_le(addr, size, value);
            let mask = if size == 8 { u64::MAX } else { (1u64 << (8 * size)) - 1 };
            prop_assert_eq!(m.read_le(addr, size), value & mask);
        }

        #[test]
        fn disjoint_writes_do_not_interfere(a in 0u64..1u64 << 32, v1: u64, v2: u64) {
            let b = a.wrapping_add(8);
            let mut m = SparseMemory::new();
            m.write_u64(a, v1);
            m.write_u64(b, v2);
            prop_assert_eq!(m.read_u64(a), v1);
            prop_assert_eq!(m.read_u64(b), v2);
        }
    }
}
