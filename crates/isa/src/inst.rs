//! Instruction definition: opcodes, operand shapes and timing classes.
//!
//! Every instruction is one micro-op. The timing model cares about the
//! [`InstClass`] (which functional-unit pool and latency it uses) and about a
//! handful of predicates: whether a µ-op is *value-prediction eligible*
//! (writes a register readable by a later µ-op — the paper's §4.2 rule) and
//! whether it is a *single-cycle ALU* µ-op (the only kind Early/Late
//! Execution handles, §3.2–3.3).

use crate::reg::ArchReg;

/// Operation code. Grouped by timing class; see [`Opcode::class`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Opcode {
    // ---- single-cycle integer ALU -------------------------------------
    /// `dst = src1 + src2`
    Add,
    /// `dst = src1 - src2`
    Sub,
    /// `dst = src1 & src2`
    And,
    /// `dst = src1 | src2`
    Or,
    /// `dst = src1 ^ src2`
    Xor,
    /// `dst = src1 << (src2 & 63)`
    Shl,
    /// `dst = src1 >> (src2 & 63)` (logical)
    Shr,
    /// `dst = ((src1 as i64) >> (src2 & 63)) as u64` (arithmetic)
    Sar,
    /// `dst = (src1 as i64) < (src2 as i64)`
    Slt,
    /// `dst = src1 < src2` (unsigned)
    Sltu,
    /// `dst = src1 + imm`
    AddI,
    /// `dst = src1 - imm`
    SubI,
    /// `dst = src1 & imm`
    AndI,
    /// `dst = src1 | imm`
    OrI,
    /// `dst = src1 ^ imm`
    XorI,
    /// `dst = src1 << (imm & 63)`
    ShlI,
    /// `dst = src1 >> (imm & 63)` (logical)
    ShrI,
    /// `dst = ((src1 as i64) >> (imm & 63)) as u64`
    SarI,
    /// `dst = (src1 as i64) < imm`
    SltI,
    /// `dst = imm`
    MovI,
    /// `dst = src1`
    Mov,
    /// `dst = src1 + (src2 << aux) + imm` — x86-style address generation.
    Lea,

    // ---- integer multiply / divide ------------------------------------
    /// `dst = src1 * src2` (low 64 bits), 3-cycle pipelined.
    Mul,
    /// `dst = src1 / src2` signed (RISC-V semantics on zero), 25-cycle unpipelined.
    Div,
    /// `dst = src1 % src2` signed, 25-cycle unpipelined.
    Rem,

    // ---- floating point (operands are f64 bit patterns) ---------------
    /// `dst = src1 + src2`, 3-cycle.
    Fadd,
    /// `dst = src1 - src2`, 3-cycle.
    Fsub,
    /// `dst = src1 * src2`, 5-cycle.
    Fmul,
    /// `dst = src1 / src2`, 10-cycle unpipelined.
    Fdiv,
    /// `dst = (src1 as f64 comparison src2) ? 1 : 0` into an *int* reg, 3-cycle.
    FcmpLt,
    /// Integer → double conversion, 3-cycle.
    Fcvti2f,
    /// Double → integer (truncating) conversion, 3-cycle.
    Fcvtf2i,
    /// FP move, 3-cycle (runs on the FP pool).
    Fmov,

    // ---- memory --------------------------------------------------------
    /// `dst = mem64[src1 + imm]`
    Ld,
    /// `dst = zext(mem32[src1 + imm])`
    Ld32,
    /// `dst = zext(mem16[src1 + imm])`
    Ld16,
    /// `dst = zext(mem8[src1 + imm])`
    Ld8,
    /// `dst = mem64[src1 + (src2 << aux) + imm]` — indexed load.
    LdIdx,
    /// `fdst = mem64[src1 + imm]` — FP load.
    Fld,
    /// `mem64[src1 + imm] = src2`
    St,
    /// `mem32[src1 + imm] = src2 (low 32)`
    St32,
    /// `mem16[src1 + imm] = src2 (low 16)`
    St16,
    /// `mem8[src1 + imm] = src2 (low 8)`
    St8,
    /// `mem64[src1 + imm] = fsrc2` — FP store.
    Fst,

    // ---- control flow ---------------------------------------------------
    /// Branch to `imm` if `src1 == src2`.
    Beq,
    /// Branch to `imm` if `src1 != src2`.
    Bne,
    /// Branch to `imm` if `(src1 as i64) < (src2 as i64)`.
    Blt,
    /// Branch to `imm` if `(src1 as i64) >= (src2 as i64)`.
    Bge,
    /// Branch to `imm` if `src1 < src2` (unsigned).
    Bltu,
    /// Branch to `imm` if `src1 >= src2` (unsigned).
    Bgeu,
    /// Unconditional direct jump to `imm`.
    Jmp,
    /// Indirect jump to the instruction index in `src1` (switch tables).
    JmpR,
    /// Direct call to `imm`; writes return address (pc+1) to `r31`.
    Call,
    /// Indirect call via `src1`; writes return address to `r31`.
    CallR,
    /// Return: jump to the address in `src1` (conventionally `r31`).
    Ret,
    /// Stop the machine.
    Halt,
}

/// Timing class: selects the functional-unit pool and latency in the core
/// model (Table 1 of the paper).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU — the only class eligible for Early/Late
    /// Execution.
    IntAlu,
    /// Pipelined 3-cycle integer multiply.
    IntMul,
    /// Unpipelined 25-cycle integer divide.
    IntDiv,
    /// 3-cycle FP add/sub/convert/compare/move pool.
    FpAlu,
    /// 5-cycle FP multiply.
    FpMul,
    /// Unpipelined 10-cycle FP divide.
    FpDiv,
    /// Memory load (address generation + cache access).
    Load,
    /// Memory store (address generation; data drains at commit).
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional direct jump.
    Jump,
    /// Indirect jump (predicted via BTB).
    JumpIndirect,
    /// Direct call (pushes the return-address stack).
    Call,
    /// Indirect call.
    CallIndirect,
    /// Return (pops the return-address stack).
    Return,
    /// Machine stop.
    Halt,
}

impl Opcode {
    /// The timing class of this opcode.
    pub fn class(self) -> InstClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Shl | Shr | Sar | Slt | Sltu | AddI | SubI | AndI
            | OrI | XorI | ShlI | ShrI | SarI | SltI | MovI | Mov | Lea => InstClass::IntAlu,
            Mul => InstClass::IntMul,
            Div | Rem => InstClass::IntDiv,
            Fadd | Fsub | FcmpLt | Fcvti2f | Fcvtf2i | Fmov => InstClass::FpAlu,
            Fmul => InstClass::FpMul,
            Fdiv => InstClass::FpDiv,
            Ld | Ld32 | Ld16 | Ld8 | LdIdx | Fld => InstClass::Load,
            St | St32 | St16 | St8 | Fst => InstClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => InstClass::Branch,
            Jmp => InstClass::Jump,
            JmpR => InstClass::JumpIndirect,
            Call => InstClass::Call,
            CallR => InstClass::CallIndirect,
            Ret => InstClass::Return,
            Halt => InstClass::Halt,
        }
    }
}

impl InstClass {
    /// True for classes that redirect control flow.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            InstClass::Branch
                | InstClass::Jump
                | InstClass::JumpIndirect
                | InstClass::Call
                | InstClass::CallIndirect
                | InstClass::Return
        )
    }

    /// True for memory operations.
    pub fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }
}

/// One decoded instruction / micro-op.
///
/// Operand usage depends on the opcode; unused fields are `None`/0. `aux`
/// holds the shift amount for `Lea`/`LdIdx` scaled addressing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register, if the µ-op writes one.
    pub dst: Option<ArchReg>,
    /// First source register.
    pub src1: Option<ArchReg>,
    /// Second source register.
    pub src2: Option<ArchReg>,
    /// Immediate: ALU immediate, memory displacement, or control-flow target
    /// (an instruction index for direct branches/jumps/calls).
    pub imm: i64,
    /// Scale shift for `Lea`/`LdIdx` (0–4).
    pub aux: u8,
}

impl Inst {
    /// Creates an instruction with no operands set (used by the builder).
    pub fn new(op: Opcode) -> Self {
        Inst { op, dst: None, src1: None, src2: None, imm: 0, aux: 0 }
    }

    /// The timing class.
    pub fn class(&self) -> InstClass {
        self.op.class()
    }

    /// Value-prediction eligibility per the paper's §4.2: the µ-op produces
    /// a ≤64-bit register value readable by a subsequent µ-op. Call link
    /// writes are excluded (return addresses are handled by the RAS, and
    /// predicting them through the value predictor would double-count).
    pub fn is_vp_eligible(&self) -> bool {
        self.dst.is_some()
            && !matches!(self.class(), InstClass::Call | InstClass::CallIndirect)
    }

    /// True for single-cycle integer-ALU µ-ops — the only µ-ops Early and
    /// Late Execution are allowed to execute (§3.2: "it seems necessary to
    /// limit Early Execution to single-cycle ALU instructions").
    pub fn is_single_cycle_alu(&self) -> bool {
        self.class() == InstClass::IntAlu
    }

    /// True if this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        self.class() == InstClass::Branch
    }

    /// Source registers actually read by this µ-op, in operand order.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        [self.src1, self.src2].into_iter().flatten()
    }

    /// Number of register sources.
    pub fn num_sources(&self) -> usize {
        self.src1.is_some() as usize + self.src2.is_some() as usize
    }

    /// True if the µ-op carries an immediate operand that participates in
    /// the computation (ALU immediates and address displacements — *not*
    /// branch targets).
    pub fn has_value_imm(&self) -> bool {
        use Opcode::*;
        matches!(
            self.op,
            AddI | SubI | AndI | OrI | XorI | ShlI | ShrI | SarI | SltI | MovI | Lea | Ld | Ld32
                | Ld16 | Ld8 | LdIdx | Fld | St | St32 | St16 | St8 | Fst
        )
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        if let Some(s) = self.src1 {
            write!(f, " {s}")?;
        }
        if let Some(s) = self.src2 {
            write!(f, " {s}")?;
        }
        if self.imm != 0 || self.has_value_imm() || self.class().is_control() {
            write!(f, " #{}", self.imm)?;
        }
        if self.aux != 0 {
            write!(f, " <<{}", self.aux)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FpReg, IntReg};

    fn reg(i: u8) -> ArchReg {
        ArchReg::int(IntReg::new(i))
    }

    #[test]
    fn classes_match_pools() {
        assert_eq!(Opcode::Add.class(), InstClass::IntAlu);
        assert_eq!(Opcode::Lea.class(), InstClass::IntAlu);
        assert_eq!(Opcode::Mul.class(), InstClass::IntMul);
        assert_eq!(Opcode::Div.class(), InstClass::IntDiv);
        assert_eq!(Opcode::Fadd.class(), InstClass::FpAlu);
        assert_eq!(Opcode::Fmul.class(), InstClass::FpMul);
        assert_eq!(Opcode::Fdiv.class(), InstClass::FpDiv);
        assert_eq!(Opcode::LdIdx.class(), InstClass::Load);
        assert_eq!(Opcode::Fst.class(), InstClass::Store);
        assert_eq!(Opcode::Beq.class(), InstClass::Branch);
        assert_eq!(Opcode::Ret.class(), InstClass::Return);
    }

    #[test]
    fn vp_eligibility_follows_the_paper_rule() {
        // ALU op with a destination: eligible.
        let mut add = Inst::new(Opcode::Add);
        add.dst = Some(reg(1));
        assert!(add.is_vp_eligible());

        // Loads (incl. FP): eligible.
        let mut fld = Inst::new(Opcode::Fld);
        fld.dst = Some(ArchReg::fp(FpReg::new(2)));
        assert!(fld.is_vp_eligible());

        // Stores and branches produce no readable register: ineligible.
        assert!(!Inst::new(Opcode::St).is_vp_eligible());
        assert!(!Inst::new(Opcode::Beq).is_vp_eligible());

        // Calls write the link register but are excluded explicitly.
        let mut call = Inst::new(Opcode::Call);
        call.dst = Some(reg(31));
        assert!(!call.is_vp_eligible());
    }

    #[test]
    fn single_cycle_alu_excludes_muldiv_fp_mem() {
        assert!(Inst::new(Opcode::Add).is_single_cycle_alu());
        assert!(Inst::new(Opcode::MovI).is_single_cycle_alu());
        assert!(!Inst::new(Opcode::Mul).is_single_cycle_alu());
        assert!(!Inst::new(Opcode::Fadd).is_single_cycle_alu());
        assert!(!Inst::new(Opcode::Ld).is_single_cycle_alu());
    }

    #[test]
    fn sources_iterates_in_order() {
        let mut i = Inst::new(Opcode::Add);
        i.src1 = Some(reg(3));
        i.src2 = Some(reg(4));
        let v: Vec<_> = i.sources().collect();
        assert_eq!(v, vec![reg(3), reg(4)]);
        assert_eq!(i.num_sources(), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let mut i = Inst::new(Opcode::AddI);
        i.dst = Some(reg(1));
        i.src1 = Some(reg(2));
        i.imm = 5;
        let s = i.to_string();
        assert!(s.contains("AddI") && s.contains("r1") && s.contains("#5"));
    }
}
