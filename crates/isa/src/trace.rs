//! Dynamic-trace generation for the timing model.
//!
//! The cycle-level simulator in `eole-core` is *trace driven*: the program
//! is executed once by the functional [`Machine`] and every retired µ-op is
//! recorded as a [`DynInst`]. The timing model replays this stream with a
//! cursor; squash-and-refetch is a cursor rewind.
//!
//! Two things are precomputed here because they are pure functions of the
//! (always correct-path) instruction stream:
//!
//! * the *conditional-branch outcome log* — predictors index their global
//!   history through [`DynInst::bhist_pos`], which makes speculative-history
//!   repair after a squash unnecessary (the history at a given trace position
//!   never changes);
//! * oracle results, effective addresses and branch targets.

use crate::inst::{Inst, InstClass};
use crate::machine::Machine;
use crate::program::Program;
use crate::reg::ArchReg;
use crate::IsaError;

/// One retired micro-op of the dynamic instruction stream.
#[derive(Clone, Debug, PartialEq)]
pub struct DynInst {
    /// Static instruction index (the pc).
    pub pc: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// Oracle value written to the destination register (0 if none).
    pub result: u64,
    /// Effective address for loads/stores (0 otherwise).
    pub addr: u64,
    /// Access size in bytes for loads/stores (0 otherwise).
    pub size: u8,
    /// For control µ-ops: taken?
    pub taken: bool,
    /// Pc of the next µ-op in the trace.
    pub next_pc: u32,
    /// Number of conditional-branch outcomes logged *before* this µ-op;
    /// i.e. the predictor history position at fetch.
    pub bhist_pos: u32,
}

impl DynInst {
    /// Destination register, if any.
    pub fn dst(&self) -> Option<ArchReg> {
        self.inst.dst
    }

    /// Timing class.
    pub fn class(&self) -> InstClass {
        self.inst.class()
    }

    /// True if this µ-op is a load.
    pub fn is_load(&self) -> bool {
        self.class() == InstClass::Load
    }

    /// True if this µ-op is a store.
    pub fn is_store(&self) -> bool {
        self.class() == InstClass::Store
    }
}

/// A complete dynamic trace plus the conditional-branch outcome log.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Retired µ-ops in program order.
    pub insts: Vec<DynInst>,
    /// Outcome (taken?) of every conditional branch, in retirement order.
    pub branch_outcomes: Vec<bool>,
    /// True if the program reached `Halt` within the budget (otherwise the
    /// trace is a truncated prefix, which is fine for timing studies).
    pub halted: bool,
}

impl Trace {
    /// Number of µ-ops in the trace.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Runs `program` functionally and records up to `max_insts` retired µ-ops.
///
/// The `Halt` µ-op itself is *not* recorded (it never enters the paper's
/// pipeline statistics).
///
/// # Errors
///
/// Propagates execution errors from the functional machine. Exhausting
/// `max_insts` is *not* an error — the truncated trace is returned with
/// `halted == false`.
///
/// # Example
///
/// ```
/// use eole_isa::{generate_trace, ProgramBuilder, IntReg};
///
/// # fn main() -> Result<(), eole_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// let r1 = IntReg::new(1);
/// b.movi(r1, 3);
/// b.addi(r1, r1, 4);
/// b.halt();
/// let trace = generate_trace(&b.build()?, 100)?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.insts[1].result, 7);
/// # Ok(())
/// # }
/// ```
pub fn generate_trace(program: &Program, max_insts: u64) -> Result<Trace, IsaError> {
    let mut machine = Machine::new(program);
    let mut insts = Vec::new();
    let mut branch_outcomes = Vec::new();
    let mut halted = false;
    while (insts.len() as u64) < max_insts {
        let info = machine.step()?;
        if info.halted {
            halted = true;
            break;
        }
        let bhist_pos = branch_outcomes.len() as u32;
        if info.inst.is_cond_branch() {
            branch_outcomes.push(info.taken);
        }
        insts.push(DynInst {
            pc: info.pc,
            inst: info.inst,
            result: info.dst_value.unwrap_or(0),
            addr: info.mem_addr.unwrap_or(0),
            size: info.mem_size,
            taken: info.taken,
            next_pc: info.next_pc,
            bhist_pos,
        });
    }
    Ok(Trace { insts, branch_outcomes, halted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::Opcode;
    use crate::reg::IntReg;

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    fn loop_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.movi(r(1), 0);
        b.movi(r(2), iters);
        let top = b.label();
        b.bind(top);
        b.addi(r(1), r(1), 1);
        b.bne(r(1), r(2), top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn trace_records_all_retired_uops_except_halt() {
        let t = generate_trace(&loop_program(5), 10_000).unwrap();
        // 2 movi + 5 * (addi + bne) = 12
        assert_eq!(t.len(), 12);
        assert!(t.halted);
    }

    #[test]
    fn branch_outcomes_align_with_bhist_pos() {
        let t = generate_trace(&loop_program(3), 10_000).unwrap();
        assert_eq!(t.branch_outcomes, vec![true, true, false]);
        let branches: Vec<&DynInst> =
            t.insts.iter().filter(|d| d.inst.is_cond_branch()).collect();
        for (i, br) in branches.iter().enumerate() {
            // Each branch sees exactly the history produced by earlier branches.
            assert_eq!(br.bhist_pos as usize, i);
            assert_eq!(t.branch_outcomes[i], br.taken);
        }
    }

    #[test]
    fn truncation_is_not_an_error() {
        let t = generate_trace(&loop_program(1_000_000), 100).unwrap();
        assert_eq!(t.len(), 100);
        assert!(!t.halted);
    }

    #[test]
    fn oracle_values_and_next_pc_are_recorded() {
        let t = generate_trace(&loop_program(2), 10_000).unwrap();
        let first_addi = t.insts.iter().find(|d| d.inst.op == Opcode::AddI).unwrap();
        assert_eq!(first_addi.result, 1);
        let taken_branch = t.insts.iter().find(|d| d.taken).unwrap();
        assert_eq!(taken_branch.next_pc, 2); // loop head
    }

    #[test]
    fn store_addresses_are_recorded() {
        let mut b = ProgramBuilder::new();
        let buf = b.add_data_u64(&[0]);
        b.movi(r(1), buf as i64);
        b.movi(r(2), 9);
        b.st(r(1), 0, r(2));
        b.halt();
        let t = generate_trace(&b.build().unwrap(), 100).unwrap();
        let st = t.insts.iter().find(|d| d.is_store()).unwrap();
        assert_eq!(st.addr, buf);
        assert_eq!(st.size, 8);
    }
}
