//! Architectural register names.
//!
//! The ISA has 32 integer registers (`r0`–`r31`) and 32 floating-point
//! registers (`f0`–`f31`). None is hardwired to zero; constants come from
//! immediates. By convention `r31` is the link register written by calls.

/// Number of integer architectural registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 32;
/// Total architectural registers across both classes.
pub const NUM_ARCH_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// Register class: the two architectural register files.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// 64-bit integer registers.
    Int,
    /// 64-bit floating-point registers (IEEE-754 binary64 bit patterns).
    Fp,
}

/// An integer architectural register (`r0`–`r31`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntReg(u8);

impl IntReg {
    /// The link register written by `call` and read by `ret`.
    pub const LINK: IntReg = IntReg(31);

    /// Assembler scratch register clobbered by the builder's `*_imm` branch
    /// conveniences (like MIPS `$at`).
    pub const SCRATCH: IntReg = IntReg(30);

    /// Creates `r{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_INT_REGS, "integer register index {index} out of range");
        IntReg(index)
    }

    /// The register index (0–31).
    pub fn index(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for IntReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point architectural register (`f0`–`f31`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FpReg(u8);

impl FpReg {
    /// Creates `f{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Self {
        assert!((index as usize) < NUM_FP_REGS, "fp register index {index} out of range");
        FpReg(index)
    }

    /// The register index (0–31).
    pub fn index(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for FpReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A register from either class, flattened to a dense 0–63 id.
///
/// Ids 0–31 are the integer registers, 32–63 the FP registers. The flat id
/// is what renaming tables and the trace format index by.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Wraps an integer register.
    pub fn int(r: IntReg) -> Self {
        ArchReg(r.index())
    }

    /// Wraps an FP register.
    pub fn fp(r: FpReg) -> Self {
        ArchReg(r.index() + NUM_INT_REGS as u8)
    }

    /// Reconstructs from a flat id (0–63).
    ///
    /// # Panics
    ///
    /// Panics if `flat >= 64`.
    pub fn from_flat(flat: u8) -> Self {
        assert!((flat as usize) < NUM_ARCH_REGS, "flat register id {flat} out of range");
        ArchReg(flat)
    }

    /// The dense 0–63 id.
    pub fn flat(self) -> u8 {
        self.0
    }

    /// Which register file this register lives in.
    pub fn class(self) -> RegClass {
        if (self.0 as usize) < NUM_INT_REGS {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// The index within its class (0–31).
    pub fn index_in_class(self) -> u8 {
        self.0 % NUM_INT_REGS as u8
    }
}

impl From<IntReg> for ArchReg {
    fn from(r: IntReg) -> Self {
        ArchReg::int(r)
    }
}

impl From<FpReg> for ArchReg {
    fn from(r: FpReg) -> Self {
        ArchReg::fp(r)
    }
}

impl std::fmt::Display for ArchReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.index_in_class()),
            RegClass::Fp => write!(f, "f{}", self.index_in_class()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_ids_round_trip() {
        for i in 0..32u8 {
            let a = ArchReg::int(IntReg::new(i));
            assert_eq!(a.class(), RegClass::Int);
            assert_eq!(a.index_in_class(), i);
            assert_eq!(ArchReg::from_flat(a.flat()), a);
        }
        for i in 0..32u8 {
            let a = ArchReg::fp(FpReg::new(i));
            assert_eq!(a.class(), RegClass::Fp);
            assert_eq!(a.index_in_class(), i);
            assert_eq!(ArchReg::from_flat(a.flat()), a);
        }
    }

    #[test]
    fn int_and_fp_never_collide() {
        let a = ArchReg::int(IntReg::new(5));
        let b = ArchReg::fp(FpReg::new(5));
        assert_ne!(a, b);
        assert_ne!(a.flat(), b.flat());
    }

    #[test]
    fn display_names() {
        assert_eq!(IntReg::new(3).to_string(), "r3");
        assert_eq!(FpReg::new(7).to_string(), "f7");
        assert_eq!(ArchReg::fp(FpReg::new(7)).to_string(), "f7");
        assert_eq!(IntReg::LINK.index(), 31);
    }

    #[test]
    #[should_panic]
    fn out_of_range_int_reg_panics() {
        let _ = IntReg::new(32);
    }
}
