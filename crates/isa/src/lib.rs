//! # eole-isa
//!
//! A compact 64-bit, RISC-style micro-op ISA used as the substrate for the
//! EOLE (ISCA 2014) reproduction, together with:
//!
//! * [`ProgramBuilder`] — an assembler-style builder with labels and data
//!   segments for authoring workloads in Rust;
//! * [`Machine`] — a functional (architectural) simulator over a sparse
//!   64-bit memory;
//! * [`generate_trace`] — runs a [`Program`] to completion and records one
//!   [`DynInst`] per retired micro-op, which the cycle-level timing model in
//!   `eole-core` replays.
//!
//! The paper's substrate is x86_64 split into micro-ops; each of our
//! instructions *is* one micro-op (1 inst = 1 µ-op), which matches the
//! granularity at which the paper predicts values ("µ-ops producing a 64-bit
//! or less result that can be read by a subsequent µ-op").
//!
//! ## Example
//!
//! ```
//! use eole_isa::{ProgramBuilder, IntReg, Machine};
//!
//! # fn main() -> Result<(), eole_isa::IsaError> {
//! let mut b = ProgramBuilder::new();
//! let (r1, r2) = (IntReg::new(1), IntReg::new(2));
//! b.movi(r1, 0);
//! b.movi(r2, 10);
//! let top = b.label();
//! b.bind(top);
//! b.addi(r1, r1, 3);
//! b.subi(r2, r2, 1);
//! b.bne_imm(r2, 0, top);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut m = Machine::new(&program);
//! m.run(10_000)?;
//! assert_eq!(m.int_reg(r1), 30);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod builder;
mod inst;
mod machine;
mod memory;
mod program;
mod reg;
mod trace;

pub use builder::{Label, ProgramBuilder};
pub use inst::{Inst, InstClass, Opcode};
pub use machine::{Machine, StepInfo};
pub use memory::SparseMemory;
pub use program::{DataSegment, Program};
pub use reg::{ArchReg, FpReg, IntReg, RegClass, NUM_ARCH_REGS, NUM_FP_REGS, NUM_INT_REGS};
pub use trace::{generate_trace, DynInst, Trace};

/// Errors produced while building or executing programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A label was referenced but never bound to a position.
    UnboundLabel(usize),
    /// A branch target is outside the program.
    TargetOutOfRange { inst: u32, target: u32 },
    /// The program counter left the program without reaching `Halt`.
    PcOutOfRange(u32),
    /// An indirect jump landed outside the program.
    IndirectOutOfRange { pc: u32, target: u64 },
    /// The step budget was exhausted before the program halted.
    StepBudgetExhausted,
    /// Two data segments overlap.
    DataOverlap { base: u64 },
}

impl std::fmt::Display for IsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsaError::UnboundLabel(id) => write!(f, "label {id} referenced but never bound"),
            IsaError::TargetOutOfRange { inst, target } => {
                write!(f, "instruction {inst} branches to out-of-range target {target}")
            }
            IsaError::PcOutOfRange(pc) => write!(f, "program counter {pc} left the program"),
            IsaError::IndirectOutOfRange { pc, target } => {
                write!(f, "indirect jump at {pc} targets out-of-range address {target}")
            }
            IsaError::StepBudgetExhausted => write!(f, "step budget exhausted before halt"),
            IsaError::DataOverlap { base } => {
                write!(f, "data segment at {base:#x} overlaps an earlier segment")
            }
        }
    }
}

impl std::error::Error for IsaError {}
