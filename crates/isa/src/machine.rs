//! Functional (architectural) simulator.
//!
//! Executes a [`Program`] one instruction per step, producing the oracle
//! values the timing model replays. Division by zero follows RISC-V
//! semantics (quotient = all ones, remainder = dividend) so programs never
//! trap.

use crate::inst::{Inst, InstClass, Opcode};
use crate::memory::SparseMemory;
use crate::program::Program;
use crate::reg::{ArchReg, FpReg, IntReg, RegClass, NUM_FP_REGS, NUM_INT_REGS};
use crate::IsaError;

/// What one retired instruction did, as reported by [`Machine::step`].
#[derive(Clone, Debug, PartialEq)]
pub struct StepInfo {
    /// Pc of the retired instruction.
    pub pc: u32,
    /// The instruction itself.
    pub inst: Inst,
    /// Value written to the destination register, if any.
    pub dst_value: Option<u64>,
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Access size in bytes for loads/stores.
    pub mem_size: u8,
    /// For control-flow µ-ops: did it redirect (conditional taken, or any
    /// jump/call/return)?
    pub taken: bool,
    /// The pc of the next instruction to execute.
    pub next_pc: u32,
    /// True once `Halt` retires.
    pub halted: bool,
}

/// Architectural machine state.
#[derive(Clone, Debug)]
pub struct Machine {
    program: Program,
    int_regs: [u64; NUM_INT_REGS],
    fp_regs: [u64; NUM_FP_REGS],
    pc: u32,
    mem: SparseMemory,
    halted: bool,
    retired: u64,
}

impl Machine {
    /// Loads `program` (instructions + data segments) into a fresh machine.
    pub fn new(program: &Program) -> Self {
        let mut mem = SparseMemory::new();
        for seg in program.data() {
            mem.load_bytes(seg.base, &seg.bytes);
        }
        Machine {
            program: program.clone(),
            int_regs: [0; NUM_INT_REGS],
            fp_regs: [0; NUM_FP_REGS],
            pc: program.entry(),
            mem,
            halted: false,
            retired: 0,
        }
    }

    /// Current pc.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// True once the program has executed `Halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Retired instruction count.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an integer register.
    pub fn int_reg(&self, r: IntReg) -> u64 {
        self.int_regs[r.index() as usize]
    }

    /// Reads an FP register as its f64 value.
    pub fn fp_reg(&self, r: FpReg) -> f64 {
        f64::from_bits(self.fp_regs[r.index() as usize])
    }

    /// Direct access to memory (e.g. for checking results in tests).
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable access to memory (e.g. for poking inputs in tests).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    fn read(&self, r: ArchReg) -> u64 {
        match r.class() {
            RegClass::Int => self.int_regs[r.index_in_class() as usize],
            RegClass::Fp => self.fp_regs[r.index_in_class() as usize],
        }
    }

    fn write(&mut self, r: ArchReg, v: u64) {
        match r.class() {
            RegClass::Int => self.int_regs[r.index_in_class() as usize] = v,
            RegClass::Fp => self.fp_regs[r.index_in_class() as usize] = v,
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// [`IsaError::PcOutOfRange`] if the pc leaves the program without
    /// halting; [`IsaError::IndirectOutOfRange`] if an indirect jump targets
    /// an invalid instruction index.
    pub fn step(&mut self) -> Result<StepInfo, IsaError> {
        if self.halted {
            return Err(IsaError::PcOutOfRange(self.pc));
        }
        let pc = self.pc;
        let inst = *self.program.inst(pc).ok_or(IsaError::PcOutOfRange(pc))?;
        let s1 = inst.src1.map(|r| self.read(r)).unwrap_or(0);
        let s2 = inst.src2.map(|r| self.read(r)).unwrap_or(0);
        let imm = inst.imm;
        let immu = imm as u64;
        let mut info = StepInfo {
            pc,
            inst,
            dst_value: None,
            mem_addr: None,
            mem_size: 0,
            taken: false,
            next_pc: pc + 1,
            halted: false,
        };

        use Opcode::*;
        let mut dst_value: Option<u64> = None;
        match inst.op {
            Add => dst_value = Some(s1.wrapping_add(s2)),
            Sub => dst_value = Some(s1.wrapping_sub(s2)),
            And => dst_value = Some(s1 & s2),
            Or => dst_value = Some(s1 | s2),
            Xor => dst_value = Some(s1 ^ s2),
            Shl => dst_value = Some(s1.wrapping_shl((s2 & 63) as u32)),
            Shr => dst_value = Some(s1.wrapping_shr((s2 & 63) as u32)),
            Sar => dst_value = Some(((s1 as i64).wrapping_shr((s2 & 63) as u32)) as u64),
            Slt => dst_value = Some(((s1 as i64) < (s2 as i64)) as u64),
            Sltu => dst_value = Some((s1 < s2) as u64),
            AddI => dst_value = Some(s1.wrapping_add(immu)),
            SubI => dst_value = Some(s1.wrapping_sub(immu)),
            AndI => dst_value = Some(s1 & immu),
            OrI => dst_value = Some(s1 | immu),
            XorI => dst_value = Some(s1 ^ immu),
            ShlI => dst_value = Some(s1.wrapping_shl((immu & 63) as u32)),
            ShrI => dst_value = Some(s1.wrapping_shr((immu & 63) as u32)),
            SarI => dst_value = Some(((s1 as i64).wrapping_shr((immu & 63) as u32)) as u64),
            SltI => dst_value = Some(((s1 as i64) < imm) as u64),
            MovI => dst_value = Some(immu),
            Mov => dst_value = Some(s1),
            Lea => dst_value = Some(
                s1.wrapping_add(s2.wrapping_shl(inst.aux as u32)).wrapping_add(immu),
            ),
            Mul => dst_value = Some(s1.wrapping_mul(s2)),
            Div => {
                let (a, b) = (s1 as i64, s2 as i64);
                dst_value = Some(if b == 0 {
                    u64::MAX
                } else if a == i64::MIN && b == -1 {
                    a as u64
                } else {
                    (a / b) as u64
                });
            }
            Rem => {
                let (a, b) = (s1 as i64, s2 as i64);
                dst_value = Some(if b == 0 {
                    a as u64
                } else if a == i64::MIN && b == -1 {
                    0
                } else {
                    (a % b) as u64
                });
            }
            Fadd => dst_value = Some((f64::from_bits(s1) + f64::from_bits(s2)).to_bits()),
            Fsub => dst_value = Some((f64::from_bits(s1) - f64::from_bits(s2)).to_bits()),
            Fmul => dst_value = Some((f64::from_bits(s1) * f64::from_bits(s2)).to_bits()),
            Fdiv => dst_value = Some((f64::from_bits(s1) / f64::from_bits(s2)).to_bits()),
            FcmpLt => dst_value = Some((f64::from_bits(s1) < f64::from_bits(s2)) as u64),
            Fcvti2f => dst_value = Some(((s1 as i64) as f64).to_bits()),
            Fcvtf2i => {
                let f = f64::from_bits(s1);
                let v = if f.is_nan() { 0 } else { f as i64 };
                dst_value = Some(v as u64);
            }
            Fmov => dst_value = Some(s1),
            Ld | Fld => {
                let addr = s1.wrapping_add(immu);
                info.mem_addr = Some(addr);
                info.mem_size = 8;
                dst_value = Some(self.mem.read_le(addr, 8));
            }
            Ld32 => {
                let addr = s1.wrapping_add(immu);
                info.mem_addr = Some(addr);
                info.mem_size = 4;
                dst_value = Some(self.mem.read_le(addr, 4));
            }
            Ld16 => {
                let addr = s1.wrapping_add(immu);
                info.mem_addr = Some(addr);
                info.mem_size = 2;
                dst_value = Some(self.mem.read_le(addr, 2));
            }
            Ld8 => {
                let addr = s1.wrapping_add(immu);
                info.mem_addr = Some(addr);
                info.mem_size = 1;
                dst_value = Some(self.mem.read_le(addr, 1));
            }
            LdIdx => {
                let addr =
                    s1.wrapping_add(s2.wrapping_shl(inst.aux as u32)).wrapping_add(immu);
                info.mem_addr = Some(addr);
                info.mem_size = 8;
                dst_value = Some(self.mem.read_le(addr, 8));
            }
            St | Fst => {
                let addr = s1.wrapping_add(immu);
                info.mem_addr = Some(addr);
                info.mem_size = 8;
                self.mem.write_le(addr, 8, s2);
            }
            St32 => {
                let addr = s1.wrapping_add(immu);
                info.mem_addr = Some(addr);
                info.mem_size = 4;
                self.mem.write_le(addr, 4, s2);
            }
            St16 => {
                let addr = s1.wrapping_add(immu);
                info.mem_addr = Some(addr);
                info.mem_size = 2;
                self.mem.write_le(addr, 2, s2);
            }
            St8 => {
                let addr = s1.wrapping_add(immu);
                info.mem_addr = Some(addr);
                info.mem_size = 1;
                self.mem.write_le(addr, 1, s2);
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let cond = match inst.op {
                    Beq => s1 == s2,
                    Bne => s1 != s2,
                    Blt => (s1 as i64) < (s2 as i64),
                    Bge => (s1 as i64) >= (s2 as i64),
                    Bltu => s1 < s2,
                    Bgeu => s1 >= s2,
                    _ => unreachable!(),
                };
                info.taken = cond;
                if cond {
                    info.next_pc = imm as u32;
                }
            }
            Jmp => {
                info.taken = true;
                info.next_pc = imm as u32;
            }
            JmpR => {
                info.taken = true;
                if s1 >= self.program.len() as u64 {
                    return Err(IsaError::IndirectOutOfRange { pc, target: s1 });
                }
                info.next_pc = s1 as u32;
            }
            Call => {
                info.taken = true;
                dst_value = Some((pc + 1) as u64);
                info.next_pc = imm as u32;
            }
            CallR => {
                info.taken = true;
                if s1 >= self.program.len() as u64 {
                    return Err(IsaError::IndirectOutOfRange { pc, target: s1 });
                }
                dst_value = Some((pc + 1) as u64);
                info.next_pc = s1 as u32;
            }
            Ret => {
                info.taken = true;
                if s1 >= self.program.len() as u64 {
                    return Err(IsaError::IndirectOutOfRange { pc, target: s1 });
                }
                info.next_pc = s1 as u32;
            }
            Halt => {
                self.halted = true;
                info.halted = true;
                info.next_pc = pc;
            }
        }

        if let (Some(d), Some(v)) = (inst.dst, dst_value) {
            self.write(d, v);
        }
        info.dst_value = dst_value;
        self.pc = info.next_pc;
        self.retired += 1;
        debug_assert!(
            !(inst.class() == InstClass::Branch && inst.dst.is_some()),
            "branches must not write registers"
        );
        Ok(info)
    }

    /// Runs until `Halt` or until `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// [`IsaError::StepBudgetExhausted`] if the budget runs out first, plus
    /// any error from [`Machine::step`].
    pub fn run(&mut self, max_steps: u64) -> Result<u64, IsaError> {
        let start = self.retired;
        while !self.halted {
            if self.retired - start >= max_steps {
                return Err(IsaError::StepBudgetExhausted);
            }
            self.step()?;
        }
        Ok(self.retired - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use proptest::prelude::*;

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    #[test]
    fn arithmetic_loop_sums_correctly() {
        let mut b = ProgramBuilder::new();
        b.movi(r(1), 0);
        b.movi(r(2), 1);
        b.movi(r(3), 101);
        let top = b.label();
        b.bind(top);
        b.add(r(1), r(1), r(2));
        b.addi(r(2), r(2), 1);
        b.bne(r(2), r(3), top);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(10_000).unwrap();
        assert_eq!(m.int_reg(r(1)), (1..=100).sum::<u64>());
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut b = ProgramBuilder::new();
        let buf = b.add_data_u64(&[10, 20, 30]);
        b.movi(r(1), buf as i64);
        b.ld(r(2), r(1), 8);
        b.addi(r(2), r(2), 5);
        b.st(r(1), 16, r(2));
        b.ld(r(3), r(1), 16);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.int_reg(r(2)), 25);
        assert_eq!(m.int_reg(r(3)), 25);
    }

    #[test]
    fn indexed_load_and_lea_agree() {
        let mut b = ProgramBuilder::new();
        let buf = b.add_data_u64(&[7, 8, 9, 10]);
        b.movi(r(1), buf as i64);
        b.movi(r(2), 3);
        b.ld_idx(r(3), r(1), r(2), 3, 0); // buf[3]
        b.lea(r(4), r(1), r(2), 3, 0);
        b.ld(r(5), r(4), 0);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.int_reg(r(3)), 10);
        assert_eq!(m.int_reg(r(5)), 10);
    }

    #[test]
    fn call_and_ret() {
        let mut b = ProgramBuilder::new();
        let func = b.label();
        b.movi(r(1), 5);
        b.call(func);
        b.addi(r(1), r(1), 100);
        b.halt();
        b.bind(func);
        b.addi(r(1), r(1), 1);
        b.ret();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.int_reg(r(1)), 106);
    }

    #[test]
    fn fp_pipeline_math() {
        let f = FpReg::new;
        let mut b = ProgramBuilder::new();
        let data = b.add_data_f64(&[1.5, 2.5]);
        b.movi(r(1), data as i64);
        b.fld(f(1), r(1), 0);
        b.fld(f(2), r(1), 8);
        b.fadd(f(3), f(1), f(2));
        b.fmul(f(4), f(3), f(2));
        b.fdiv(f(5), f(4), f(1));
        b.fcmplt(r(2), f(1), f(2));
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.fp_reg(f(3)), 4.0);
        assert_eq!(m.fp_reg(f(4)), 10.0);
        assert!((m.fp_reg(f(5)) - 10.0 / 1.5).abs() < 1e-12);
        assert_eq!(m.int_reg(r(2)), 1);
    }

    #[test]
    fn division_by_zero_follows_riscv() {
        let mut b = ProgramBuilder::new();
        b.movi(r(1), 42);
        b.movi(r(2), 0);
        b.div(r(3), r(1), r(2));
        b.rem(r(4), r(1), r(2));
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.int_reg(r(3)), u64::MAX);
        assert_eq!(m.int_reg(r(4)), 42);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.jmp(top);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.run(10), Err(IsaError::StepBudgetExhausted));
    }

    #[test]
    fn step_after_halt_errors() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        m.run(10).unwrap();
        assert!(m.step().is_err());
    }

    proptest! {
        #[test]
        fn alu_ops_match_rust_semantics(a: u64, b_: u64, sh in 0u32..64) {
            let mut b = ProgramBuilder::new();
            b.movi(r(1), a as i64);
            b.movi(r(2), b_ as i64);
            b.add(r(3), r(1), r(2));
            b.sub(r(4), r(1), r(2));
            b.xor(r(5), r(1), r(2));
            b.shli(r(6), r(1), sh as i64);
            b.sltu(r(7), r(1), r(2));
            b.halt();
            let p = b.build().unwrap();
            let mut m = Machine::new(&p);
            m.run(100).unwrap();
            prop_assert_eq!(m.int_reg(r(3)), a.wrapping_add(b_));
            prop_assert_eq!(m.int_reg(r(4)), a.wrapping_sub(b_));
            prop_assert_eq!(m.int_reg(r(5)), a ^ b_);
            prop_assert_eq!(m.int_reg(r(6)), a.wrapping_shl(sh));
            prop_assert_eq!(m.int_reg(r(7)), (a < b_) as u64);
        }
    }
}
