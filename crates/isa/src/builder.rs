//! Assembler-style program builder with labels and data allocation.
//!
//! Workload kernels author programs through this API. Labels are forward-
//! referencable; `build` resolves them and validates the program.
//!
//! Register conventions used by the builder's convenience forms:
//! * `r31` — link register (written by `call`, read by `ret`);
//! * `r30` — assembler scratch, clobbered by the `*_imm` branch forms.

use crate::inst::{Inst, Opcode};
use crate::program::{DataSegment, Program};
use crate::reg::{ArchReg, FpReg, IntReg};
use crate::IsaError;

/// A control-flow label; create with [`ProgramBuilder::label`], place with
/// [`ProgramBuilder::bind`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use eole_isa::{ProgramBuilder, IntReg};
///
/// # fn main() -> Result<(), eole_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// let r1 = IntReg::new(1);
/// b.movi(r1, 41);
/// b.addi(r1, r1, 1);
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
    data: Vec<DataSegment>,
    data_cursor: u64,
}

/// Default base address for auto-allocated data.
const DATA_BASE: u64 = 0x1000_0000;
/// Alignment of auto-allocated data blocks.
const DATA_ALIGN: u64 = 64;

impl ProgramBuilder {
    /// Scratch register clobbered by `*_imm` branch conveniences.
    pub const SCRATCH: IntReg = IntReg::SCRATCH;

    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder { data_cursor: DATA_BASE, ..Default::default() }
    }

    /// Current instruction index (the pc the next emitted µ-op will get).
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Allocates an auto-addressed data segment and returns its base.
    pub fn add_data(&mut self, bytes: Vec<u8>) -> u64 {
        let base = self.data_cursor;
        let len = bytes.len() as u64;
        self.data.push(DataSegment { base, bytes });
        self.data_cursor = (base + len + DATA_ALIGN - 1) & !(DATA_ALIGN - 1);
        base
    }

    /// Allocates `words` little-endian u64 values as a data segment.
    pub fn add_data_u64(&mut self, words: &[u64]) -> u64 {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.add_data(bytes)
    }

    /// Allocates `words` f64 values (as their bit patterns) as a data segment.
    pub fn add_data_f64(&mut self, values: &[f64]) -> u64 {
        let words: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        self.add_data_u64(&words)
    }

    /// Reserves `len` zeroed bytes of address space (no segment is stored —
    /// unwritten memory reads as zero) and returns the base address.
    pub fn alloc_zeroed(&mut self, len: u64) -> u64 {
        let base = self.data_cursor;
        self.data_cursor = (base + len + DATA_ALIGN - 1) & !(DATA_ALIGN - 1);
        base
    }

    fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    fn push_target(&mut self, mut inst: Inst, target: Label) {
        self.fixups.push((self.insts.len(), target));
        inst.imm = 0;
        self.insts.push(inst);
    }

    fn rrr(&mut self, op: Opcode, dst: IntReg, a: IntReg, b: IntReg) {
        let mut i = Inst::new(op);
        i.dst = Some(dst.into());
        i.src1 = Some(a.into());
        i.src2 = Some(b.into());
        self.push(i);
    }

    fn rri(&mut self, op: Opcode, dst: IntReg, a: IntReg, imm: i64) {
        let mut i = Inst::new(op);
        i.dst = Some(dst.into());
        i.src1 = Some(a.into());
        i.imm = imm;
        self.push(i);
    }

    // ---- integer ALU ---------------------------------------------------

    /// `dst = a + b`
    pub fn add(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Add, dst, a, b);
    }
    /// `dst = a - b`
    pub fn sub(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Sub, dst, a, b);
    }
    /// `dst = a & b`
    pub fn and(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::And, dst, a, b);
    }
    /// `dst = a | b`
    pub fn or(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Or, dst, a, b);
    }
    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Xor, dst, a, b);
    }
    /// `dst = a << (b & 63)`
    pub fn shl(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Shl, dst, a, b);
    }
    /// `dst = a >> (b & 63)` (logical)
    pub fn shr(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Shr, dst, a, b);
    }
    /// `dst = (a as i64) >> (b & 63)`
    pub fn sar(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Sar, dst, a, b);
    }
    /// `dst = (a as i64) < (b as i64)`
    pub fn slt(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Slt, dst, a, b);
    }
    /// `dst = a < b` (unsigned)
    pub fn sltu(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Sltu, dst, a, b);
    }
    /// `dst = a + imm`
    pub fn addi(&mut self, dst: IntReg, a: IntReg, imm: i64) {
        self.rri(Opcode::AddI, dst, a, imm);
    }
    /// `dst = a - imm`
    pub fn subi(&mut self, dst: IntReg, a: IntReg, imm: i64) {
        self.rri(Opcode::SubI, dst, a, imm);
    }
    /// `dst = a & imm`
    pub fn andi(&mut self, dst: IntReg, a: IntReg, imm: i64) {
        self.rri(Opcode::AndI, dst, a, imm);
    }
    /// `dst = a | imm`
    pub fn ori(&mut self, dst: IntReg, a: IntReg, imm: i64) {
        self.rri(Opcode::OrI, dst, a, imm);
    }
    /// `dst = a ^ imm`
    pub fn xori(&mut self, dst: IntReg, a: IntReg, imm: i64) {
        self.rri(Opcode::XorI, dst, a, imm);
    }
    /// `dst = a << imm`
    pub fn shli(&mut self, dst: IntReg, a: IntReg, imm: i64) {
        self.rri(Opcode::ShlI, dst, a, imm);
    }
    /// `dst = a >> imm` (logical)
    pub fn shri(&mut self, dst: IntReg, a: IntReg, imm: i64) {
        self.rri(Opcode::ShrI, dst, a, imm);
    }
    /// `dst = (a as i64) >> imm`
    pub fn sari(&mut self, dst: IntReg, a: IntReg, imm: i64) {
        self.rri(Opcode::SarI, dst, a, imm);
    }
    /// `dst = (a as i64) < imm`
    pub fn slti(&mut self, dst: IntReg, a: IntReg, imm: i64) {
        self.rri(Opcode::SltI, dst, a, imm);
    }
    /// `dst = imm`
    pub fn movi(&mut self, dst: IntReg, imm: i64) {
        let mut i = Inst::new(Opcode::MovI);
        i.dst = Some(dst.into());
        i.imm = imm;
        self.push(i);
    }
    /// `dst = a`
    pub fn mov(&mut self, dst: IntReg, a: IntReg) {
        let mut i = Inst::new(Opcode::Mov);
        i.dst = Some(dst.into());
        i.src1 = Some(a.into());
        self.push(i);
    }
    /// `dst = base + (index << scale) + disp`
    pub fn lea(&mut self, dst: IntReg, base: IntReg, index: IntReg, scale: u8, disp: i64) {
        let mut i = Inst::new(Opcode::Lea);
        i.dst = Some(dst.into());
        i.src1 = Some(base.into());
        i.src2 = Some(index.into());
        i.imm = disp;
        i.aux = scale;
        self.push(i);
    }

    // ---- integer multiply / divide --------------------------------------

    /// `dst = a * b` (low 64 bits)
    pub fn mul(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Mul, dst, a, b);
    }
    /// `dst = a / b` (signed; RISC-V semantics on division by zero)
    pub fn div(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Div, dst, a, b);
    }
    /// `dst = a % b` (signed)
    pub fn rem(&mut self, dst: IntReg, a: IntReg, b: IntReg) {
        self.rrr(Opcode::Rem, dst, a, b);
    }

    // ---- floating point --------------------------------------------------

    fn fff(&mut self, op: Opcode, dst: FpReg, a: FpReg, b: FpReg) {
        let mut i = Inst::new(op);
        i.dst = Some(dst.into());
        i.src1 = Some(a.into());
        i.src2 = Some(b.into());
        self.push(i);
    }

    /// `dst = a + b`
    pub fn fadd(&mut self, dst: FpReg, a: FpReg, b: FpReg) {
        self.fff(Opcode::Fadd, dst, a, b);
    }
    /// `dst = a - b`
    pub fn fsub(&mut self, dst: FpReg, a: FpReg, b: FpReg) {
        self.fff(Opcode::Fsub, dst, a, b);
    }
    /// `dst = a * b`
    pub fn fmul(&mut self, dst: FpReg, a: FpReg, b: FpReg) {
        self.fff(Opcode::Fmul, dst, a, b);
    }
    /// `dst = a / b`
    pub fn fdiv(&mut self, dst: FpReg, a: FpReg, b: FpReg) {
        self.fff(Opcode::Fdiv, dst, a, b);
    }
    /// `dst = (a < b) ? 1 : 0` — FP compare into an integer register.
    pub fn fcmplt(&mut self, dst: IntReg, a: FpReg, b: FpReg) {
        let mut i = Inst::new(Opcode::FcmpLt);
        i.dst = Some(dst.into());
        i.src1 = Some(a.into());
        i.src2 = Some(b.into());
        self.push(i);
    }
    /// `dst = a as f64` — integer to double.
    pub fn fcvti2f(&mut self, dst: FpReg, a: IntReg) {
        let mut i = Inst::new(Opcode::Fcvti2f);
        i.dst = Some(dst.into());
        i.src1 = Some(a.into());
        self.push(i);
    }
    /// `dst = a as i64` — double to integer (truncating).
    pub fn fcvtf2i(&mut self, dst: IntReg, a: FpReg) {
        let mut i = Inst::new(Opcode::Fcvtf2i);
        i.dst = Some(dst.into());
        i.src1 = Some(a.into());
        self.push(i);
    }
    /// `dst = a` — FP register move.
    pub fn fmov(&mut self, dst: FpReg, a: FpReg) {
        let mut i = Inst::new(Opcode::Fmov);
        i.dst = Some(dst.into());
        i.src1 = Some(a.into());
        self.push(i);
    }

    // ---- memory ------------------------------------------------------------

    fn load(&mut self, op: Opcode, dst: ArchReg, base: IntReg, disp: i64) {
        let mut i = Inst::new(op);
        i.dst = Some(dst);
        i.src1 = Some(base.into());
        i.imm = disp;
        self.push(i);
    }

    /// `dst = mem64[base + disp]`
    pub fn ld(&mut self, dst: IntReg, base: IntReg, disp: i64) {
        self.load(Opcode::Ld, dst.into(), base, disp);
    }
    /// `dst = zext(mem32[base + disp])`
    pub fn ld32(&mut self, dst: IntReg, base: IntReg, disp: i64) {
        self.load(Opcode::Ld32, dst.into(), base, disp);
    }
    /// `dst = zext(mem16[base + disp])`
    pub fn ld16(&mut self, dst: IntReg, base: IntReg, disp: i64) {
        self.load(Opcode::Ld16, dst.into(), base, disp);
    }
    /// `dst = zext(mem8[base + disp])`
    pub fn ld8(&mut self, dst: IntReg, base: IntReg, disp: i64) {
        self.load(Opcode::Ld8, dst.into(), base, disp);
    }
    /// `dst = mem64[base + (index << scale) + disp]`
    pub fn ld_idx(&mut self, dst: IntReg, base: IntReg, index: IntReg, scale: u8, disp: i64) {
        let mut i = Inst::new(Opcode::LdIdx);
        i.dst = Some(dst.into());
        i.src1 = Some(base.into());
        i.src2 = Some(index.into());
        i.imm = disp;
        i.aux = scale;
        self.push(i);
    }
    /// `dst = mem64[base + disp]` — FP load.
    pub fn fld(&mut self, dst: FpReg, base: IntReg, disp: i64) {
        self.load(Opcode::Fld, dst.into(), base, disp);
    }

    fn store(&mut self, op: Opcode, base: IntReg, disp: i64, data: ArchReg) {
        let mut i = Inst::new(op);
        i.src1 = Some(base.into());
        i.src2 = Some(data);
        i.imm = disp;
        self.push(i);
    }

    /// `mem64[base + disp] = data`
    pub fn st(&mut self, base: IntReg, disp: i64, data: IntReg) {
        self.store(Opcode::St, base, disp, data.into());
    }
    /// `mem32[base + disp] = data`
    pub fn st32(&mut self, base: IntReg, disp: i64, data: IntReg) {
        self.store(Opcode::St32, base, disp, data.into());
    }
    /// `mem16[base + disp] = data`
    pub fn st16(&mut self, base: IntReg, disp: i64, data: IntReg) {
        self.store(Opcode::St16, base, disp, data.into());
    }
    /// `mem8[base + disp] = data`
    pub fn st8(&mut self, base: IntReg, disp: i64, data: IntReg) {
        self.store(Opcode::St8, base, disp, data.into());
    }
    /// `mem64[base + disp] = data` — FP store.
    pub fn fst(&mut self, base: IntReg, disp: i64, data: FpReg) {
        self.store(Opcode::Fst, base, disp, data.into());
    }

    // ---- control flow --------------------------------------------------------

    fn branch(&mut self, op: Opcode, a: IntReg, b: IntReg, target: Label) {
        let mut i = Inst::new(op);
        i.src1 = Some(a.into());
        i.src2 = Some(b.into());
        self.push_target(i, target);
    }

    /// Branch if `a == b`.
    pub fn beq(&mut self, a: IntReg, b: IntReg, target: Label) {
        self.branch(Opcode::Beq, a, b, target);
    }
    /// Branch if `a != b`.
    pub fn bne(&mut self, a: IntReg, b: IntReg, target: Label) {
        self.branch(Opcode::Bne, a, b, target);
    }
    /// Branch if `(a as i64) < (b as i64)`.
    pub fn blt(&mut self, a: IntReg, b: IntReg, target: Label) {
        self.branch(Opcode::Blt, a, b, target);
    }
    /// Branch if `(a as i64) >= (b as i64)`.
    pub fn bge(&mut self, a: IntReg, b: IntReg, target: Label) {
        self.branch(Opcode::Bge, a, b, target);
    }
    /// Branch if `a < b` (unsigned).
    pub fn bltu(&mut self, a: IntReg, b: IntReg, target: Label) {
        self.branch(Opcode::Bltu, a, b, target);
    }
    /// Branch if `a >= b` (unsigned).
    pub fn bgeu(&mut self, a: IntReg, b: IntReg, target: Label) {
        self.branch(Opcode::Bgeu, a, b, target);
    }

    /// Branch if `a == imm` (clobbers the scratch register `r30`).
    pub fn beq_imm(&mut self, a: IntReg, imm: i64, target: Label) {
        self.movi(Self::SCRATCH, imm);
        self.beq(a, Self::SCRATCH, target);
    }
    /// Branch if `a != imm` (clobbers the scratch register `r30`).
    pub fn bne_imm(&mut self, a: IntReg, imm: i64, target: Label) {
        self.movi(Self::SCRATCH, imm);
        self.bne(a, Self::SCRATCH, target);
    }
    /// Branch if `(a as i64) < imm` (clobbers the scratch register `r30`).
    pub fn blt_imm(&mut self, a: IntReg, imm: i64, target: Label) {
        self.movi(Self::SCRATCH, imm);
        self.blt(a, Self::SCRATCH, target);
    }
    /// Branch if `(a as i64) >= imm` (clobbers the scratch register `r30`).
    pub fn bge_imm(&mut self, a: IntReg, imm: i64, target: Label) {
        self.movi(Self::SCRATCH, imm);
        self.bge(a, Self::SCRATCH, target);
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, target: Label) {
        self.push_target(Inst::new(Opcode::Jmp), target);
    }
    /// Indirect jump to the instruction index in `a`.
    pub fn jmp_r(&mut self, a: IntReg) {
        let mut i = Inst::new(Opcode::JmpR);
        i.src1 = Some(a.into());
        self.push(i);
    }
    /// Direct call; the return address (pc+1) is written to `r31`.
    pub fn call(&mut self, target: Label) {
        let mut i = Inst::new(Opcode::Call);
        i.dst = Some(IntReg::LINK.into());
        self.push_target(i, target);
    }
    /// Indirect call via `a`; the return address is written to `r31`.
    pub fn call_r(&mut self, a: IntReg) {
        let mut i = Inst::new(Opcode::CallR);
        i.dst = Some(IntReg::LINK.into());
        i.src1 = Some(a.into());
        self.push(i);
    }
    /// Return through `r31`.
    pub fn ret(&mut self) {
        let mut i = Inst::new(Opcode::Ret);
        i.src1 = Some(IntReg::LINK.into());
        self.push(i);
    }
    /// Return through an explicit register.
    pub fn ret_via(&mut self, a: IntReg) {
        let mut i = Inst::new(Opcode::Ret);
        i.src1 = Some(a.into());
        self.push(i);
    }
    /// Stop the machine.
    pub fn halt(&mut self) {
        self.push(Inst::new(Opcode::Halt));
    }

    /// Resolves labels and produces a validated [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnboundLabel`] if a referenced label was never
    /// bound, plus any validation error from [`Program::new`].
    pub fn build(mut self) -> Result<Program, IsaError> {
        for (idx, label) in &self.fixups {
            let pos = self.labels[label.0].ok_or(IsaError::UnboundLabel(label.0))?;
            self.insts[*idx].imm = pos as i64;
        }
        Program::new(self.insts, self.data, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstClass;

    #[test]
    fn forward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let r1 = IntReg::new(1);
        let end = b.label();
        b.movi(r1, 0);
        b.jmp(end);
        b.addi(r1, r1, 99); // skipped
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.inst(1).unwrap().imm, 3);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jmp(l);
        b.halt();
        assert!(matches!(b.build(), Err(IsaError::UnboundLabel(_))));
    }

    #[test]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.bind(l)));
        assert!(r.is_err());
    }

    #[test]
    fn data_allocation_is_aligned_and_disjoint() {
        let mut b = ProgramBuilder::new();
        let a = b.add_data(vec![1, 2, 3]);
        let c = b.add_data_u64(&[42]);
        let z = b.alloc_zeroed(100);
        assert_eq!(a % 64, 0);
        assert!(c >= a + 3);
        assert_eq!(c % 64, 0);
        assert!(z >= c + 8);
        b.halt();
        assert!(b.build().is_ok());
    }

    #[test]
    fn imm_branches_use_scratch() {
        let mut b = ProgramBuilder::new();
        let r1 = IntReg::new(1);
        let top = b.label();
        b.bind(top);
        b.bne_imm(r1, 7, top);
        b.halt();
        let p = b.build().unwrap();
        // movi scratch, 7 ; bne r1, scratch -> 2 µ-ops + halt
        assert_eq!(p.len(), 3);
        assert_eq!(p.inst(0).unwrap().dst, Some(ProgramBuilder::SCRATCH.into()));
        assert_eq!(p.inst(1).unwrap().class(), InstClass::Branch);
    }

    #[test]
    fn call_writes_link_register() {
        let mut b = ProgramBuilder::new();
        let f = b.label();
        b.call(f);
        b.halt();
        b.bind(f);
        b.ret();
        let p = b.build().unwrap();
        assert_eq!(p.inst(0).unwrap().dst, Some(IntReg::LINK.into()));
        assert_eq!(p.inst(2).unwrap().src1, Some(IntReg::LINK.into()));
    }
}
