//! Program container: instruction stream plus initial data segments.

use crate::inst::{Inst, InstClass};
use crate::IsaError;

/// An initialized region of memory loaded before execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataSegment {
    /// Base byte address.
    pub base: u64,
    /// Contents.
    pub bytes: Vec<u8>,
}

/// A complete program: instructions (pc = instruction index) and data.
///
/// Instruction addresses are word-granular: the µ-op at index `i` occupies
/// byte addresses `[4*i, 4*i+4)` for the purposes of the I-cache and BTB
/// models.
#[derive(Clone, Debug)]
pub struct Program {
    insts: Vec<Inst>,
    data: Vec<DataSegment>,
    entry: u32,
}

impl Program {
    /// Bytes per instruction slot (used for I-cache/BTB addressing).
    pub const INST_BYTES: u64 = 4;

    /// Assembles a program from parts, validating control-flow targets.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::TargetOutOfRange`] if any direct branch, jump or
    /// call targets an instruction index outside the program, and
    /// [`IsaError::DataOverlap`] if two data segments overlap.
    pub fn new(insts: Vec<Inst>, data: Vec<DataSegment>, entry: u32) -> Result<Self, IsaError> {
        let n = insts.len() as u32;
        if entry >= n {
            return Err(IsaError::PcOutOfRange(entry));
        }
        for (i, inst) in insts.iter().enumerate() {
            let cls = inst.class();
            let is_direct = matches!(cls, InstClass::Branch | InstClass::Jump | InstClass::Call);
            if is_direct {
                let t = inst.imm;
                if t < 0 || t as u64 >= n as u64 {
                    return Err(IsaError::TargetOutOfRange { inst: i as u32, target: t as u32 });
                }
            }
        }
        let mut spans: Vec<(u64, u64)> = data
            .iter()
            .filter(|s| !s.bytes.is_empty())
            .map(|s| (s.base, s.base + s.bytes.len() as u64))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(IsaError::DataOverlap { base: w[1].0 });
            }
        }
        Ok(Program { insts, data, entry })
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn inst(&self, pc: u32) -> Option<&Inst> {
        self.insts.get(pc as usize)
    }

    /// All instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Initial data segments.
    pub fn data(&self) -> &[DataSegment] {
        &self.data
    }

    /// Entry instruction index.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Byte address of the instruction slot at `pc` (for I-cache/BTB models).
    pub fn inst_addr(pc: u32) -> u64 {
        pc as u64 * Self::INST_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode;

    #[test]
    fn rejects_out_of_range_branch_target() {
        let mut b = Inst::new(Opcode::Jmp);
        b.imm = 10;
        let err = Program::new(vec![b, Inst::new(Opcode::Halt)], vec![], 0).unwrap_err();
        assert!(matches!(err, IsaError::TargetOutOfRange { inst: 0, target: 10 }));
    }

    #[test]
    fn rejects_overlapping_data() {
        let insts = vec![Inst::new(Opcode::Halt)];
        let d1 = DataSegment { base: 100, bytes: vec![0; 10] };
        let d2 = DataSegment { base: 105, bytes: vec![0; 10] };
        let err = Program::new(insts, vec![d1, d2], 0).unwrap_err();
        assert!(matches!(err, IsaError::DataOverlap { base: 105 }));
    }

    #[test]
    fn accepts_adjacent_data() {
        let insts = vec![Inst::new(Opcode::Halt)];
        let d1 = DataSegment { base: 100, bytes: vec![0; 10] };
        let d2 = DataSegment { base: 110, bytes: vec![0; 10] };
        assert!(Program::new(insts, vec![d1, d2], 0).is_ok());
    }

    #[test]
    fn inst_addresses_are_word_spaced() {
        assert_eq!(Program::inst_addr(0), 0);
        assert_eq!(Program::inst_addr(16), 64); // 16 µ-ops per 64 B cache line
    }

    #[test]
    fn entry_must_be_in_range() {
        let err = Program::new(vec![Inst::new(Opcode::Halt)], vec![], 5).unwrap_err();
        assert!(matches!(err, IsaError::PcOutOfRange(5)));
    }
}
