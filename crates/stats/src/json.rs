//! A minimal JSON reader for the harness's own payloads.
//!
//! The build environment has no crates.io access, so the emitters in
//! [`crate::report`] hand-roll their serialization; this module is the
//! matching reader. It parses the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null) into a [`Json`] tree —
//! enough for the trend tooling (`experiments compare`) and the
//! throughput harness (`sim-throughput --baseline`) to read back the
//! files they themselves wrote.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable description with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { text, bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (`Num` only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer (`Num` whose `f64` is a
    /// non-negative whole number within `f64`'s exact-integer range).
    /// Counters stored by the result store round-trip through this: JSON
    /// has one number type, and every counter the simulator emits fits in
    /// 2^53 by a wide margin.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(v) if *v >= 0.0 && *v <= MAX_EXACT && v.fract() == 0.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean (`Bool` only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice (`Str` only).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice (`Arr` only).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not emitted by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; `pos` only ever advances
                    // past complete scalars, so it stays a char boundary.
                    match self.text[self.pos..].chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err("unterminated string".into()),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        // Everything consumed above is ASCII, so the slice stays on
        // char boundaries.
        let text = &self.text[start..self.pos];
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn as_u64_accepts_exact_integers_only() {
        assert_eq!(Json::parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Json::parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"12\"").unwrap().as_u64(), None);
    }

    #[test]
    fn as_bool_matches_bool_values_only() {
        assert_eq!(Json::parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(Json::parse("false").unwrap().as_bool(), Some(false));
        assert_eq!(Json::parse("1").unwrap().as_bool(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nil").is_err());
    }

    #[test]
    fn round_trips_a_report() {
        use crate::report::{Cell, ExperimentReport};
        let mut r = ExperimentReport::new("fig6", "t").column("bench").column_unit("s", "×");
        r.add_row(vec!["gzip".into(), Cell::Num(1.25)]);
        let v = Json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("fig6"));
        let rows = v.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].as_arr().unwrap()[1].as_f64(), Some(1.25));
    }

    #[test]
    fn unicode_and_escape_round_trip() {
        let v = Json::parse("\"caf\\u00e9 — µops\"").unwrap();
        assert_eq!(v.as_str(), Some("café — µops"));
    }
}
