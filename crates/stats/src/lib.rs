//! # eole-stats
//!
//! Reporting utilities for the EOLE reproduction: aligned/Markdown/CSV
//! result tables ([`table::Table`]), geometric-mean speedup aggregation and
//! occupancy histograms ([`summary`]).
//!
//! ## Example
//!
//! ```
//! use eole_stats::table::Table;
//! use eole_stats::summary::geometric_mean;
//!
//! let mut t = Table::new("Fig. 6 — VP speedup", &["bench", "speedup"]);
//! t.add_row(vec!["wupwise".into(), "1.25".into()]);
//! assert!(t.to_markdown().contains("| wupwise | 1.25 |"));
//! assert!((geometric_mean(&[1.2, 1.2]).unwrap() - 1.2).abs() < 1e-9);
//! ```

pub mod summary;
pub mod table;
