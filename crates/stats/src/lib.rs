//! # eole-stats
//!
//! Reporting utilities for the EOLE reproduction:
//!
//! * [`report::ExperimentReport`] — the typed result grid every experiment
//!   returns: named, unit-annotated columns and text/Markdown/JSON/CSV
//!   emitters (the JSON layout is documented in `EXPERIMENTS.md`).
//! * [`table::Table`] — a plain string table for ad-hoc display.
//! * [`json::Json`] — a minimal JSON reader, the matching parser for the
//!   hand-rolled emitters (trend tooling reads back `results.json` and
//!   `BENCH_throughput.json` with it).
//! * [`summary`] — geometric-mean speedup aggregation and occupancy
//!   histograms.
//!
//! ## Example
//!
//! ```
//! use eole_stats::report::{Cell, ExperimentReport};
//! use eole_stats::summary::geometric_mean;
//!
//! let mut r = ExperimentReport::new("fig6", "Fig. 6 — VP speedup")
//!     .column("bench")
//!     .column_unit("speedup", "×");
//! r.add_row(vec!["wupwise".into(), Cell::Num(1.25)]);
//! assert!(r.render_markdown().contains("| wupwise | 1.250 |"));
//! assert!(r.to_json().contains("\"rows\":[[\"wupwise\",1.25]]"));
//! assert!((geometric_mean(&[1.2, 1.2]).unwrap() - 1.2).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod json;
pub mod report;
pub mod summary;
pub mod table;
