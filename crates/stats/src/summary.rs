//! Summary statistics used in the evaluation: geometric means for speedup
//! aggregation and small formatting helpers.

/// Geometric mean of strictly positive values; `None` if empty or any value
/// is non-positive.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; `None` if empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Formats a ratio with three decimals (the style of the paper's speedup
/// axes).
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// A streaming histogram over integer samples (occupancy tracking etc.).
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest value `v` such that at least `q` (0..=1) of samples are ≤ v.
    pub fn quantile(&self, q: f64) -> usize {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (v, c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return v;
            }
        }
        self.counts.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_uniform_is_identity() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_of_reciprocals_is_one() {
        let g = geometric_mean(&[4.0, 0.25]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_rejects_empty_and_nonpositive() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ratio(1.04999), "1.050");
        assert_eq!(fmt_pct(0.123), "12.3%");
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1usize, 2, 2, 3, 10] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert!((h.mean() - 3.6).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }
}
