//! Result tables: aligned text, Markdown and CSV rendering.
//!
//! The experiment harness prints one table per paper figure/table; the same
//! `Table` also serializes to Markdown for `EXPERIMENTS.md`.

/// A rectangular results table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable cells.
    pub fn push_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Renders an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = w[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
        }
        out
    }

    /// Renders a GitHub-flavored Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// Renders CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["bench", "ipc"]);
        t.add_row(vec!["gzip".into(), "0.98".into()]);
        t.add_row(vec!["mcf".into(), "0.11".into()]);
        t
    }

    #[test]
    fn text_rendering_is_aligned() {
        let txt = sample().to_text();
        assert!(txt.contains("== Demo =="));
        assert!(txt.contains("gzip"));
        let lines: Vec<&str> = txt.lines().collect();
        // Header, rule, two rows, plus the title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn markdown_has_separator_row() {
        let md = sample().to_markdown();
        assert!(md.contains("| bench | ipc |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| mcf | 0.11 |"));
    }

    #[test]
    fn csv_round_trip_row_count() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }
}
