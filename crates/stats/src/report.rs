//! Machine-readable experiment reports.
//!
//! [`ExperimentReport`] is the result type of every experiment in the
//! harness: a titled grid of typed cells with named, unit-annotated
//! columns. Unlike [`crate::table::Table`] (display-only strings), a
//! report keeps numbers as numbers until an emitter renders them, so the
//! same result can feed a terminal ([`ExperimentReport::render_text`]),
//! `EXPERIMENTS.md` ([`ExperimentReport::render_markdown`]), or
//! downstream tooling ([`ExperimentReport::to_json`],
//! [`ExperimentReport::to_csv`]).
//!
//! All serialization is hand-rolled — the build environment has no
//! crates.io access. The JSON layout is versioned (`eole-report/v1`) and
//! documented in `EXPERIMENTS.md`.

/// One column of a report: a display name plus an optional unit
/// (`"IPC"`, `"×"`, `"%"`, `"cycles"`, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Unit annotation; `None` for unitless/text columns.
    pub unit: Option<String>,
}

impl ColumnSpec {
    /// A unitless column.
    pub fn new(name: impl Into<String>) -> Self {
        ColumnSpec { name: name.into(), unit: None }
    }

    /// A column with a unit.
    pub fn with_unit(name: impl Into<String>, unit: impl Into<String>) -> Self {
        ColumnSpec { name: name.into(), unit: Some(unit.into()) }
    }
}

/// One typed cell of a report.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// Free text (row labels, config names, descriptions).
    Text(String),
    /// An exact counter.
    Int(u64),
    /// A measured/derived quantity; rendered with 3 decimals in the text
    /// emitters, full precision in JSON.
    Num(f64),
}

impl Cell {
    /// Display rendering (text, Markdown and CSV emitters).
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(i) => i.to_string(),
            Cell::Num(v) => format!("{v:.3}"),
        }
    }

    /// Full-precision rendering for machine-readable CSV (`{v}` prints
    /// the shortest string that round-trips the `f64`).
    fn render_precise(&self) -> String {
        match self {
            Cell::Num(v) => format!("{v}"),
            other => other.render(),
        }
    }

    /// JSON rendering: numbers stay numbers; non-finite floats become
    /// `null` (JSON has no NaN/Inf).
    fn to_json(&self) -> String {
        match self {
            Cell::Text(s) => json_string(s),
            Cell::Int(i) => i.to_string(),
            Cell::Num(v) if v.is_finite() => format!("{v}"),
            Cell::Num(_) => "null".to_string(),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<u64> for Cell {
    fn from(i: u64) -> Self {
        Cell::Int(i)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

/// Escapes a string into a JSON string literal (quotes included) — the
/// one escaper every hand-rolled emitter in the workspace shares.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes a CSV field per RFC 4180: quoted when it contains a comma,
/// quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A titled grid of typed results — what every experiment returns.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentReport {
    id: String,
    title: String,
    columns: Vec<ColumnSpec>,
    rows: Vec<Vec<Cell>>,
    notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report. `id` is the stable machine name
    /// (`"fig7"`, `"table3"`, …); `title` is the human heading.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            columns: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a methodology annotation (e.g. "stitched from 8
    /// intervals, warmup 5000 µ-ops") rendered under the title in every
    /// format. Annotations never change the data grid — they exist so a
    /// report built from approximate (interval-stitched) runs can never
    /// masquerade as a serial one.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Methodology annotations, in insertion order.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Appends a unitless column (builder style).
    #[must_use]
    pub fn column(mut self, name: impl Into<String>) -> Self {
        self.columns.push(ColumnSpec::new(name));
        self
    }

    /// Appends a unit-annotated column (builder style).
    #[must_use]
    pub fn column_unit(mut self, name: impl Into<String>, unit: impl Into<String>) -> Self {
        self.columns.push(ColumnSpec::with_unit(name, unit));
        self
    }

    /// Appends several columns sharing one unit (speedup grids).
    #[must_use]
    pub fn columns_unit<I, S>(mut self, names: I, unit: &str) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for n in names {
            self.columns.push(ColumnSpec::with_unit(n, unit));
        }
        self
    }

    /// Stable machine name.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column specifications.
    pub fn columns(&self) -> &[ColumnSpec] {
        &self.columns
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The cell at (`row`, `col`), if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&Cell> {
        self.rows.get(row).and_then(|r| r.get(col))
    }

    /// The cell at (`row`, `col`) as an `f64` (`Int` widens; `Text`
    /// parses), if possible. Convenience for tests and aggregation.
    pub fn value(&self, row: usize, col: usize) -> Option<f64> {
        match self.cell(row, col)? {
            Cell::Num(v) => Some(*v),
            Cell::Int(i) => Some(*i as f64),
            Cell::Text(s) => s.parse().ok(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count — a harness
    /// bug, not a runtime condition.
    pub fn add_row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "report {}: row width {} != column count {}",
            self.id,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    fn header_labels(&self) -> Vec<String> {
        self.columns
            .iter()
            .map(|c| match &c.unit {
                Some(u) => format!("{} ({u})", c.name),
                None => c.name.clone(),
            })
            .collect()
    }

    /// Renders an aligned plain-text table (terminal output).
    pub fn render_text(&self) -> String {
        let headers = self.header_labels();
        let rendered: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(Cell::render).collect()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        let mut out = format!("== {} ==\n", self.title);
        for n in &self.notes {
            out.push_str(&format!("[{n}]\n"));
        }
        out.push_str(&fmt_row(&headers));
        let total: usize =
            widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &rendered {
            out.push_str(&fmt_row(r));
        }
        out
    }

    /// Renders a GitHub-flavored Markdown table.
    pub fn render_markdown(&self) -> String {
        let headers = self.header_labels();
        let mut out = format!("### {}\n\n", self.title);
        for n in &self.notes {
            out.push_str(&format!("_{n}_\n\n"));
        }
        out.push_str(&format!("| {} |\n", headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(headers.len())));
        for r in &self.rows {
            let cells: Vec<String> = r.iter().map(Cell::render).collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }

    /// Serializes to the `eole-report/v1` JSON object (schema in
    /// `EXPERIMENTS.md`): columns keep their units, numeric cells stay
    /// numeric at full precision.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":\"eole-report/v1\",");
        out.push_str(&format!("\"id\":{},", json_string(&self.id)));
        out.push_str(&format!("\"title\":{},", json_string(&self.title)));
        // Additive to the v1 schema: only emitted when annotations exist,
        // so unannotated payloads stay byte-identical to older ones.
        if !self.notes.is_empty() {
            out.push_str("\"notes\":[");
            for (i, n) in self.notes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(n));
            }
            out.push_str("],");
        }
        out.push_str("\"columns\":[");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":{}", json_string(&c.name)));
            match &c.unit {
                Some(u) => out.push_str(&format!(",\"unit\":{}}}", json_string(u))),
                None => out.push_str(",\"unit\":null}"),
            }
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&cell.to_json());
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Serializes to RFC-4180-style CSV: one header row (units folded
    /// into the header as `name (unit)`), then one line per data row.
    /// Numeric cells keep full precision (matching the JSON emitter),
    /// unlike the 3-decimal display renderings.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let headers: Vec<String> =
            self.header_labels().iter().map(|h| csv_field(h)).collect();
        out.push_str(&headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> =
                row.iter().map(|c| csv_field(&c.render_precise())).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// Serializes several reports as one JSON array (the `--format json`
/// payload of the `experiments` CLI wraps this with run metadata).
pub fn reports_to_json(reports: &[ExperimentReport]) -> String {
    let mut out = String::from("[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_json());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        let mut r = ExperimentReport::new("demo", "Demo — sample")
            .column("bench")
            .column_unit("ipc", "IPC")
            .column_unit("squashes", "count");
        r.add_row(vec!["gzip".into(), Cell::Num(0.984), Cell::Int(12)]);
        r.add_row(vec!["mcf".into(), Cell::Num(0.105), Cell::Int(3)]);
        r
    }

    #[test]
    fn json_matches_golden_string() {
        let json = sample().to_json();
        assert_eq!(
            json,
            "{\"schema\":\"eole-report/v1\",\"id\":\"demo\",\
             \"title\":\"Demo — sample\",\
             \"columns\":[{\"name\":\"bench\",\"unit\":null},\
             {\"name\":\"ipc\",\"unit\":\"IPC\"},\
             {\"name\":\"squashes\",\"unit\":\"count\"}],\
             \"rows\":[[\"gzip\",0.984,12],[\"mcf\",0.105,3]]}"
                .replace("             ", "")
        );
    }

    #[test]
    fn csv_matches_golden_string() {
        let csv = sample().to_csv();
        assert_eq!(csv, "bench,ipc (IPC),squashes (count)\ngzip,0.984,12\nmcf,0.105,3\n");
    }

    #[test]
    fn csv_keeps_full_numeric_precision() {
        let mut r = ExperimentReport::new("p", "Precision").column("x").column_unit("v", "×");
        r.add_row(vec!["a".into(), Cell::Num(0.9610893364928157)]);
        assert_eq!(r.to_csv(), "x,v (×)\na,0.9610893364928157\n");
    }

    #[test]
    fn csv_quotes_fields_with_commas_and_quotes() {
        let mut r = ExperimentReport::new("q", "Quoting").column("a").column("b");
        r.add_row(vec!["has,comma".into(), "has \"quote\"".into()]);
        assert_eq!(r.to_csv(), "a,b\n\"has,comma\",\"has \"\"quote\"\"\"\n");
    }

    #[test]
    fn json_escapes_special_characters_and_nan() {
        let mut r = ExperimentReport::new("esc", "with \"quotes\"\nand newline")
            .column("x")
            .column("v");
        r.add_row(vec!["tab\there".into(), Cell::Num(f64::NAN)]);
        let json = r.to_json();
        assert!(json.contains("\"title\":\"with \\\"quotes\\\"\\nand newline\""));
        assert!(json.contains("\"tab\\there\""));
        assert!(json.contains(",null]"), "NaN must serialize as null: {json}");
    }

    #[test]
    fn markdown_folds_units_into_headers() {
        let md = sample().render_markdown();
        assert!(md.contains("### Demo — sample"));
        assert!(md.contains("| bench | ipc (IPC) | squashes (count) |"));
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| gzip | 0.984 | 12 |"));
    }

    #[test]
    fn text_rendering_is_aligned() {
        let txt = sample().render_text();
        assert!(txt.starts_with("== Demo — sample ==\n"));
        assert_eq!(txt.lines().count(), 5); // title, header, rule, 2 rows
    }

    #[test]
    fn value_accessor_widens_and_parses() {
        let r = sample();
        assert_eq!(r.value(0, 1), Some(0.984));
        assert_eq!(r.value(0, 2), Some(12.0));
        assert_eq!(r.value(0, 0), None, "\"gzip\" is not numeric");
        assert_eq!(r.value(9, 0), None, "out of range");
    }

    #[test]
    fn reports_to_json_is_a_valid_array() {
        let arr = reports_to_json(&[sample(), sample()]);
        assert!(arr.starts_with('['));
        assert!(arr.ends_with(']'));
        assert_eq!(arr.matches("\"schema\":\"eole-report/v1\"").count(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut r = ExperimentReport::new("x", "x").column("a").column("b");
        r.add_row(vec!["only-one".into()]);
    }
}
