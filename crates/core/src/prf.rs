//! Physical register file: per-class free lists, banking, and the
//! readiness scoreboard.
//!
//! Banking follows §6.3: destination registers of consecutive µ-ops are
//! forced into distinct banks round-robin, and *rename stalls when the
//! current bank has no free register* — that is the only performance cost
//! of banking the paper measures in Fig. 10.
//!
//! Readiness is an absolute cycle number per physical register; an
//! instruction may issue when every source's `ready_at ≤ now`. A used value
//! prediction makes the destination ready at dispatch time.

use eole_isa::RegClass;

use crate::config::ConfigError;

/// A physical register index within its class.
pub type PhysReg = u16;

/// Cycle value meaning "not ready / unknown".
pub const NOT_READY: u64 = u64::MAX;

#[derive(Clone, Debug)]
struct ClassFile {
    ready: Vec<u64>,
    free: Vec<Vec<PhysReg>>,
    cursor: usize,
}

/// The physical register file (both classes).
#[derive(Clone, Debug)]
pub struct Prf {
    banks: usize,
    files: [ClassFile; 2],
}

fn class_index(class: RegClass) -> usize {
    match class {
        RegClass::Int => 0,
        RegClass::Fp => 1,
    }
}

impl Prf {
    /// Creates a PRF with `int_regs`/`fp_regs` physical registers split
    /// across `banks` banks. Registers `0..32` of each class are reserved
    /// for the initial architectural mapping and marked ready at cycle 0.
    ///
    /// # Errors
    ///
    /// A typed [`ConfigError`] unless sizes divide evenly by `banks` and
    /// cover the architectural registers — the former `assert!` panics,
    /// now reportable through `CoreConfig::builder().build()` / the
    /// executor's `RunError` instead of aborting the process.
    pub fn try_new(int_regs: usize, fp_regs: usize, banks: usize) -> Result<Self, ConfigError> {
        if banks == 0 || !banks.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { field: "prf_banks", got: banks });
        }
        for regs in [int_regs, fp_regs] {
            if !regs.is_multiple_of(banks) {
                return Err(ConfigError::PrfNotBankDivisible { regs, banks });
            }
        }
        if int_regs < 64 || fp_regs < 64 {
            return Err(ConfigError::PrfTooSmall { int_prf: int_regs, fp_prf: fp_regs });
        }
        Ok(Self::build_unchecked(int_regs, fp_regs, banks))
    }

    /// Infallible [`Prf::try_new`] for tests and callers with
    /// pre-validated shapes.
    ///
    /// # Panics
    ///
    /// Panics with the rendered [`ConfigError`] on an invalid shape.
    pub fn new(int_regs: usize, fp_regs: usize, banks: usize) -> Self {
        Self::try_new(int_regs, fp_regs, banks).unwrap_or_else(|e| panic!("{e}")) // lint:allow(error-typing) documented `# Panics` convenience wrapper over `try_new`
    }

    fn build_unchecked(int_regs: usize, fp_regs: usize, banks: usize) -> Self {
        let build = |n: usize| -> ClassFile {
            let mut ready = vec![NOT_READY; n];
            let mut free = vec![Vec::new(); banks];
            for p in (32..n as u16).rev() {
                free[p as usize % banks].push(p);
            }
            for r in ready.iter_mut().take(32) {
                *r = 0;
            }
            ClassFile { ready, free, cursor: 0 }
        };
        Prf { banks, files: [build(int_regs), build(fp_regs)] }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// The bank a physical register lives in.
    pub fn bank_of(&self, preg: PhysReg) -> usize {
        preg as usize % self.banks
    }

    /// The bank the *next* allocation for `class` will come from (used to
    /// pre-check per-bank write budgets before allocating).
    pub fn peek_alloc_bank(&self, class: RegClass) -> usize {
        self.files[class_index(class)].cursor
    }

    /// Allocates a destination register in the round-robin bank, or `None`
    /// if that bank is out of free registers (rename must stall — Fig. 10's
    /// load-unbalancing cost). The cursor only advances on success.
    pub fn alloc(&mut self, class: RegClass) -> Option<PhysReg> {
        let banks = self.banks;
        let f = &mut self.files[class_index(class)];
        let bank = f.cursor;
        let preg = f.free[bank].pop()?;
        f.cursor = (f.cursor + 1) % banks;
        f.ready[preg as usize] = NOT_READY;
        Some(preg)
    }

    /// Returns a register to its bank's free list.
    pub fn free(&mut self, class: RegClass, preg: PhysReg) {
        let bank = self.bank_of(preg);
        let f = &mut self.files[class_index(class)];
        debug_assert!(!f.free[bank].contains(&preg), "double free of p{preg}");
        f.free[bank].push(preg);
    }

    /// Resets the round-robin cursors (after a pipeline squash).
    pub fn reset_cursors(&mut self) {
        for f in &mut self.files {
            f.cursor = 0;
        }
    }

    /// Cycle at which `preg` becomes readable.
    pub fn ready_at(&self, class: RegClass, preg: PhysReg) -> u64 {
        self.files[class_index(class)].ready[preg as usize]
    }

    /// Marks `preg` ready at `cycle` if that is earlier than any previously
    /// recorded readiness (a used prediction at dispatch beats the later
    /// real execution; the real execution must not *delay* readiness).
    pub fn set_ready_min(&mut self, class: RegClass, preg: PhysReg, cycle: u64) {
        let r = &mut self.files[class_index(class)].ready[preg as usize];
        *r = (*r).min(cycle);
    }

    /// Free registers currently available in `class` (across all banks).
    pub fn free_count(&self, class: RegClass) -> usize {
        self.files[class_index(class)].free.iter().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_shapes_are_typed_errors_not_panics() {
        assert_eq!(
            Prf::try_new(256, 256, 3).unwrap_err(),
            ConfigError::NotPowerOfTwo { field: "prf_banks", got: 3 }
        );
        assert_eq!(
            Prf::try_new(250, 256, 4).unwrap_err(),
            ConfigError::PrfNotBankDivisible { regs: 250, banks: 4 }
        );
        assert_eq!(
            Prf::try_new(64, 32, 1).unwrap_err(),
            ConfigError::PrfTooSmall { int_prf: 64, fp_prf: 32 }
        );
        assert!(Prf::try_new(256, 256, 4).is_ok());
    }

    #[test]
    fn initial_arch_mapping_is_ready() {
        let prf = Prf::new(256, 256, 1);
        for p in 0..32 {
            assert_eq!(prf.ready_at(RegClass::Int, p), 0);
            assert_eq!(prf.ready_at(RegClass::Fp, p), 0);
        }
        assert_eq!(prf.free_count(RegClass::Int), 256 - 32);
    }

    #[test]
    fn allocation_round_robins_across_banks() {
        let mut prf = Prf::new(256, 256, 4);
        let banks: Vec<usize> = (0..8)
            .map(|_| {
                let p = prf.alloc(RegClass::Int).unwrap();
                prf.bank_of(p)
            })
            .collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn empty_bank_stalls_without_advancing() {
        let mut prf = Prf::new(64, 64, 2);
        // Bank 0 has 16 free (regs 32..64 split by parity), drain it.
        let mut drained = 0;
        loop {
            let bank = prf.peek_alloc_bank(RegClass::Int);
            match prf.alloc(RegClass::Int) {
                Some(_) => drained += 1,
                None => {
                    // Cursor must still point at the empty bank.
                    assert_eq!(prf.peek_alloc_bank(RegClass::Int), bank);
                    break;
                }
            }
            assert!(drained < 100);
        }
        // 32 free regs total, round-robin alternates banks; both banks have
        // 16, so all 32 allocate before a stall.
        assert_eq!(drained, 32);
    }

    #[test]
    fn freeing_refills_the_right_bank() {
        let mut prf = Prf::new(64, 64, 2);
        let p = prf.alloc(RegClass::Int).unwrap();
        let bank = prf.bank_of(p);
        let before = prf.free_count(RegClass::Int);
        prf.free(RegClass::Int, p);
        assert_eq!(prf.free_count(RegClass::Int), before + 1);
        assert_eq!(prf.bank_of(p), bank);
    }

    #[test]
    fn readiness_takes_the_minimum() {
        let mut prf = Prf::new(256, 256, 1);
        let p = prf.alloc(RegClass::Fp).unwrap();
        assert_eq!(prf.ready_at(RegClass::Fp, p), NOT_READY);
        prf.set_ready_min(RegClass::Fp, p, 100); // prediction at dispatch
        prf.set_ready_min(RegClass::Fp, p, 250); // real execution later
        assert_eq!(prf.ready_at(RegClass::Fp, p), 100);
    }

    #[test]
    fn alloc_resets_readiness() {
        let mut prf = Prf::new(256, 256, 1);
        let p = prf.alloc(RegClass::Int).unwrap();
        prf.set_ready_min(RegClass::Int, p, 5);
        prf.free(RegClass::Int, p);
        // Reallocate until we get the same register back.
        loop {
            let q = prf.alloc(RegClass::Int).unwrap();
            if q == p {
                assert_eq!(prf.ready_at(RegClass::Int, p), NOT_READY);
                break;
            }
        }
    }

    #[test]
    fn int_and_fp_files_are_independent() {
        let mut prf = Prf::new(256, 256, 4);
        let a = prf.alloc(RegClass::Int).unwrap();
        let b = prf.alloc(RegClass::Fp).unwrap();
        // Same preg number is legal across classes.
        assert_eq!(a, b);
        assert_eq!(prf.peek_alloc_bank(RegClass::Int), 1);
        assert_eq!(prf.peek_alloc_bank(RegClass::Fp), 1);
    }
}
