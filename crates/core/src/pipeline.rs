//! The EOLE pipeline model: a trace-driven, cycle-level superscalar with
//! value prediction, Early Execution beside Rename, and a Late Execution /
//! Validation / Training (LE/VT) stage before Commit.
//!
//! Stage order per simulated cycle (reverse pipeline order, standard for
//! cycle-by-cycle models): **commit+LE/VT → issue/execute → rename/dispatch
//! (incl. Early Execution) → fetch (incl. branch & value prediction)**.
//!
//! See `DESIGN.md` §3 for the modelling decisions (trace-driven fetch that
//! stalls on mispredicted branches instead of running wrong paths; oracle
//! branch history; squash = cursor rewind + ROB walk).

use std::collections::VecDeque;

use eole_isa::{InstClass, Program, RegClass, Trace};
use eole_mem::hierarchy::MemoryHierarchy;
use eole_predictors::branch::{
    Btb, BranchConfidence, DirectionPredictor, ReturnStack, Tage,
};
use eole_predictors::history::BranchHistory;
use eole_predictors::storesets::StoreSets;
use eole_predictors::value::{
    Fcm, LastValue, StridePredictor, TwoDeltaStride, ValuePredictor, Vtage,
    VtageTwoDeltaStride,
};

use crate::config::{latency, CoreConfig, ValuePredictorKind};
use crate::prf::{PhysReg, Prf, NOT_READY};
use crate::stats::SimStats;

/// A dynamic trace plus the precomputed branch-history log, shareable
/// across many simulator instances (one per configuration).
#[derive(Clone, Debug)]
pub struct PreparedTrace {
    insts: Vec<eole_isa::DynInst>,
    history: BranchHistory,
}

impl PreparedTrace {
    /// Prepares a raw trace for timing simulation.
    pub fn new(trace: Trace) -> Self {
        let history = BranchHistory::from_outcomes(&trace.branch_outcomes);
        PreparedTrace { insts: trace.insts, history }
    }

    /// Number of µ-ops.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the trace holds no µ-ops.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The µ-ops.
    pub fn insts(&self) -> &[eole_isa::DynInst] {
        &self.insts
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline stopped retiring (internal invariant broken).
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Instructions committed up to that point.
        committed: u64,
    },
    /// Configuration rejected by [`CoreConfig::validate`].
    BadConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { cycle, committed } => {
                write!(f, "pipeline deadlock at cycle {cycle} after {committed} commits")
            }
            SimError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// How a value becomes available to the Early Execution block's operand
/// sources (paper §3.2: immediate, local bypass, or the value predictor —
/// never the PRF).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Avail {
    /// Producer's *used prediction* travels with the rename group.
    Pred,
    /// Early-executed in EE stage 1.
    Ee1,
    /// Early-executed in EE stage 2 (2-deep EE only).
    Ee2,
    /// Result only exists in the PRF / OoO engine: not EE-consumable.
    No,
}

#[derive(Clone, Copy, Debug)]
struct Writer {
    renamed_cycle: u64,
    avail: Avail,
}

#[derive(Clone, Copy, Debug)]
struct SrcReg {
    class: RegClass,
    preg: PhysReg,
}

#[derive(Clone, Copy, Debug)]
struct DstReg {
    arch_flat: u8,
    class: RegClass,
    new: PhysReg,
    old: PhysReg,
}

#[derive(Clone, Copy, Debug)]
struct FrontUop {
    trace_idx: usize,
    seq: u64,
    at_rename: u64,
    vp_queried: bool,
    pred_some: bool,
    pred_used: bool,
    pred_correct: bool,
    /// Very-high-confidence conditional branch (storage-free TAGE conf).
    hc: bool,
    /// Fetch stalls until this µ-op resolves (mispredicted control).
    awaited: bool,
    /// Mispredicted indirect/return (for stats).
    ind_mispredict: bool,
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: u64,
    trace_idx: usize,
    dispatch_cycle: u64,
    class: InstClass,
    dst: Option<DstReg>,
    srcs: [Option<SrcReg>; 2],
    done_cycle: u64,
    ee: bool,
    le_alu: bool,
    le_branch: bool,
    vp_eligible: bool,
    vp_queried: bool,
    pred_some: bool,
    pred_used: bool,
    pred_correct: bool,
    hc: bool,
    awaited: bool,
    ind_mispredict: bool,
}

#[derive(Clone, Copy, Debug)]
struct LoadEntry {
    seq: u64,
    trace_idx: usize,
    addr: u64,
    size: u8,
    dep_store: Option<u64>,
    issued_at: u64,
}

#[derive(Clone, Copy, Debug)]
struct StoreEntry {
    seq: u64,
    trace_idx: usize,
    addr: u64,
    size: u8,
    issued_at: u64,
}

fn overlap(a_addr: u64, a_size: u8, b_addr: u64, b_size: u8) -> bool {
    a_addr < b_addr + b_size as u64 && b_addr < a_addr + a_size as u64
}

fn contains(outer_addr: u64, outer_size: u8, inner_addr: u64, inner_size: u8) -> bool {
    outer_addr <= inner_addr
        && inner_addr + inner_size as u64 <= outer_addr + outer_size as u64
}

fn pck(pc: u32) -> u64 {
    Program::inst_addr(pc)
}

fn make_value_predictor(kind: ValuePredictorKind, seed: u64) -> Box<dyn ValuePredictor> {
    match kind {
        ValuePredictorKind::VtageTwoDeltaStride => Box::new(VtageTwoDeltaStride::paper(seed)),
        ValuePredictorKind::Vtage => Box::new(Vtage::paper(seed)),
        ValuePredictorKind::TwoDeltaStride => Box::new(TwoDeltaStride::paper(seed)),
        ValuePredictorKind::Stride => Box::new(StridePredictor::new(8192, seed)),
        ValuePredictorKind::LastValue => Box::new(LastValue::new(8192, seed)),
        ValuePredictorKind::Fcm => Box::new(Fcm::new(8192, 8192, seed)),
    }
}

/// The cycle-level simulator for one core configuration over one trace.
pub struct Simulator<'t> {
    trace: &'t PreparedTrace,
    config: CoreConfig,
    cycle: u64,
    cursor: usize,
    next_seq: u64,
    total_committed: u64,
    last_commit_cycle: u64,

    // Front end.
    fetch_stall_until: u64,
    pending_redirect: Option<u64>,
    last_fetch_line: u64,
    front_q: VecDeque<FrontUop>,
    front_cap: usize,
    tage: Tage,
    btb: Btb,
    ras: ReturnStack,
    vp: Option<Box<dyn ValuePredictor>>,

    // Rename.
    spec_rat: [PhysReg; 64],
    commit_rat: [PhysReg; 64],
    prf: Prf,
    writer_info: [Option<Writer>; 64],
    prev_group_cycle: u64,

    // Window.
    rob: VecDeque<RobEntry>,
    iq: VecDeque<u64>,
    lq: VecDeque<LoadEntry>,
    sq: VecDeque<StoreEntry>,
    store_sets: StoreSets,
    lfst: Vec<Option<u64>>,

    // Execute.
    muldiv_busy: Vec<u64>,
    fpmuldiv_busy: Vec<u64>,
    mem: MemoryHierarchy,

    stats: SimStats,
}

impl<'t> Simulator<'t> {
    /// Builds a simulator over a prepared trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the configuration is inconsistent.
    pub fn new(trace: &'t PreparedTrace, config: CoreConfig) -> Result<Self, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        let mut spec_rat = [0 as PhysReg; 64];
        for (i, r) in spec_rat.iter_mut().enumerate() {
            *r = (i % 32) as PhysReg;
        }
        let store_sets = StoreSets::paper();
        let lfst = vec![None; store_sets.num_ssids() as usize];
        let front_cap = config.fetch_width * (config.frontend_depth as usize + 4);
        Ok(Simulator {
            cycle: 0,
            cursor: 0,
            next_seq: 0,
            total_committed: 0,
            last_commit_cycle: 0,
            fetch_stall_until: 0,
            pending_redirect: None,
            last_fetch_line: u64::MAX,
            front_q: VecDeque::new(),
            front_cap,
            tage: Tage::paper(config.branch_seed),
            btb: Btb::paper(),
            ras: ReturnStack::paper(),
            vp: config.vp.as_ref().map(|v| make_value_predictor(v.kind, v.seed)),
            spec_rat,
            commit_rat: spec_rat,
            prf: Prf::new(config.int_prf, config.fp_prf, config.prf_banks),
            writer_info: [None; 64],
            prev_group_cycle: u64::MAX,
            rob: VecDeque::new(),
            iq: VecDeque::new(),
            lq: VecDeque::new(),
            sq: VecDeque::new(),
            store_sets,
            lfst,
            muldiv_busy: vec![0; config.fu.int_muldiv],
            fpmuldiv_busy: vec![0; config.fu.fp_muldiv],
            mem: MemoryHierarchy::new(&config.mem),
            stats: SimStats::default(),
            trace,
            config,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total µ-ops committed since construction (not reset by
    /// [`Simulator::begin_measurement`]).
    pub fn committed_total(&self) -> u64 {
        self.total_committed
    }

    /// True once every trace µ-op has committed.
    pub fn finished(&self) -> bool {
        self.cursor >= self.trace.len() && self.front_q.is_empty() && self.rob.is_empty()
    }

    /// Snapshot of the counters (memory counters are cumulative).
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.mem = self.mem.stats();
        s
    }

    /// Zeroes the pipeline counters — call at the end of warmup so the
    /// measurement window starts clean (predictor/cache state is kept).
    pub fn begin_measurement(&mut self) {
        self.stats.reset();
    }

    /// Runs until `insts` more µ-ops commit, the trace drains, or the
    /// deadlock watchdog fires.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no commit happens for 100k cycles.
    pub fn run(&mut self, insts: u64) -> Result<(), SimError> {
        let target = self.total_committed.saturating_add(insts);
        while self.total_committed < target && !self.finished() {
            self.step();
            if self.cycle - self.last_commit_cycle > 100_000 {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    committed: self.total_committed,
                });
            }
        }
        Ok(())
    }

    /// Advances the pipeline by one cycle.
    pub fn step(&mut self) {
        let squashed = self.do_commit();
        if !squashed {
            let violated = self.do_issue();
            if !violated {
                self.do_dispatch();
                self.do_fetch();
            }
        }
        self.cycle += 1;
        self.stats.cycles += 1;
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn do_fetch(&mut self) {
        if self.pending_redirect.is_some() || self.cycle < self.fetch_stall_until {
            return;
        }
        let mut taken = 0usize;
        for _ in 0..self.config.fetch_width {
            if self.cursor >= self.trace.len() || self.front_q.len() >= self.front_cap {
                return;
            }
            let di = &self.trace.insts()[self.cursor];
            // I-cache: access once per line transition.
            let line = pck(di.pc) & !63;
            if line != self.last_fetch_line {
                let done = self.mem.fetch(line, self.cycle);
                self.last_fetch_line = line;
                let hit_latency = 1;
                if done > self.cycle + hit_latency {
                    self.fetch_stall_until = done;
                    return; // µ-op not consumed; refetch hits the line.
                }
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut fu = FrontUop {
                trace_idx: self.cursor,
                seq,
                at_rename: self.cycle + self.config.frontend_depth,
                vp_queried: false,
                pred_some: false,
                pred_used: false,
                pred_correct: false,
                hc: false,
                awaited: false,
                ind_mispredict: false,
            };
            let view = self.trace.history.view(di.bhist_pos as usize);
            // Value prediction at fetch (§4.2).
            if let Some(vp) = self.vp.as_mut() {
                if di.inst.is_vp_eligible() {
                    fu.vp_queried = true;
                    if let Some(p) = vp.predict(pck(di.pc), view) {
                        fu.pred_some = true;
                        if p.confident {
                            fu.pred_used = true;
                            fu.pred_correct = p.value == di.result;
                        }
                    }
                }
            }
            // Control prediction.
            let cls = di.class();
            match cls {
                InstClass::Branch => {
                    let pred = self.tage.predict(pck(di.pc), view);
                    fu.hc = pred.confidence == BranchConfidence::VeryHigh;
                    if pred.taken {
                        if self.btb.lookup(pck(di.pc)).is_none() {
                            // Direct target resolved at decode: short bubble.
                            self.stats.btb_miss_bubbles += 1;
                            self.fetch_stall_until = self.cycle + self.config.btb_miss_bubble;
                        }
                        self.btb.insert(pck(di.pc), di.inst.imm as u32);
                    }
                    if pred.taken != di.taken {
                        fu.awaited = true;
                    }
                    if di.taken {
                        taken += 1;
                    }
                }
                InstClass::Jump | InstClass::Call => {
                    if self.btb.lookup(pck(di.pc)).is_none() {
                        self.stats.btb_miss_bubbles += 1;
                        self.fetch_stall_until = self.cycle + self.config.btb_miss_bubble;
                    }
                    self.btb.insert(pck(di.pc), di.next_pc);
                    if cls == InstClass::Call {
                        self.ras.push(di.pc + 1);
                    }
                    taken += 1;
                }
                InstClass::Return => {
                    let predicted = self.ras.pop();
                    if predicted != Some(di.next_pc) {
                        fu.awaited = true;
                        fu.ind_mispredict = true;
                    }
                    taken += 1;
                }
                InstClass::JumpIndirect | InstClass::CallIndirect => {
                    let predicted = self.btb.lookup(pck(di.pc));
                    self.btb.insert(pck(di.pc), di.next_pc);
                    if cls == InstClass::CallIndirect {
                        self.ras.push(di.pc + 1);
                    }
                    if predicted != Some(di.next_pc) {
                        fu.awaited = true;
                        fu.ind_mispredict = true;
                    }
                    taken += 1;
                }
                _ => {}
            }
            self.stats.fetched += 1;
            self.cursor += 1;
            let awaited = fu.awaited;
            if awaited {
                self.pending_redirect = Some(seq);
            }
            self.front_q.push_back(fu);
            if awaited || taken >= self.config.max_taken_per_cycle {
                return;
            }
            if self.cycle < self.fetch_stall_until {
                return; // BTB bubble cuts the fetch group.
            }
        }
    }

    // ------------------------------------------------------------------
    // Rename / Early Execution / Dispatch
    // ------------------------------------------------------------------

    /// Is the value of `arch` available to the EE block (never via PRF)?
    /// Returns the chaining depth contribution: `Some(depth_of_consumer)`.
    fn ee_src_depth(&self, arch: u8, now: u64) -> Option<usize> {
        let w = self.writer_info[arch as usize]?;
        if w.renamed_cycle == now {
            // Same rename group.
            match w.avail {
                Avail::Pred => Some(1),
                Avail::Ee1 if self.config.eole.ee_stages >= 2 => Some(2),
                _ => None,
            }
        } else if w.renamed_cycle == self.prev_group_cycle {
            // Previous rename group: pipeline-register bypass.
            match w.avail {
                Avail::No => None,
                _ => Some(1),
            }
        } else {
            None
        }
    }

    /// EE decision for a single-cycle ALU µ-op: `Some(Ee1 | Ee2)` if every
    /// register source is EE-available.
    fn decide_early(&self, di: &eole_isa::DynInst, now: u64) -> Option<Avail> {
        if !self.config.eole.early || !di.inst.is_single_cycle_alu() {
            return None;
        }
        let mut depth = 1usize;
        for src in di.inst.sources() {
            match self.ee_src_depth(src.flat(), now) {
                Some(d) => depth = depth.max(d),
                None => return None,
            }
        }
        if depth == 1 {
            Some(Avail::Ee1)
        } else {
            Some(Avail::Ee2)
        }
    }

    fn do_dispatch(&mut self) {
        let now = self.cycle;
        let mut dispatched = 0usize;
        // EE/prediction PRF writes per (class, bank) this dispatch group.
        let mut ee_writes = vec![[0usize; 2]; self.config.prf_banks];
        while dispatched < self.config.rename_width {
            let Some(fu) = self.front_q.front().copied() else { break };
            if fu.at_rename > now {
                break;
            }
            let di = &self.trace.insts()[fu.trace_idx];
            let cls = di.class();
            if self.rob.len() >= self.config.rob_entries {
                self.stats.stall_rob_full += 1;
                break;
            }
            if cls == InstClass::Load && self.lq.len() >= self.config.lq_entries {
                self.stats.stall_lsq_full += 1;
                break;
            }
            if cls == InstClass::Store && self.sq.len() >= self.config.sq_entries {
                self.stats.stall_lsq_full += 1;
                break;
            }
            // EOLE designations.
            let ee_kind = self.decide_early(di, now);
            let ee = ee_kind.is_some();
            let le_alu = !ee
                && self.config.eole.late
                && fu.pred_used
                && di.inst.is_single_cycle_alu();
            let le_branch = self.config.eole.late && fu.hc && cls == InstClass::Branch;
            let needs_iq = !(ee || le_alu || le_branch)
                && !matches!(cls, InstClass::Jump | InstClass::Call);
            if needs_iq && self.iq.len() >= self.config.iq_entries {
                self.stats.stall_iq_full += 1;
                break;
            }
            // EE/prediction write-port budget (§6.3 ablation).
            let writes_prediction = (ee || fu.pred_used) && di.inst.dst.is_some();
            if writes_prediction {
                if let Some(cap) = self.config.eole.ee_writes_per_bank {
                    let class = di.inst.dst.map(|d| d.class()).unwrap_or(RegClass::Int);
                    let bank = self.prf.peek_alloc_bank(class);
                    let ci = if class == RegClass::Int { 0 } else { 1 };
                    if ee_writes[bank][ci] + 1 > cap {
                        self.stats.ee_write_stalls += 1;
                        break;
                    }
                }
            }
            // Rename: sources first, then the destination.
            let mut srcs: [Option<SrcReg>; 2] = [None, None];
            for (i, src) in di.inst.sources().enumerate() {
                let preg = self.spec_rat[src.flat() as usize];
                srcs[i] = Some(SrcReg { class: src.class(), preg });
            }
            let dst = match di.inst.dst {
                Some(d) => {
                    let class = d.class();
                    match self.prf.alloc(class) {
                        Some(new) => {
                            let old = self.spec_rat[d.flat() as usize];
                            self.spec_rat[d.flat() as usize] = new;
                            Some(DstReg { arch_flat: d.flat(), class, new, old })
                        }
                        None => {
                            self.stats.stall_prf += 1;
                            break;
                        }
                    }
                }
                None => None,
            };
            if writes_prediction {
                if let Some(d) = dst {
                    let ci = if d.class == RegClass::Int { 0 } else { 1 };
                    ee_writes[self.prf.bank_of(d.new)][ci] += 1;
                }
            }
            self.front_q.pop_front();

            // Destination readiness + completion.
            let mut done_cycle = NOT_READY;
            if let Some(d) = dst {
                if ee || fu.pred_used || matches!(cls, InstClass::Call | InstClass::CallIndirect)
                {
                    // EE result / used prediction / statically-known link
                    // value is written to the PRF at dispatch.
                    self.prf.set_ready_min(d.class, d.new, now);
                }
            }
            if ee || matches!(cls, InstClass::Jump | InstClass::Call) {
                done_cycle = now;
            }
            // Writer availability for the EE operand rules.
            if let Some(d) = dst {
                let avail = if fu.pred_used
                    || matches!(cls, InstClass::Call | InstClass::CallIndirect)
                {
                    Avail::Pred
                } else if let Some(k) = ee_kind {
                    k
                } else {
                    Avail::No
                };
                self.writer_info[d.arch_flat as usize] =
                    Some(Writer { renamed_cycle: now, avail });
            }

            // Queue occupancy.
            if needs_iq {
                self.iq.push_back(fu.seq);
            }
            if cls == InstClass::Load {
                let dep_store = self
                    .store_sets
                    .ssid(pck(di.pc))
                    .and_then(|s| self.lfst[s as usize]);
                self.lq.push_back(LoadEntry {
                    seq: fu.seq,
                    trace_idx: fu.trace_idx,
                    addr: di.addr,
                    size: di.size,
                    dep_store,
                    issued_at: NOT_READY,
                });
            }
            if cls == InstClass::Store {
                if let Some(s) = self.store_sets.ssid(pck(di.pc)) {
                    self.lfst[s as usize] = Some(fu.seq);
                }
                self.sq.push_back(StoreEntry {
                    seq: fu.seq,
                    trace_idx: fu.trace_idx,
                    addr: di.addr,
                    size: di.size,
                    issued_at: NOT_READY,
                });
            }

            self.rob.push_back(RobEntry {
                seq: fu.seq,
                trace_idx: fu.trace_idx,
                dispatch_cycle: now,
                class: cls,
                dst,
                srcs,
                done_cycle,
                ee,
                le_alu,
                le_branch,
                vp_eligible: di.inst.is_vp_eligible(),
                vp_queried: fu.vp_queried,
                pred_some: fu.pred_some,
                pred_used: fu.pred_used,
                pred_correct: fu.pred_correct,
                hc: fu.hc,
                awaited: fu.awaited,
                ind_mispredict: fu.ind_mispredict,
            });
            dispatched += 1;
        }
        if dispatched > 0 {
            self.prev_group_cycle = now;
        }
    }

    // ------------------------------------------------------------------
    // Issue / Execute
    // ------------------------------------------------------------------

    fn rob_index(&self, seq: u64) -> usize {
        let front = self.rob.front().expect("rob empty").seq;
        (seq - front) as usize
    }

    fn srcs_ready(&self, e: &RobEntry) -> bool {
        e.srcs.iter().flatten().all(|s| self.prf.ready_at(s.class, s.preg) <= self.cycle)
    }

    /// Decides whether the load at `lq_idx` can go: `None` = wait,
    /// `Some(done_cycle)` = issue now.
    fn try_load(&mut self, seq: u64) -> Option<u64> {
        let now = self.cycle;
        let le = *self.lq.iter().find(|l| l.seq == seq).expect("load in LQ");
        // Store-set dependence: wait until the flagged store has issued.
        if let Some(dep) = le.dep_store {
            if let Some(st) = self.sq.iter().find(|s| s.seq == dep) {
                if st.issued_at == NOT_READY {
                    return None;
                }
            }
        }
        // Youngest older store with a known address that overlaps decides.
        for st in self.sq.iter().rev() {
            if st.seq >= le.seq {
                continue;
            }
            if st.issued_at != NOT_READY && overlap(st.addr, st.size, le.addr, le.size) {
                return if contains(st.addr, st.size, le.addr, le.size) {
                    self.stats.sq_forwards += 1;
                    Some(now + latency::SQ_FORWARD)
                } else {
                    None // partial overlap: wait for the store to drain
                };
            }
            // Unknown address: speculate past it (store sets permitting).
        }
        let di = &self.trace.insts()[le.trace_idx];
        Some(self.mem.load(pck(di.pc), le.addr, now))
    }

    /// Returns true if a memory-order violation squash happened.
    fn do_issue(&mut self) -> bool {
        let now = self.cycle;
        let mut issued = 0usize;
        let mut alu_used = 0usize;
        let mut fp_used = 0usize;
        let mut mul_used = 0usize;
        let mut fmul_used = 0usize;
        let mut mem_used = 0usize;
        let mut violation: Option<(u64, u64)> = None; // (load_seq, store_seq)
        let mut remaining: VecDeque<u64> = VecDeque::with_capacity(self.iq.len());
        let iq = std::mem::take(&mut self.iq);
        for seq in iq {
            if issued >= self.config.issue_width || violation.is_some() {
                remaining.push_back(seq);
                continue;
            }
            let idx = self.rob_index(seq);
            let ready = self.srcs_ready(&self.rob[idx]);
            if !ready {
                remaining.push_back(seq);
                continue;
            }
            let class = self.rob[idx].class;
            let done = match class {
                InstClass::IntAlu
                | InstClass::Branch
                | InstClass::Return
                | InstClass::JumpIndirect
                | InstClass::CallIndirect => {
                    if alu_used >= self.config.fu.int_alu {
                        remaining.push_back(seq);
                        continue;
                    }
                    alu_used += 1;
                    now + latency::INT_ALU
                }
                InstClass::IntMul => {
                    if mul_used >= self.config.fu.int_muldiv
                        || !self.muldiv_busy.iter().any(|b| *b <= now)
                    {
                        remaining.push_back(seq);
                        continue;
                    }
                    mul_used += 1;
                    now + latency::INT_MUL
                }
                InstClass::IntDiv => {
                    let Some(unit) = self.muldiv_busy.iter_mut().find(|b| **b <= now) else {
                        remaining.push_back(seq);
                        continue;
                    };
                    if mul_used >= self.config.fu.int_muldiv {
                        remaining.push_back(seq);
                        continue;
                    }
                    mul_used += 1;
                    *unit = now + latency::INT_DIV; // unpipelined
                    now + latency::INT_DIV
                }
                InstClass::FpAlu => {
                    if fp_used >= self.config.fu.fp_alu {
                        remaining.push_back(seq);
                        continue;
                    }
                    fp_used += 1;
                    now + latency::FP_ALU
                }
                InstClass::FpMul => {
                    if fmul_used >= self.config.fu.fp_muldiv
                        || !self.fpmuldiv_busy.iter().any(|b| *b <= now)
                    {
                        remaining.push_back(seq);
                        continue;
                    }
                    fmul_used += 1;
                    now + latency::FP_MUL
                }
                InstClass::FpDiv => {
                    let Some(unit) = self.fpmuldiv_busy.iter_mut().find(|b| **b <= now)
                    else {
                        remaining.push_back(seq);
                        continue;
                    };
                    if fmul_used >= self.config.fu.fp_muldiv {
                        remaining.push_back(seq);
                        continue;
                    }
                    fmul_used += 1;
                    *unit = now + latency::FP_DIV;
                    now + latency::FP_DIV
                }
                InstClass::Load => {
                    if mem_used >= self.config.fu.mem_ports {
                        remaining.push_back(seq);
                        continue;
                    }
                    match self.try_load(seq) {
                        Some(done) => {
                            mem_used += 1;
                            let le =
                                self.lq.iter_mut().find(|l| l.seq == seq).expect("load");
                            le.issued_at = now;
                            done
                        }
                        None => {
                            remaining.push_back(seq);
                            continue;
                        }
                    }
                }
                InstClass::Store => {
                    if mem_used >= self.config.fu.mem_ports {
                        remaining.push_back(seq);
                        continue;
                    }
                    mem_used += 1;
                    let (st_addr, st_size, st_seq, st_tidx) = {
                        let st =
                            self.sq.iter_mut().find(|s| s.seq == seq).expect("store");
                        st.issued_at = now;
                        (st.addr, st.size, st.seq, st.trace_idx)
                    };
                    // The store's address is now known: detect any younger
                    // load that already executed against the same bytes.
                    let mut bad: Option<u64> = None;
                    for l in self.lq.iter() {
                        if l.seq > st_seq
                            && l.issued_at != NOT_READY
                            && l.issued_at <= now
                            && overlap(st_addr, st_size, l.addr, l.size)
                        {
                            bad = Some(bad.map_or(l.seq, |b: u64| b.min(l.seq)));
                        }
                    }
                    if let Some(load_seq) = bad {
                        violation = Some((load_seq, st_seq));
                        let _ = st_tidx;
                    }
                    // Release the LFST entry if we are still its tail.
                    if let Some(s) = self
                        .store_sets
                        .ssid(pck(self.trace.insts()[st_tidx].pc))
                    {
                        if self.lfst[s as usize] == Some(st_seq) {
                            self.lfst[s as usize] = None;
                        }
                    }
                    now + latency::INT_ALU // address generation
                }
                InstClass::Jump | InstClass::Call | InstClass::Halt => {
                    unreachable!("{class:?} never enters the IQ")
                }
            };
            issued += 1;
            let idx = self.rob_index(seq);
            let (dst, awaited) = {
                let e = &mut self.rob[idx];
                e.done_cycle = done;
                (e.dst, e.awaited)
            };
            if let Some(d) = dst {
                self.prf.set_ready_min(d.class, d.new, done);
            }
            if awaited && self.pending_redirect == Some(seq) {
                // Mispredicted control µ-op resolves at `done`: fetch
                // restarts on the correct path then.
                self.pending_redirect = None;
                self.fetch_stall_until = done;
                self.last_fetch_line = u64::MAX;
            }
        }
        self.iq = remaining;

        if let Some((load_seq, store_seq)) = violation {
            let (load_pc, store_pc) = {
                let l = self.lq.iter().find(|l| l.seq == load_seq).expect("load");
                let s = self.sq.iter().find(|s| s.seq == store_seq).expect("store");
                (
                    pck(self.trace.insts()[l.trace_idx].pc),
                    pck(self.trace.insts()[s.trace_idx].pc),
                )
            };
            self.store_sets.on_violation(load_pc, store_pc);
            self.stats.memory_order_squashes += 1;
            self.squash_from(load_seq);
            self.fetch_stall_until = now + 1;
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Commit + LE/VT
    // ------------------------------------------------------------------

    /// Returns true if a value-misprediction squash happened.
    fn do_commit(&mut self) -> bool {
        let now = self.cycle;
        let mut committed = 0usize;
        // LE/VT read ports consumed per (bank, class) this cycle.
        let mut port_reads = vec![[0usize; 2]; self.config.prf_banks];
        let port_cap = self.config.eole.levt_read_ports_per_bank;
        let vp_on = self.vp.is_some();
        while committed < self.config.commit_width {
            let Some(e) = self.rob.front() else { break };
            // Completion condition.
            if e.le_alu || e.le_branch {
                // Executes in the LE/VT stage itself: operands must be
                // readable now (DIVA-style: everything older has resolved)
                // and the µ-op must have traversed the pipe to pre-commit.
                if e.dispatch_cycle + self.config.levt_depth() > now {
                    break;
                }
                if !e
                    .srcs
                    .iter()
                    .flatten()
                    .all(|s| self.prf.ready_at(s.class, s.preg) <= now)
                {
                    break;
                }
            } else {
                if e.done_cycle == NOT_READY {
                    break;
                }
                if e.done_cycle + self.config.levt_depth() > now {
                    break;
                }
            }
            // LE/VT read-port budget (Fig. 11): validation/training reads
            // the result of every VP-eligible µ-op; LE µ-ops read operands.
            if let Some(cap) = port_cap {
                let mut needed: Vec<(usize, usize)> = Vec::new();
                if vp_on && e.vp_eligible {
                    if let Some(d) = e.dst {
                        let ci = if d.class == RegClass::Int { 0 } else { 1 };
                        needed.push((self.prf.bank_of(d.new), ci));
                    }
                }
                if e.le_alu || e.le_branch {
                    for s in e.srcs.iter().flatten() {
                        let ci = if s.class == RegClass::Int { 0 } else { 1 };
                        needed.push((self.prf.bank_of(s.preg), ci));
                    }
                }
                let mut scratch = port_reads.clone();
                let mut fits = true;
                for (bank, ci) in &needed {
                    scratch[*bank][*ci] += 1;
                    if scratch[*bank][*ci] > cap {
                        fits = false;
                        break;
                    }
                }
                if !fits {
                    self.stats.levt_port_stalls += 1;
                    // Forward progress: if even an empty group cannot fit
                    // this µ-op (its own reads exceed the per-bank budget),
                    // the hardware would serialize the reads over extra
                    // cycles; commit it alone and end the group.
                    if committed == 0 {
                        for b in port_reads.iter_mut() {
                            b[0] = cap;
                            b[1] = cap;
                        }
                    } else {
                        break;
                    }
                } else {
                    port_reads = scratch;
                }
            }

            // ---- the µ-op commits -------------------------------------
            let e = self.rob.pop_front().expect("checked above");
            committed += 1;
            self.total_committed += 1;
            self.last_commit_cycle = now;
            self.stats.committed += 1;
            let di = &self.trace.insts()[e.trace_idx];
            let view = self.trace.history.view(di.bhist_pos as usize);

            // EOLE accounting.
            if e.ee {
                self.stats.early_executed += 1;
            }
            if e.le_alu {
                self.stats.late_executed_alu += 1;
            }
            if e.le_branch {
                self.stats.late_executed_branches += 1;
            }

            // Branch accounting + LE-resolved redirects + training.
            if e.class == InstClass::Branch {
                self.stats.cond_branches += 1;
                if e.hc {
                    self.stats.hc_branches += 1;
                }
                if e.awaited {
                    if e.hc {
                        self.stats.hc_branch_mispredicts += 1;
                    } else {
                        self.stats.branch_mispredicts += 1;
                    }
                    if e.le_branch && self.pending_redirect == Some(e.seq) {
                        // Resolved only now, in the pre-commit stage: the
                        // expensive-but-rare case of §3.3.
                        self.pending_redirect = None;
                        self.fetch_stall_until = now + 1;
                        self.last_fetch_line = u64::MAX;
                    }
                }
                self.tage.update(pck(di.pc), view, di.taken);
            } else if e.ind_mispredict {
                self.stats.indirect_mispredicts += 1;
            }

            // Memory retirement.
            if e.class == InstClass::Store {
                debug_assert_eq!(self.sq.front().map(|s| s.seq), Some(e.seq));
                self.sq.pop_front();
                self.mem.store(pck(di.pc), di.addr, now);
            }
            if e.class == InstClass::Load {
                debug_assert_eq!(self.lq.front().map(|l| l.seq), Some(e.seq));
                self.lq.pop_front();
            }

            // Value-predictor training (the "T" in LE/VT).
            if e.vp_eligible {
                self.stats.vp_eligible += 1;
                if e.pred_some {
                    self.stats.vp_predicted += 1;
                }
                if e.pred_used {
                    self.stats.vp_used += 1;
                    if e.pred_correct {
                        self.stats.vp_used_correct += 1;
                    }
                }
                if let Some(vp) = self.vp.as_mut() {
                    if e.vp_queried {
                        vp.train(pck(di.pc), view, di.result);
                    }
                }
            }

            // Architectural rename state.
            if let Some(d) = e.dst {
                self.commit_rat[d.arch_flat as usize] = d.new;
                self.prf.free(d.class, d.old);
            }

            // Validation: a wrong used prediction squashes everything
            // younger (§3.1: squash, not selective replay).
            if e.pred_used && !e.pred_correct {
                self.stats.vp_used_wrong += 1;
                self.stats.vp_squashes += 1;
                self.squash_after(e.seq);
                self.fetch_stall_until = now + 1;
                return true;
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Squashes every µ-op younger than `seq` (exclusive).
    fn squash_after(&mut self, seq: u64) {
        self.squash_from(seq + 1);
    }

    /// Squashes every µ-op with sequence ≥ `first_bad` and rewinds the
    /// trace cursor so they refetch.
    fn squash_from(&mut self, first_bad: u64) {
        let mut min_trace_idx: Option<usize> = None;
        // Front-end queue (not yet renamed).
        while let Some(back) = self.front_q.back() {
            if back.seq < first_bad {
                break;
            }
            let fu = self.front_q.pop_back().expect("non-empty");
            min_trace_idx =
                Some(min_trace_idx.map_or(fu.trace_idx, |m| m.min(fu.trace_idx)));
            if fu.vp_queried {
                if let Some(vp) = self.vp.as_mut() {
                    vp.squash(pck(self.trace.insts()[fu.trace_idx].pc));
                }
            }
            self.stats.squashed += 1;
        }
        // ROB walk, youngest first: undo renaming.
        while let Some(back) = self.rob.back() {
            if back.seq < first_bad {
                break;
            }
            let e = self.rob.pop_back().expect("non-empty");
            min_trace_idx = Some(min_trace_idx.map_or(e.trace_idx, |m| m.min(e.trace_idx)));
            if let Some(d) = e.dst {
                self.spec_rat[d.arch_flat as usize] = d.old;
                self.prf.free(d.class, d.new);
            }
            if e.vp_queried {
                if let Some(vp) = self.vp.as_mut() {
                    vp.squash(pck(self.trace.insts()[e.trace_idx].pc));
                }
            }
            self.stats.squashed += 1;
        }
        self.iq.retain(|s| *s < first_bad);
        while self.lq.back().is_some_and(|l| l.seq >= first_bad) {
            self.lq.pop_back();
        }
        while self.sq.back().is_some_and(|s| s.seq >= first_bad) {
            self.sq.pop_back();
        }
        for slot in &mut self.lfst {
            if slot.is_some_and(|s| s >= first_bad) {
                *slot = None;
            }
        }
        if self.pending_redirect.is_some_and(|s| s >= first_bad) {
            self.pending_redirect = None;
        }
        if let Some(idx) = min_trace_idx {
            self.cursor = idx;
        }
        // Every structure has been purged of seqs >= first_bad, so sequence
        // numbers can be reused; this keeps ROB seqs contiguous, which
        // `rob_index` relies on.
        self.next_seq = first_bad;
        self.writer_info = [None; 64];
        self.prev_group_cycle = u64::MAX;
        self.last_fetch_line = u64::MAX;
        self.prf.reset_cursors();
    }
}

impl std::fmt::Debug for Simulator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("config", &self.config.name)
            .field("cycle", &self.cycle)
            .field("committed", &self.total_committed)
            .field("rob", &self.rob.len())
            .field("iq", &self.iq.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use eole_isa::{generate_trace, FpReg, IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    /// A counted loop with a strided accumulator: highly value-predictable.
    fn strided_loop(iters: i64) -> PreparedTrace {
        let mut b = ProgramBuilder::new();
        b.movi(r(1), 0);
        b.movi(r(2), iters);
        b.movi(r(3), 0);
        let top = b.label();
        b.bind(top);
        b.addi(r(1), r(1), 1);
        b.addi(r(3), r(3), 8);
        b.bne(r(1), r(2), top);
        b.halt();
        PreparedTrace::new(generate_trace(&b.build().unwrap(), 1_000_000).unwrap())
    }

    /// A long dependent chain through loads/ALU: VP breaks the chain.
    fn dependent_chain(iters: i64) -> PreparedTrace {
        let mut b = ProgramBuilder::new();
        let buf = b.add_data_u64(&[5]);
        b.movi(r(1), buf as i64);
        b.movi(r(2), 0);
        b.movi(r(4), iters);
        let top = b.label();
        b.bind(top);
        // Serial chain: ld -> add -> st -> ld ... (same address)
        b.ld(r(3), r(1), 0);
        b.addi(r(3), r(3), 0); // value stays 5: predictable
        b.st(r(1), 0, r(3));
        b.addi(r(2), r(2), 1);
        b.bne(r(2), r(4), top);
        b.halt();
        PreparedTrace::new(generate_trace(&b.build().unwrap(), 1_000_000).unwrap())
    }

    fn run_to_end(trace: &PreparedTrace, config: CoreConfig) -> SimStats {
        let mut sim = Simulator::new(trace, config).unwrap();
        sim.run(u64::MAX).unwrap();
        assert!(sim.finished());
        assert_eq!(sim.committed_total(), trace.len() as u64);
        sim.stats()
    }

    #[test]
    fn all_presets_complete_and_commit_everything() {
        let trace = strided_loop(400);
        for config in [
            CoreConfig::baseline_6_64(),
            CoreConfig::baseline_vp_6_64(),
            CoreConfig::baseline_vp_4_64(),
            CoreConfig::eole_6_64(),
            CoreConfig::eole_4_64(),
            CoreConfig::eole_4_64_banked(4),
            CoreConfig::eole_4_64_ports(4, 2),
            CoreConfig::ole_4_64_ports(4, 4),
            CoreConfig::eoe_4_64_ports(4, 4),
        ] {
            let name = config.name.clone();
            let s = run_to_end(&trace, config);
            assert!(s.ipc() > 0.1, "{name}: ipc = {}", s.ipc());
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = dependent_chain(800);
        let a = run_to_end(&trace, CoreConfig::eole_4_64());
        let b = run_to_end(&trace, CoreConfig::eole_4_64());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.vp_used, b.vp_used);
        assert_eq!(a.early_executed, b.early_executed);
    }

    #[test]
    fn value_prediction_speeds_up_dependent_chains() {
        let trace = dependent_chain(3_000);
        let base = run_to_end(&trace, CoreConfig::baseline_6_64());
        let vp = run_to_end(&trace, CoreConfig::baseline_vp_6_64());
        assert!(
            vp.ipc() > base.ipc() * 1.05,
            "VP should break the serial chain: base {:.3}, vp {:.3}",
            base.ipc(),
            vp.ipc()
        );
        assert!(vp.vp_used > 1000, "predictions must be used: {}", vp.vp_used);
        assert_eq!(vp.vp_used_wrong, 0, "constant stream must not mispredict");
    }

    #[test]
    fn eole_offloads_uops_from_the_ooo_engine() {
        let trace = strided_loop(4_000);
        let s = run_to_end(&trace, CoreConfig::eole_6_64());
        assert!(s.early_executed > 0, "EE must fire on predictable ALU ops");
        assert!(
            s.offload_fraction() > 0.10,
            "offload = {:.3}",
            s.offload_fraction()
        );
        // Disjoint counting: EE + LE(alu) can never exceed committed.
        assert!(s.early_executed + s.late_executed_alu + s.late_executed_branches <= s.committed);
    }

    #[test]
    fn value_mispredict_squashes_and_recovers() {
        // A load whose value is constant for thousands of instances, then
        // changes: the saturated predictor uses a now-wrong prediction and
        // the pipeline must squash, refetch and still commit everything.
        let mut b = ProgramBuilder::new();
        let buf = b.add_data_u64(&[7]);
        b.movi(r(1), buf as i64);
        b.movi(r(2), 0);
        b.movi(r(4), 4_000);
        b.movi(r(6), 3_000);
        let top = b.label();
        b.bind(top);
        b.ld(r(3), r(1), 0);
        b.add(r(5), r(3), r(3)); // consumer of the predicted load
        b.addi(r(2), r(2), 1);
        let skip = b.label();
        b.bne(r(2), r(6), skip);
        b.movi(r(7), 99);
        b.st(r(1), 0, r(7)); // flip the loaded value once at iteration 3000
        b.bind(skip);
        b.bne(r(2), r(4), top);
        b.halt();
        let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 1_000_000).unwrap());
        let s = run_to_end(&trace, CoreConfig::baseline_vp_6_64());
        assert!(s.vp_squashes >= 1, "expected at least one value-mispredict squash");
        assert!(s.squashed > 0);
    }

    #[test]
    fn memory_order_violation_trains_store_sets() {
        // Store address depends on a 25-cycle divide; an immediately
        // following load hits the same address. The load speculates past
        // the store the first time (violation), and store sets should
        // prevent it from repeating every iteration.
        let mut b = ProgramBuilder::new();
        let buf = b.add_data_u64(&[0; 16]);
        b.movi(r(1), buf as i64);
        b.movi(r(2), 0);
        b.movi(r(4), 600);
        b.movi(r(8), 3);
        let top = b.label();
        b.bind(top);
        b.movi(r(5), 24);
        b.div(r(6), r(5), r(8)); // 24/3 = 8: slow address component
        b.add(r(7), r(1), r(6));
        b.st(r(7), 0, r(2)); // store to buf+8, address late
        b.ld(r(9), r(1), 8); // load from buf+8: conflicts
        b.addi(r(2), r(2), 1);
        b.bne(r(2), r(4), top);
        b.halt();
        let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 1_000_000).unwrap());
        let s = run_to_end(&trace, CoreConfig::baseline_6_64());
        assert!(s.memory_order_squashes >= 1, "must detect the violation");
        assert!(
            s.memory_order_squashes < 300,
            "store sets must stop recurrent violations: {}",
            s.memory_order_squashes
        );
    }

    #[test]
    fn levt_port_limit_slows_but_completes() {
        let trace = strided_loop(3_000);
        let free = run_to_end(&trace, CoreConfig::eole_4_64_banked(4));
        let capped = run_to_end(&trace, CoreConfig::eole_4_64_ports(4, 1));
        assert!(capped.levt_port_stalls > 0, "1 port/bank must cut commit groups");
        assert!(capped.cycles >= free.cycles);
    }

    #[test]
    fn fp_heavy_code_uses_fp_pools() {
        let f = FpReg::new;
        let mut b = ProgramBuilder::new();
        let data = b.add_data_f64(&[1.0, 1.5]);
        b.movi(r(1), data as i64);
        b.fld(f(1), r(1), 0);
        b.fld(f(2), r(1), 8);
        b.movi(r(2), 0);
        b.movi(r(3), 500);
        let top = b.label();
        b.bind(top);
        b.fmul(f(3), f(1), f(2));
        b.fadd(f(1), f(3), f(2));
        b.fdiv(f(4), f(1), f(2));
        b.addi(r(2), r(2), 1);
        b.bne(r(2), r(3), top);
        b.halt();
        let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 1_000_000).unwrap());
        let s = run_to_end(&trace, CoreConfig::baseline_6_64());
        // The serial FP chain (3 + 5 cycles per iteration minimum) caps IPC.
        assert!(s.ipc() < 2.0);
    }

    #[test]
    fn narrower_issue_width_never_helps() {
        let trace = strided_loop(4_000);
        let six = run_to_end(&trace, CoreConfig::baseline_vp_6_64());
        let four = run_to_end(&trace, CoreConfig::baseline_vp_4_64());
        assert!(four.cycles >= six.cycles);
    }

    #[test]
    fn measurement_window_reset_works() {
        let trace = strided_loop(2_000);
        let mut sim = Simulator::new(&trace, CoreConfig::baseline_vp_6_64()).unwrap();
        sim.run(1_000).unwrap();
        sim.begin_measurement();
        let warm = sim.stats();
        assert_eq!(warm.committed, 0);
        sim.run(1_000).unwrap();
        let s = sim.stats();
        assert!(s.committed >= 1_000);
        assert!(s.cycles > 0);
    }

    #[test]
    fn calls_and_returns_flow_through() {
        let mut b = ProgramBuilder::new();
        b.movi(r(2), 0);
        b.movi(r(4), 300);
        let top = b.label();
        let func = b.label();
        b.bind(top);
        b.call(func);
        b.addi(r(2), r(2), 1);
        b.bne(r(2), r(4), top);
        b.halt();
        b.bind(func);
        b.addi(r(3), r(3), 2);
        b.ret();
        let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 100_000).unwrap());
        let s = run_to_end(&trace, CoreConfig::eole_4_64());
        // RAS should make returns nearly free after warmup.
        assert!(s.indirect_mispredicts < 5, "indirect mispredicts: {}", s.indirect_mispredicts);
    }
}

#[cfg(test)]
mod frontend_tests {
    use super::*;
    use crate::config::CoreConfig;
    use eole_isa::{generate_trace, IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    /// Fetch-to-commit depth calibration: the first independent µ-op must
    /// retire after roughly the front-end depth plus rename/commit and the
    /// LE/VT stage — the paper's "fetch-to-commit latency of 19 cycles
    /// (+1 with VP)".
    #[test]
    fn pipeline_depth_matches_the_paper() {
        let mut b = ProgramBuilder::new();
        for i in 0..32 {
            b.movi(r((i % 8) as u8 + 1), i as i64);
        }
        b.halt();
        let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 100).unwrap());
        let first_commit = |config: CoreConfig| {
            let mut sim = Simulator::new(&trace, config).unwrap();
            while sim.committed_total() == 0 {
                sim.step();
                assert!(sim.cycle() < 1000, "first commit never happened");
            }
            sim.cycle()
        };
        // The very first fetch pays one cold I-cache fill (~L2+DRAM),
        // then the µ-op flows through the 15-cycle front end to commit.
        let base = first_commit(CoreConfig::baseline_6_64());
        assert!(
            (140..=200).contains(&base),
            "cold fill + pipeline depth = {base} cycles"
        );
        // Adding VP adds exactly the one-cycle LE/VT stage.
        let vp = first_commit(CoreConfig::baseline_vp_6_64());
        assert_eq!(vp, base + 1, "the LE/VT stage is one cycle deep");
    }

    /// A hard-to-predict branch must cost roughly the pipeline refill
    /// (≥ 20 cycles per the paper) compared to a predictable one.
    #[test]
    fn branch_misprediction_penalty_is_a_pipeline_refill() {
        let build = |entropy: bool| {
            let mut b = ProgramBuilder::new();
            let (seed, t, i, n) = (r(1), r(2), r(3), r(4));
            b.movi(seed, 0x1357_9bdf);
            b.movi(i, 0);
            b.movi(n, 3_000);
            let top = b.label();
            b.bind(top);
            b.shli(t, seed, 13);
            b.xor(seed, seed, t);
            b.shri(t, seed, 7);
            b.xor(seed, seed, t);
            b.shli(t, seed, 17);
            b.xor(seed, seed, t);
            // Branch over *nothing*: taken and not-taken paths commit the
            // identical µ-op stream, so cycle deltas are pure penalty.
            let skip = b.label();
            if entropy {
                b.andi(t, seed, 1); // coin flip
            } else {
                b.andi(t, seed, 0); // always 0: perfectly predictable
            }
            b.beq_imm(t, 1, skip);
            b.bind(skip);
            b.addi(i, i, 1);
            b.blt(i, n, top);
            b.halt();
            PreparedTrace::new(generate_trace(&b.build().unwrap(), 200_000).unwrap())
        };
        let run = |trace: &PreparedTrace| {
            let mut sim = Simulator::new(trace, CoreConfig::baseline_6_64()).unwrap();
            sim.run(u64::MAX).unwrap();
            (sim.stats().cycles, sim.stats().branch_mispredicts, sim.stats().committed)
        };
        let noisy = build(true);
        let calm = build(false);
        let (noisy_cycles, mis, noisy_committed) = run(&noisy);
        let (calm_cycles, calm_mis, calm_committed) = run(&calm);
        assert!(mis > 500, "coin-flip branch must mispredict often: {mis}");
        assert!(calm_mis < 50, "biased branch must not: {calm_mis}");
        // Charge the cycle difference to the mispredictions (the two
        // programs commit the identical µ-op count by construction).
        assert_eq!(noisy_committed, calm_committed);
        let penalty = (noisy_cycles - calm_cycles) as f64 / mis as f64;
        assert!(
            (12.0..40.0).contains(&penalty),
            "per-misprediction penalty ≈ refill: {penalty:.1} cycles"
        );
    }

    /// Cold instruction fetch must stall on I-cache misses (long straight-
    /// line code marches through new lines).
    #[test]
    fn icache_misses_stall_fetch() {
        let mut b = ProgramBuilder::new();
        // 4K straight-line µ-ops = 256 I-cache lines, all cold.
        for i in 0..4096 {
            b.movi(r((i % 8) as u8 + 1), i as i64);
        }
        b.halt();
        let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 10_000).unwrap());
        let mut sim = Simulator::new(&trace, CoreConfig::baseline_6_64()).unwrap();
        sim.run(u64::MAX).unwrap();
        let s = sim.stats();
        assert!(s.mem.l1i.misses >= 200, "cold code must miss: {}", s.mem.l1i.misses);
        // Straight-line prefetch-free fetch gates IPC well below width.
        assert!(s.ipc() < 6.0);
    }

    /// Taken branches that miss the BTB charge the decode-redirect bubble.
    #[test]
    fn btb_misses_cost_bubbles_once() {
        let mut b = ProgramBuilder::new();
        let (i, n) = (r(1), r(2));
        b.movi(i, 0);
        b.movi(n, 500);
        let top = b.label();
        b.bind(top);
        b.addi(i, i, 1);
        b.blt(i, n, top); // same branch every time: one cold BTB miss
        b.halt();
        let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 10_000).unwrap());
        let mut sim = Simulator::new(&trace, CoreConfig::baseline_6_64()).unwrap();
        sim.run(u64::MAX).unwrap();
        let s = sim.stats();
        assert!(
            s.btb_miss_bubbles <= 5,
            "a single hot branch trains the BTB once: {}",
            s.btb_miss_bubbles
        );
    }
}
