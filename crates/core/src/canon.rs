//! Canonical configuration identity: byte serialization and digests.
//!
//! The experiment harness caches simulation results keyed by *what was
//! simulated* — and two `CoreConfig` values that agree field-for-field
//! must therefore map to the same key, forever, across processes and
//! machines. `Debug` formatting and `HashMap` hashing give no such
//! guarantee, so this module defines one explicitly:
//!
//! * [`CanonicalBytes`] — a little writer producing a *canonical byte
//!   serialization*: every field is appended in a fixed, documented order
//!   with a type tag and a self-delimiting encoding, so distinct
//!   configurations can never serialize to the same bytes (injectivity is
//!   what makes the digest trustworthy as an identity).
//! * [`Fnv64`] — a hand-rolled FNV-1a 64-bit hash over those bytes (the
//!   build environment has no crates.io access, so no external hashers).
//! * [`CoreConfig::digest`] — the resulting content address, rendered as
//!   16 lowercase hex digits by [`CoreConfig::digest_hex`].
//! * [`SIM_FINGERPRINT_VERSION`] — the *behavior* version of the
//!   simulator. The digest identifies the configuration; this constant
//!   identifies the model. Stored results are keyed by both, so bumping
//!   the constant invalidates every cached result at once. Bump it
//!   whenever a change is intentionally cycle-visible (i.e. whenever the
//!   golden fingerprints in `tests/golden_fingerprints.rs` are
//!   regenerated); never for pure refactors.
//!
//! The serialization format itself is versioned by a leading
//! `"eole-core-config/v1"` marker: reordering, adding, or removing fields
//! requires bumping that marker (old digests then change loudly rather
//! than colliding silently).

use eole_mem::cache::CacheConfig;
use eole_mem::dram::DramConfig;
use eole_mem::hierarchy::HierarchyConfig;
use eole_mem::prefetch::PrefetchConfig;

use crate::config::{CoreConfig, EoleConfig, FuConfig, ValuePredictorKind, VpConfig};

/// Version of the simulator's cycle behavior, as seen by stored results.
///
/// Two runs agree on their outcome iff they agree on (configuration
/// digest, workload, methodology, seed) **and** on this constant. Bump it
/// in the same commit that regenerates the golden fingerprints — the two
/// facts ("cycle behavior changed" and "cached results are stale") are
/// one fact.
pub const SIM_FINGERPRINT_VERSION: u32 = 1;

/// FNV-1a, 64-bit: the classic minimal non-cryptographic hash.
///
/// Chosen deliberately over `DefaultHasher`: the standard library hasher
/// is explicitly unstable across releases, while this digest is persisted
/// in filenames and JSON payloads and must never drift.
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { state: Self::OFFSET_BASIS }
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// One-shot convenience: the FNV-1a digest of `bytes`.
    pub fn digest(bytes: &[u8]) -> u64 {
        let mut h = Fnv64::new();
        h.write(bytes);
        h.finish()
    }
}

/// Writer for the canonical byte serialization.
///
/// Every `put_*` method appends a one-byte type tag followed by a
/// fixed-width (or length-prefixed) little-endian payload, so the byte
/// stream is self-delimiting: no two distinct field sequences can
/// produce the same bytes.
#[derive(Clone, Debug, Default)]
pub struct CanonicalBytes {
    buf: Vec<u8>,
}

impl CanonicalBytes {
    const TAG_U64: u8 = 0x01;
    const TAG_BOOL: u8 = 0x02;
    const TAG_STR: u8 = 0x03;
    const TAG_NONE: u8 = 0x04;
    const TAG_SOME: u8 = 0x05;
    const TAG_ENUM: u8 = 0x06;

    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an unsigned integer (`usize` callers widen to `u64`).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.push(Self::TAG_U64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a boolean.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(Self::TAG_BOOL);
        self.buf.push(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.buf.push(Self::TAG_STR);
        self.buf.extend_from_slice(&(s.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an optional unsigned integer (presence is part of the
    /// encoding: `None` and `Some(0)` serialize differently).
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.buf.push(Self::TAG_NONE),
            Some(v) => {
                self.buf.push(Self::TAG_SOME);
                self.put_u64(v);
            }
        }
    }

    /// Appends an enum discriminant (callers assign stable tags by hand —
    /// `as`-cast discriminants would silently renumber on reordering).
    pub fn put_enum(&mut self, discriminant: u8) {
        self.buf.push(Self::TAG_ENUM);
        self.buf.push(discriminant);
    }

    /// The serialized bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// FNV-1a digest of the bytes written so far.
    pub fn digest(&self) -> u64 {
        Fnv64::digest(&self.buf)
    }
}

impl ValuePredictorKind {
    /// Stable serialization tag (explicit, so reordering the enum cannot
    /// silently change digests).
    fn canon_tag(self) -> u8 {
        match self {
            ValuePredictorKind::VtageTwoDeltaStride => 0,
            ValuePredictorKind::Vtage => 1,
            ValuePredictorKind::TwoDeltaStride => 2,
            ValuePredictorKind::Stride => 3,
            ValuePredictorKind::LastValue => 4,
            ValuePredictorKind::Fcm => 5,
            ValuePredictorKind::DVtage => 6,
        }
    }
}

impl FuConfig {
    /// Appends the functional-unit pool in field order.
    pub fn write_canon(&self, c: &mut CanonicalBytes) {
        c.put_u64(self.int_alu as u64);
        c.put_u64(self.int_muldiv as u64);
        c.put_u64(self.fp_alu as u64);
        c.put_u64(self.fp_muldiv as u64);
        c.put_u64(self.mem_ports as u64);
    }
}

impl VpConfig {
    /// Appends the value-prediction configuration in field order
    /// (including the BeBoP block-front shape — part of run identity
    /// since `eole-core-config/v2`).
    pub fn write_canon(&self, c: &mut CanonicalBytes) {
        c.put_enum(self.kind.canon_tag());
        c.put_u64(self.seed);
        c.put_u64(self.block_size as u64);
        c.put_u64(self.banks as u64);
        c.put_opt_u64(self.spec_window.map(|w| w as u64));
    }
}

impl EoleConfig {
    /// Appends the EOLE toggles and port budgets in field order.
    pub fn write_canon(&self, c: &mut CanonicalBytes) {
        c.put_bool(self.early);
        c.put_bool(self.late);
        c.put_u64(self.ee_stages as u64);
        c.put_opt_u64(self.levt_read_ports_per_bank.map(|p| p as u64));
        c.put_opt_u64(self.ee_writes_per_bank.map(|p| p as u64));
    }
}

fn write_cache(c: &mut CanonicalBytes, cache: &CacheConfig) {
    c.put_u64(cache.sets as u64);
    c.put_u64(cache.ways as u64);
    c.put_u64(cache.line_bytes);
    c.put_u64(cache.latency);
}

fn write_dram(c: &mut CanonicalBytes, dram: &DramConfig) {
    c.put_u64(dram.ranks as u64);
    c.put_u64(dram.banks_per_rank as u64);
    c.put_u64(dram.row_bytes);
    c.put_u64(dram.t_row_hit);
    c.put_u64(dram.t_row_closed);
    c.put_u64(dram.t_row_conflict);
    c.put_u64(dram.t_bus);
}

fn write_prefetch(c: &mut CanonicalBytes, pf: &PrefetchConfig) {
    c.put_u64(pf.entries as u64);
    c.put_u64(pf.degree as u64);
    c.put_u64(pf.distance);
}

fn write_hierarchy(c: &mut CanonicalBytes, mem: &HierarchyConfig) {
    write_cache(c, &mem.l1i);
    write_cache(c, &mem.l1d);
    write_cache(c, &mem.l2);
    write_dram(c, &mem.dram);
    c.put_u64(mem.l1d_mshrs as u64);
    c.put_u64(mem.l1i_mshrs as u64);
    c.put_u64(mem.l2_mshrs as u64);
    match &mem.prefetch {
        None => c.put_opt_u64(None),
        Some(pf) => {
            c.put_opt_u64(Some(0));
            write_prefetch(c, pf);
        }
    }
}

impl CoreConfig {
    /// Appends the complete configuration, nested blocks included, in
    /// declaration order behind the `eole-core-config/v2` format marker
    /// (v2 = v1 plus the `VpConfig` block-front fields; the bump is what
    /// makes every v1 digest change loudly instead of aliasing).
    pub fn write_canon(&self, c: &mut CanonicalBytes) {
        c.put_str("eole-core-config/v2");
        c.put_str(&self.name);
        c.put_u64(self.fetch_width as u64);
        c.put_u64(self.rename_width as u64);
        c.put_u64(self.commit_width as u64);
        c.put_u64(self.issue_width as u64);
        c.put_u64(self.iq_entries as u64);
        c.put_u64(self.rob_entries as u64);
        c.put_u64(self.lq_entries as u64);
        c.put_u64(self.sq_entries as u64);
        c.put_u64(self.int_prf as u64);
        c.put_u64(self.fp_prf as u64);
        c.put_u64(self.prf_banks as u64);
        c.put_u64(self.frontend_depth);
        c.put_u64(self.btb_miss_bubble);
        c.put_u64(self.max_taken_per_cycle as u64);
        self.fu.write_canon(c);
        write_hierarchy(c, &self.mem);
        match &self.vp {
            None => c.put_opt_u64(None),
            Some(vp) => {
                c.put_opt_u64(Some(0));
                vp.write_canon(c);
            }
        }
        self.eole.write_canon(c);
        c.put_opt_u64(self.levt_depth_override);
        c.put_u64(self.branch_seed);
    }

    /// The canonical byte serialization (see module docs).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut c = CanonicalBytes::new();
        self.write_canon(&mut c);
        c.into_bytes()
    }

    /// Content digest: FNV-1a over [`CoreConfig::canonical_bytes`]. Two
    /// configurations share a digest iff they agree on every field
    /// (including the display name; rename a variant and it is a new
    /// identity — deliberate, so stored results always carry the name
    /// they were produced under).
    pub fn digest(&self) -> u64 {
        Fnv64::digest(&self.canonical_bytes())
    }

    /// The digest as 16 lowercase hex digits (filenames, JSON payloads).
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(Fnv64::digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv64::digest(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_is_deterministic_and_clone_stable() {
        let a = CoreConfig::eole_4_64();
        let b = a.clone();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        assert_eq!(a.digest_hex().len(), 16);
    }

    #[test]
    fn presets_have_pairwise_distinct_digests() {
        let presets = CoreConfig::all_presets();
        for (i, a) in presets.iter().enumerate() {
            for b in &presets[i + 1..] {
                assert_ne!(a.digest(), b.digest(), "{} vs {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn none_and_some_zero_are_distinct() {
        let base = CoreConfig::eole_4_64();
        let pinned = base
            .clone()
            .to_builder()
            .levt_depth_override(Some(0))
            .build()
            .unwrap();
        assert_ne!(base.digest(), pinned.digest());
    }

    #[test]
    fn string_framing_cannot_be_confused_with_adjacent_fields() {
        // "ab" + "c" must not serialize identically to "a" + "bc".
        let mut x = CanonicalBytes::new();
        x.put_str("ab");
        x.put_str("c");
        let mut y = CanonicalBytes::new();
        y.put_str("a");
        y.put_str("bc");
        assert_ne!(x.as_bytes(), y.as_bytes());
    }

    #[test]
    fn vp_kind_tags_are_stable_and_distinct() {
        use ValuePredictorKind as K;
        let kinds = [
            K::VtageTwoDeltaStride,
            K::Vtage,
            K::TwoDeltaStride,
            K::Stride,
            K::LastValue,
            K::Fcm,
            K::DVtage,
        ];
        let tags: Vec<u8> = kinds.iter().map(|k| k.canon_tag()).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn block_front_fields_are_part_of_identity() {
        let base = CoreConfig::baseline_dvtage_6_64();
        let block8 = base.clone().to_builder().vp_block(8, 4).build().unwrap();
        let banks1 = base.clone().to_builder().vp_block(4, 1).build().unwrap();
        let unbounded = base.clone().to_builder().vp_spec_window(None).build().unwrap();
        let digests = [base.digest(), block8.digest(), banks1.digest(), unbounded.digest()];
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b, "block-front axes must not alias");
            }
        }
    }
}
