//! Register-file port/area arithmetic from §6 of the paper.
//!
//! The paper argues EOLE's case quantitatively with a simple model: the
//! area of a register file is roughly proportional to `(R + W) · (R + 2W)`
//! (Zyuban & Kogge, \[41\]). This module reproduces §6.2–6.3’s port counts
//! and area ratios so the claims can be asserted in tests and reprinted by
//! the experiment harness:
//!
//! * Baseline 6-issue (no VP): 12R/6W.
//! * `Baseline_VP_6_64`: +8 prediction writes, +8 validation/training reads
//!   → 20R/14W.
//! * `EOLE_4_64` unbanked: 8R (OoO) + 16R (LE/VT) = 24R, 4W (OoO) + 8W (EE)
//!   = 12W → ≈4× the baseline PRF area.
//! * `EOLE_4_64` with 4 banks and 4 LE/VT ports/bank: 12R/6W per bank —
//!   exactly the 6-issue baseline's ports (§6.3's punchline).

/// Read/write port requirement of one register file (or one bank).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortCount {
    /// Read ports.
    pub reads: usize,
    /// Write ports.
    pub writes: usize,
}

impl PortCount {
    /// Relative area per register under the `(R+W)(R+2W)` model.
    pub fn relative_area(&self) -> f64 {
        let r = self.reads as f64;
        let w = self.writes as f64;
        (r + w) * (r + 2.0 * w)
    }
}

/// Port requirements of a full core configuration (§6.2's accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrfPortModel {
    /// Reads for OoO issue (2 per issue slot).
    pub ooo_reads: usize,
    /// Writes for OoO writeback (1 per issue slot).
    pub ooo_writes: usize,
    /// Writes for predictions and Early Execution results (rename width,
    /// 0 without VP).
    pub ee_pred_writes: usize,
    /// Reads for Late Execution, validation and training (2 per commit
    /// slot with LE; 1 per slot with validation only; 0 without VP).
    pub levt_reads: usize,
}

impl PrfPortModel {
    /// §6.2 port accounting for a configuration shape.
    ///
    /// `issue_width`/`rename_width`/`commit_width` describe the engine;
    /// `vp` enables prediction writes + validation reads; `late` doubles
    /// the LE/VT reads (operand fetch for late-executed µ-ops).
    pub fn new(
        issue_width: usize,
        rename_width: usize,
        commit_width: usize,
        vp: bool,
        late: bool,
    ) -> Self {
        PrfPortModel {
            ooo_reads: 2 * issue_width,
            ooo_writes: issue_width,
            ee_pred_writes: if vp { rename_width } else { 0 },
            levt_reads: if !vp {
                0
            } else if late {
                2 * commit_width
            } else {
                commit_width
            },
        }
    }

    /// Total ports on a monolithic (1-bank) file.
    pub fn monolithic(&self) -> PortCount {
        PortCount {
            reads: self.ooo_reads + self.levt_reads,
            writes: self.ooo_writes + self.ee_pred_writes,
        }
    }

    /// Ports per bank when the file is `banks`-way banked with
    /// `levt_ports_per_bank` reads reserved for LE/VT (§6.3): the OoO
    /// engine's ports must still be fully provisioned on every bank
    /// (any µ-op may read any bank), while EE/prediction writes split
    /// round-robin and LE/VT reads are explicitly capped.
    pub fn banked(&self, banks: usize, levt_ports_per_bank: usize) -> PortCount {
        let ee_per_bank = self.ee_pred_writes.div_ceil(banks);
        PortCount {
            reads: self.ooo_reads + levt_ports_per_bank.min(self.levt_reads),
            writes: self.ooo_writes + ee_per_bank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_6() -> PortCount {
        PrfPortModel::new(6, 8, 8, false, false).monolithic()
    }

    #[test]
    fn baseline_6_issue_ports() {
        assert_eq!(baseline_6(), PortCount { reads: 12, writes: 6 });
    }

    #[test]
    fn baseline_vp_6_64_ports_match_section_6_2() {
        // "Baseline_VP_6_64 would necessitate 14 write ports (8 predictions
        // + 6 OoO) and 20 read ports (8 validation/training + 12 OoO)."
        let m = PrfPortModel::new(6, 8, 8, true, false).monolithic();
        assert_eq!(m, PortCount { reads: 20, writes: 14 });
    }

    #[test]
    fn eole_4_64_unbanked_ports_match_section_6_2() {
        // "a total of 12 write ports (8 EE + 4 OoO) and 24 read ports
        // (8 OoO + 16 late execution/validation/training)".
        let m = PrfPortModel::new(4, 8, 8, true, true).monolithic();
        assert_eq!(m, PortCount { reads: 24, writes: 12 });
    }

    #[test]
    fn eole_prf_area_is_about_4x_baseline() {
        // "the area cost of the EOLE PRF would be 4 times the initial area
        // cost of the 6-issue baseline PRF."
        let eole = PrfPortModel::new(4, 8, 8, true, true).monolithic().relative_area();
        let base = baseline_6().relative_area();
        let ratio = eole / base;
        assert!((3.8..4.2).contains(&ratio), "area ratio = {ratio:.2}");
    }

    #[test]
    fn banked_eole_matches_baseline_ports() {
        // §6.3: with 4 banks and 4 LE/VT read ports per bank, each bank has
        // 12 read ports (8 OoO + 4 LE/VT) and 6 write ports (4 OoO + 2 EE)
        // — "just as the baseline 6-issue configuration without VP".
        let m = PrfPortModel::new(4, 8, 8, true, true).banked(4, 4);
        assert_eq!(m, PortCount { reads: 12, writes: 6 });
        assert_eq!(m, baseline_6());
        assert!((m.relative_area() - baseline_6().relative_area()).abs() < 1e-9);
    }

    #[test]
    fn three_port_variant_is_even_smaller() {
        // §6.3 also evaluates 3 LE/VT ports per bank (speedup ≥ 0.97).
        let m = PrfPortModel::new(4, 8, 8, true, true).banked(4, 3);
        assert_eq!(m, PortCount { reads: 11, writes: 6 });
    }

    #[test]
    fn area_model_is_monotonic_in_ports() {
        let small = PortCount { reads: 8, writes: 4 };
        let big = PortCount { reads: 16, writes: 8 };
        assert!(big.relative_area() > small.relative_area());
    }
}
