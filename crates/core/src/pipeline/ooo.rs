//! The out-of-order engine: rename/dispatch (with the EOLE designation
//! decisions and the EE/prediction write-port budget) and the issue/execute
//! stage with its functional-unit pools, load/store queues, and
//! memory-dependence speculation via store sets.
//!
//! Hot-loop invariants (see `PERF.md`): no steady-state heap allocation —
//! the per-group write budget lives in a reused scratch buffer and the IQ
//! is compacted in place — and no O(n) window searches: ROB entries are
//! addressed by sequence number, LQ/SQ entries through the slot id cached
//! in [`RobEntry::lsq_slot`].

use eole_isa::{InstClass, RegClass};

use crate::config::latency;
use crate::prf::NOT_READY;

use super::state::{
    contains, overlap, pck, Avail, DstReg, IqEntry, LoadEntry, RobEntry, Simulator, SrcReg,
    StoreEntry, Writer,
};

impl Simulator<'_> {
    // ------------------------------------------------------------------
    // Rename / Early Execution / Dispatch
    // ------------------------------------------------------------------

    /// Returns the number of µ-ops dispatched this cycle.
    pub(super) fn do_dispatch(&mut self) -> usize {
        let now = self.cycle;
        let mut dispatched = 0usize;
        // EE/prediction PRF writes per (class, bank) this dispatch group.
        for b in self.scratch.ee_writes.iter_mut() {
            *b = [0, 0];
        }
        while dispatched < self.config.rename_width {
            let Some(fu) = self.front_q.front().copied() else { break };
            if fu.at_rename > now {
                break;
            }
            let di = &self.trace.insts()[fu.trace_idx];
            let cls = di.class();
            if self.rob.len() >= self.config.rob_entries {
                self.stats.stall_rob_full += 1;
                break;
            }
            if cls == InstClass::Load && self.lq.len() >= self.config.lq_entries {
                self.stats.stall_lsq_full += 1;
                break;
            }
            if cls == InstClass::Store && self.sq.len() >= self.config.sq_entries {
                self.stats.stall_lsq_full += 1;
                break;
            }
            // EOLE designations.
            let ee_kind = self.decide_early(di, now);
            let ee = ee_kind.is_some();
            let le_alu = !ee
                && self.config.eole.late
                && fu.pred_used
                && di.inst.is_single_cycle_alu();
            let le_branch = self.config.eole.late && fu.hc && cls == InstClass::Branch;
            let needs_iq =
                !(ee || le_alu || le_branch || matches!(cls, InstClass::Jump | InstClass::Call));
            if needs_iq && self.iq.len() >= self.config.iq_entries {
                self.stats.stall_iq_full += 1;
                break;
            }
            // EE/prediction write-port budget (§6.3 ablation).
            let writes_prediction = (ee || fu.pred_used) && di.inst.dst.is_some();
            if writes_prediction {
                if let Some(cap) = self.config.eole.ee_writes_per_bank {
                    let class = di.inst.dst.map(|d| d.class()).unwrap_or(RegClass::Int);
                    let bank = self.prf.peek_alloc_bank(class);
                    let ci = if class == RegClass::Int { 0 } else { 1 };
                    if self.scratch.ee_writes[bank][ci] + 1 > cap {
                        self.stats.ee_write_stalls += 1;
                        break;
                    }
                }
            }
            // Rename: sources first, then the destination.
            let mut srcs: [Option<SrcReg>; 2] = [None, None];
            for (i, src) in di.inst.sources().enumerate() {
                let preg = self.spec_rat[src.flat() as usize];
                srcs[i] = Some(SrcReg { class: src.class(), preg });
            }
            let dst = match di.inst.dst {
                Some(d) => {
                    let class = d.class();
                    match self.prf.alloc(class) {
                        Some(new) => {
                            let old = self.spec_rat[d.flat() as usize];
                            self.spec_rat[d.flat() as usize] = new;
                            Some(DstReg { arch_flat: d.flat(), class, new, old })
                        }
                        None => {
                            self.stats.stall_prf += 1;
                            break;
                        }
                    }
                }
                None => None,
            };
            if writes_prediction {
                if let Some(d) = dst {
                    let ci = if d.class == RegClass::Int { 0 } else { 1 };
                    self.scratch.ee_writes[self.prf.bank_of(d.new)][ci] += 1;
                }
            }
            self.front_q.pop_front();

            // Destination readiness + completion.
            let mut done_cycle = NOT_READY;
            if let Some(d) = dst {
                if ee || fu.pred_used || matches!(cls, InstClass::Call | InstClass::CallIndirect)
                {
                    // EE result / used prediction / statically-known link
                    // value is written to the PRF at dispatch.
                    self.prf.set_ready_min(d.class, d.new, now);
                }
            }
            if ee || matches!(cls, InstClass::Jump | InstClass::Call) {
                done_cycle = now;
            }
            // Writer availability for the EE operand rules.
            if let Some(d) = dst {
                let avail = if fu.pred_used
                    || matches!(cls, InstClass::Call | InstClass::CallIndirect)
                {
                    Avail::Pred
                } else if let Some(k) = ee_kind {
                    k
                } else {
                    Avail::No
                };
                self.writer_info[d.arch_flat as usize] =
                    Some(Writer { renamed_cycle: now, avail });
            }

            // Queue occupancy. LQ/SQ slot ids are cached in the ROB entry
            // so issue/commit/squash never search the queues.
            if needs_iq {
                self.iq.push(IqEntry { seq: fu.seq, wake: 0 });
            }
            let mut lsq_slot = 0u64;
            if cls == InstClass::Load {
                let dep_store = self
                    .store_sets
                    .ssid(pck(di.pc))
                    .and_then(|s| self.lfst[s as usize]);
                lsq_slot = self.lq.push_back(LoadEntry {
                    seq: fu.seq,
                    addr: di.addr,
                    size: di.size,
                    dep_store,
                    issued_at: NOT_READY,
                });
            }
            if cls == InstClass::Store {
                lsq_slot = self.sq.push_back(StoreEntry {
                    seq: fu.seq,
                    addr: di.addr,
                    size: di.size,
                    issued_at: NOT_READY,
                });
                if let Some(s) = self.store_sets.ssid(pck(di.pc)) {
                    self.lfst[s as usize] = Some((fu.seq, lsq_slot));
                }
            }

            let rob_slot = self.rob.push_back(RobEntry {
                seq: fu.seq,
                trace_idx: fu.trace_idx,
                dispatch_cycle: now,
                class: cls,
                dst,
                srcs,
                done_cycle,
                lsq_slot,
                ee,
                le_alu,
                le_branch,
                vp_eligible: di.inst.is_vp_eligible(),
                vp_queried: fu.vp_queried,
                pred_some: fu.pred_some,
                pred_used: fu.pred_used,
                pred_correct: fu.pred_correct,
                pred_level: fu.pred_level,
                pred_value_correct: fu.pred_value_correct,
                hc: fu.hc,
                awaited: fu.awaited,
                ind_mispredict: fu.ind_mispredict,
            });
            debug_assert_eq!(rob_slot, fu.seq, "ROB slot ids track sequence numbers");
            dispatched += 1;
        }
        if dispatched > 0 {
            self.prev_group_cycle = now;
        }
        dispatched
    }

    // ------------------------------------------------------------------
    // Issue / Execute
    // ------------------------------------------------------------------

    /// O(1) ROB access: slot ids coincide with sequence numbers (checked
    /// at dispatch), so the entry for `seq` is `rob.slot(seq)`.
    #[inline]
    fn rob_entry(&self, seq: u64) -> &RobEntry {
        self.rob.slot(seq)
    }

    /// Source readiness as a wakeup bound: `Ok(())` when every source is
    /// readable this cycle, otherwise `Err(wake)` — the earliest future
    /// cycle worth re-examining this µ-op (`now + 1` while a producer has
    /// not even issued yet; the known completion cycle afterwards).
    fn srcs_wake(&self, e: &RobEntry) -> Result<(), u64> {
        let now = self.cycle;
        match self.srcs_known_ready_by(e) {
            // Producer not issued: its completion is unknowable, but it
            // cannot complete before next cycle.
            None => Err(now + 1),
            Some(t) if t <= now => Ok(()),
            Some(t) => Err(t),
        }
    }

    /// Decides whether the load in LQ slot `lq_slot` (program counter
    /// `pc`) can go: `None` = wait, `Some(done_cycle)` = issue now.
    fn try_load(&mut self, lq_slot: u64, pc: u64) -> Option<u64> {
        let now = self.cycle;
        let le = *self.lq.slot(lq_slot);
        // Store-set dependence: wait until the flagged store has issued.
        // The cached SQ slot makes this O(1); a store that already left
        // the queue (committed) has issued by definition.
        if let Some((dep_seq, dep_slot)) = le.dep_store {
            if self.sq.holds_slot(dep_slot) {
                let st = self.sq.slot(dep_slot);
                debug_assert_eq!(st.seq, dep_seq, "surviving dep points at its store");
                if st.seq == dep_seq && st.issued_at == NOT_READY {
                    return None;
                }
            }
        }
        // Youngest older store with a known address that overlaps decides.
        for st in self.sq.iter().rev() {
            if st.seq >= le.seq {
                continue;
            }
            if st.issued_at != NOT_READY && overlap(st.addr, st.size, le.addr, le.size) {
                return if contains(st.addr, st.size, le.addr, le.size) {
                    self.stats.sq_forwards += 1;
                    Some(now + latency::SQ_FORWARD)
                } else {
                    None // partial overlap: wait for the store to drain
                };
            }
            // Unknown address: speculate past it (store sets permitting).
        }
        Some(self.mem.load(pc, le.addr, now))
    }

    /// Returns `(violation_squash_happened, µ-ops issued)`.
    pub(super) fn do_issue(&mut self) -> (bool, usize) {
        let now = self.cycle;
        let mut issued = 0usize;
        let mut alu_used = 0usize;
        let mut fp_used = 0usize;
        let mut mul_used = 0usize;
        let mut fmul_used = 0usize;
        let mut mem_used = 0usize;
        let mut violation: Option<(u64, u64)> = None; // (load_seq, store_seq)
        // In-place IQ compaction: entries that cannot issue this cycle are
        // written back at `kept` (order preserved), the tail is truncated.
        let mut kept = 0usize;
        let iq_len = self.iq.len();
        for i in 0..iq_len {
            let IqEntry { seq, wake } = self.iq[i];
            macro_rules! keep {
                ($wake:expr) => {{
                    self.iq[kept] = IqEntry { seq, wake: $wake };
                    kept += 1;
                    continue;
                }};
            }
            if issued >= self.config.issue_width || violation.is_some() {
                keep!(wake);
            }
            // Wakeup filter: sources provably unreadable before `wake`.
            if wake > now {
                keep!(wake);
            }
            let e = self.rob_entry(seq);
            if let Err(wake) = self.srcs_wake(e) {
                keep!(wake);
            }
            let class = e.class;
            let done = match class {
                InstClass::IntAlu
                | InstClass::Branch
                | InstClass::Return
                | InstClass::JumpIndirect
                | InstClass::CallIndirect => {
                    if alu_used >= self.config.fu.int_alu {
                        keep!(0);
                    }
                    alu_used += 1;
                    now + latency::INT_ALU
                }
                InstClass::IntMul => {
                    if mul_used >= self.config.fu.int_muldiv
                        || !self.muldiv_busy.iter().any(|b| *b <= now)
                    {
                        keep!(0);
                    }
                    mul_used += 1;
                    now + latency::INT_MUL
                }
                InstClass::IntDiv => {
                    let Some(unit) = self.muldiv_busy.iter_mut().find(|b| **b <= now) else {
                        keep!(0);
                    };
                    if mul_used >= self.config.fu.int_muldiv {
                        keep!(0);
                    }
                    mul_used += 1;
                    *unit = now + latency::INT_DIV; // unpipelined
                    now + latency::INT_DIV
                }
                InstClass::FpAlu => {
                    if fp_used >= self.config.fu.fp_alu {
                        keep!(0);
                    }
                    fp_used += 1;
                    now + latency::FP_ALU
                }
                InstClass::FpMul => {
                    if fmul_used >= self.config.fu.fp_muldiv
                        || !self.fpmuldiv_busy.iter().any(|b| *b <= now)
                    {
                        keep!(0);
                    }
                    fmul_used += 1;
                    now + latency::FP_MUL
                }
                InstClass::FpDiv => {
                    let Some(unit) = self.fpmuldiv_busy.iter_mut().find(|b| **b <= now)
                    else {
                        keep!(0);
                    };
                    if fmul_used >= self.config.fu.fp_muldiv {
                        keep!(0);
                    }
                    fmul_used += 1;
                    *unit = now + latency::FP_DIV;
                    now + latency::FP_DIV
                }
                InstClass::Load => {
                    if mem_used >= self.config.fu.mem_ports {
                        keep!(0);
                    }
                    let lq_slot = e.lsq_slot;
                    let pc = pck(self.trace.insts()[e.trace_idx].pc);
                    match self.try_load(lq_slot, pc) {
                        Some(done) => {
                            mem_used += 1;
                            self.lq.slot_mut(lq_slot).issued_at = now;
                            done
                        }
                        None => {
                            keep!(0);
                        }
                    }
                }
                InstClass::Store => {
                    if mem_used >= self.config.fu.mem_ports {
                        keep!(0);
                    }
                    mem_used += 1;
                    let sq_slot = e.lsq_slot;
                    let st_tidx = e.trace_idx;
                    let (st_addr, st_size, st_seq) = {
                        let st = self.sq.slot_mut(sq_slot);
                        st.issued_at = now;
                        (st.addr, st.size, st.seq)
                    };
                    debug_assert_eq!(st_seq, seq);
                    // The store's address is now known: detect any younger
                    // load that already executed against the same bytes.
                    let mut bad: Option<u64> = None;
                    for l in self.lq.iter() {
                        if l.seq > st_seq
                            && l.issued_at != NOT_READY
                            && l.issued_at <= now
                            && overlap(st_addr, st_size, l.addr, l.size)
                        {
                            bad = Some(bad.map_or(l.seq, |b: u64| b.min(l.seq)));
                        }
                    }
                    if let Some(load_seq) = bad {
                        violation = Some((load_seq, st_seq));
                    }
                    // Release the LFST entry if we are still its tail.
                    if let Some(s) = self
                        .store_sets
                        .ssid(pck(self.trace.insts()[st_tidx].pc))
                    {
                        if self.lfst[s as usize].is_some_and(|(fs, _)| fs == st_seq) {
                            self.lfst[s as usize] = None;
                        }
                    }
                    now + latency::INT_ALU // address generation
                }
                InstClass::Jump | InstClass::Call | InstClass::Halt => {
                    unreachable!("{class:?} never enters the IQ")
                }
            };
            issued += 1;
            let (dst, awaited) = {
                let e = self.rob.slot_mut(seq);
                e.done_cycle = done;
                (e.dst, e.awaited)
            };
            if let Some(d) = dst {
                self.prf.set_ready_min(d.class, d.new, done);
            }
            if awaited && self.pending_redirect == Some(seq) {
                // Mispredicted control µ-op resolves at `done`: fetch
                // restarts on the correct path then.
                self.pending_redirect = None;
                self.fetch_stall_until = done;
                self.last_fetch_line = u64::MAX;
            }
        }
        self.iq.truncate(kept);

        if let Some((load_seq, store_seq)) = violation {
            // Both µ-ops are still in flight: O(1) ROB lookups recover
            // their program counters for store-set training.
            let load_pc = pck(self.trace.insts()[self.rob_entry(load_seq).trace_idx].pc);
            let store_pc = pck(self.trace.insts()[self.rob_entry(store_seq).trace_idx].pc);
            self.store_sets.on_violation(load_pc, store_pc);
            self.stats.memory_order_squashes += 1;
            self.squash_from(load_seq);
            self.fetch_stall_until = now + 1;
            return (true, issued);
        }
        (false, issued)
    }
}
