//! In-order commit (gated by the LE/VT stage in front of it) and squash
//! recovery: cursor rewind plus a youngest-first ROB walk that undoes
//! renaming, with every window structure purged of squashed sequence
//! numbers.

use eole_isa::InstClass;

use super::state::{pck, Simulator};

impl Simulator<'_> {
    /// Returns true if a value-misprediction squash happened.
    pub(super) fn do_commit(&mut self) -> bool {
        let now = self.cycle;
        let mut committed = 0usize;
        // LE/VT read ports consumed per (bank, class) this cycle — a
        // reused scratch buffer, cleared here, incremented in place (with
        // rollback when a µ-op does not fit) instead of cloned per µ-op.
        let port_cap = self.config.eole.levt_read_ports_per_bank;
        if port_cap.is_some() {
            for b in self.scratch.port_reads.iter_mut() {
                *b = [0, 0];
            }
        }
        while committed < self.config.commit_width {
            // Exact-boundary mode (`run_exact`): cut the commit group at
            // the ceiling instead of overshooting past it. `u64::MAX`
            // (the `run` path) never triggers.
            if self.total_committed >= self.commit_limit {
                break;
            }
            let Some(e) = self.rob.front() else { break };
            if !self.levt_complete(e, now) {
                break;
            }
            // LE/VT read-port budget (Fig. 11).
            if let Some(cap) = port_cap {
                let (needed, n) = self.levt_reads(self.rob.front().expect("checked above")); // lint:allow(error-typing) re-borrow of the entry checked at loop top (borrowck)
                let mut fits = true;
                for (bank, ci) in &needed[..n] {
                    self.scratch.port_reads[*bank][*ci] += 1;
                    if self.scratch.port_reads[*bank][*ci] > cap {
                        fits = false;
                    }
                }
                if !fits {
                    // Roll the trial increments back: the group keeps the
                    // ports it already granted, nothing more.
                    for (bank, ci) in &needed[..n] {
                        self.scratch.port_reads[*bank][*ci] -= 1;
                    }
                    self.stats.levt_port_stalls += 1;
                    // Forward progress: if even an empty group cannot fit
                    // this µ-op (its own reads exceed the per-bank budget),
                    // the hardware would serialize the reads over extra
                    // cycles; commit it alone and end the group.
                    if committed == 0 {
                        for b in self.scratch.port_reads.iter_mut() {
                            b[0] = cap;
                            b[1] = cap;
                        }
                    } else {
                        break;
                    }
                }
            }

            // ---- the µ-op commits -------------------------------------
            let e = self.rob.pop_front().expect("checked above"); // lint:allow(error-typing) non-empty: the same entry was front() at loop top
            committed += 1;
            self.total_committed += 1;
            self.last_commit_cycle = now;
            self.stats.committed += 1;

            // LE accounting, branch resolution/training (late.rs).
            self.levt_resolve_control(&e, now);

            // Memory retirement.
            if e.class == InstClass::Store {
                debug_assert_eq!(self.sq.front().map(|s| s.seq), Some(e.seq));
                self.sq.pop_front();
                let di = &self.trace.insts()[e.trace_idx];
                self.mem.store(pck(di.pc), di.addr, now);
            }
            if e.class == InstClass::Load {
                debug_assert_eq!(self.lq.front().map(|l| l.seq), Some(e.seq));
                self.lq.pop_front();
            }

            // Value-predictor training (late.rs).
            self.levt_train(&e);

            // Architectural rename state.
            if let Some(d) = e.dst {
                self.commit_rat[d.arch_flat as usize] = d.new;
                self.prf.free(d.class, d.old);
            }

            // Validation: a wrong used prediction squashes everything
            // younger (§3.1: squash, not selective replay).
            if self.levt_validate(&e) {
                // Squash-cost accounting, split by stage depth: refetching
                // traverses the whole front end plus the LE/VT stage that
                // delayed discovery, and everything younger in the window
                // (the new ROB head is the oldest discarded µ-op) is work
                // thrown away.
                self.stats.vp_squash_cycles_frontend += self.config.frontend_depth;
                self.stats.vp_squash_cycles_levt += self.config.levt_depth();
                if let Some(oldest) = self.rob.front() {
                    self.stats.vp_squash_cycles_window +=
                        now.saturating_sub(oldest.dispatch_cycle);
                }
                self.squash_after(e.seq);
                self.fetch_stall_until = now + 1;
                return true;
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    /// Squashes every µ-op younger than `seq` (exclusive).
    pub(super) fn squash_after(&mut self, seq: u64) {
        self.squash_from(seq + 1);
    }

    /// Squashes every µ-op with sequence ≥ `first_bad` and rewinds the
    /// trace cursor so they refetch.
    pub(super) fn squash_from(&mut self, first_bad: u64) {
        // One notification rolls the whole VP speculative window back to
        // the cut: every in-flight (queried) instance with seq ≥
        // `first_bad` is dropped youngest-first — exactly the µ-ops the
        // front-queue and ROB walks below discard.
        if let Some(vp) = self.vp.as_mut() {
            vp.squash_from(first_bad);
        }
        let mut min_trace_idx: Option<usize> = None;
        // Front-end queue (not yet renamed).
        while let Some(back) = self.front_q.back() {
            if back.seq < first_bad {
                break;
            }
            let fu = self.front_q.pop_back().expect("non-empty"); // lint:allow(error-typing) while-let guard proves the queue is non-empty
            min_trace_idx =
                Some(min_trace_idx.map_or(fu.trace_idx, |m| m.min(fu.trace_idx)));
            self.stats.squashed += 1;
        }
        // ROB walk, youngest first: undo renaming.
        while let Some(back) = self.rob.back() {
            if back.seq < first_bad {
                break;
            }
            let e = self.rob.pop_back().expect("non-empty"); // lint:allow(error-typing) while-let guard proves the queue is non-empty
            min_trace_idx = Some(min_trace_idx.map_or(e.trace_idx, |m| m.min(e.trace_idx)));
            if let Some(d) = e.dst {
                self.spec_rat[d.arch_flat as usize] = d.old;
                self.prf.free(d.class, d.new);
            }
            self.stats.squashed += 1;
        }
        self.iq.retain(|e| e.seq < first_bad);
        while self.lq.back().is_some_and(|l| l.seq >= first_bad) {
            self.lq.pop_back();
        }
        while self.sq.back().is_some_and(|s| s.seq >= first_bad) {
            self.sq.pop_back();
        }
        for slot in &mut self.lfst {
            if slot.is_some_and(|(s, _)| s >= first_bad) {
                *slot = None;
            }
        }
        if self.pending_redirect.is_some_and(|s| s >= first_bad) {
            self.pending_redirect = None;
        }
        if let Some(idx) = min_trace_idx {
            self.cursor = idx;
        }
        // Every structure has been purged of seqs >= first_bad, so sequence
        // numbers can be reused. Rewinding `next_seq` in lock-step with the
        // ROB's popped tail keeps slot ids and sequence numbers aligned —
        // the invariant behind the O(1) `rob.slot(seq)` lookup.
        debug_assert!(
            self.rob.is_empty() || self.rob.next_slot() <= first_bad,
            "ROB tail never outlives the squash cut"
        );
        self.next_seq = first_bad;
        self.writer_info = [None; 64];
        self.prev_group_cycle = u64::MAX;
        self.last_fetch_line = u64::MAX;
        self.prf.reset_cursors();
    }
}

#[cfg(test)]
mod tests {
    use super::super::{PreparedTrace, Simulator};
    use crate::config::CoreConfig;
    use eole_isa::{generate_trace, IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    /// A looped serial multiply chain: 3-cycle latency per µ-op with a true
    /// dependency through the whole program, inside a tight loop so the
    /// I-cache warms after one iteration — fetch then outruns commit and
    /// the ROB reliably fills.
    fn serial_chain(iters: i64) -> PreparedTrace {
        let mut b = ProgramBuilder::new();
        b.movi(r(1), 3);
        b.movi(r(2), 0);
        b.movi(r(3), iters);
        let top = b.label();
        b.bind(top);
        for _ in 0..8 {
            b.mul(r(1), r(1), r(1));
        }
        b.addi(r(2), r(2), 1);
        b.bne(r(2), r(3), top);
        b.halt();
        PreparedTrace::new(generate_trace(&b.build().unwrap(), 100_000).unwrap())
    }

    /// Steps until at least `n` µ-ops sit in the ROB (panics if the trace
    /// drains first — the window never filled).
    fn fill_rob(sim: &mut Simulator<'_>, n: usize) {
        while sim.rob.len() < n {
            sim.step();
            assert!(
                !sim.finished() && sim.cycle() < 1_000_000,
                "ROB never reached {n} entries"
            );
        }
    }

    /// `squash_from` must restore the simulator to a state from which the
    /// whole trace still commits: cursor rewound, window structures purged,
    /// sequence numbers reusable.
    #[test]
    fn mid_flight_squash_still_commits_everything() {
        let trace = serial_chain(40);
        let mut sim = Simulator::new(&trace, CoreConfig::baseline_6_64()).unwrap();
        fill_rob(&mut sim, 16);
        let committed_before = sim.total_committed;
        sim.squash_from(committed_before);
        assert!(sim.rob.is_empty());
        assert!(sim.front_q.is_empty());
        assert!(sim.iq.is_empty());
        assert!(sim.lq.is_empty());
        assert!(sim.sq.is_empty());
        assert_eq!(sim.next_seq, committed_before, "seqs restart after the last commit");
        assert_eq!(sim.pending_redirect, None);
        // The machine restarts from the rewound cursor and finishes.
        sim.run(u64::MAX).unwrap();
        assert!(sim.finished());
        assert_eq!(sim.committed_total(), trace.len() as u64);
    }

    /// A partial squash keeps the older half of the window and purges only
    /// sequence numbers at or above the cut.
    #[test]
    fn partial_squash_keeps_older_uops_and_reuses_seqs() {
        let trace = serial_chain(60);
        let mut sim = Simulator::new(&trace, CoreConfig::baseline_6_64()).unwrap();
        fill_rob(&mut sim, 24);
        let mid = sim.rob[sim.rob.len() / 2].seq;
        let older: Vec<u64> = sim.rob.iter().map(|e| e.seq).filter(|s| *s < mid).collect();
        sim.squash_from(mid);
        assert!(sim.rob.iter().all(|e| e.seq < mid), "no squashed seq survives");
        assert_eq!(
            sim.rob.iter().map(|e| e.seq).collect::<Vec<_>>(),
            older,
            "older µ-ops keep their order"
        );
        assert!(sim.iq.iter().all(|e| e.seq < mid));
        assert_eq!(sim.next_seq, mid, "seq numbers restart at the cut");
        assert!(sim.stats.squashed > 0, "squashed µ-ops are counted");
        sim.run(u64::MAX).unwrap();
        assert!(sim.finished());
        assert_eq!(sim.committed_total(), trace.len() as u64);
    }

    /// Squashing must return every speculatively-allocated physical
    /// register: after a full squash the PRF free count matches a fresh
    /// simulator's.
    #[test]
    fn squash_frees_speculative_registers() {
        let trace = serial_chain(40);
        let fresh = Simulator::new(&trace, CoreConfig::baseline_6_64()).unwrap();
        let fresh_free = fresh.prf.free_count(eole_isa::RegClass::Int);
        let mut sim = Simulator::new(&trace, CoreConfig::baseline_6_64()).unwrap();
        fill_rob(&mut sim, 16);
        sim.squash_from(sim.total_committed);
        // Committing is net-zero on the free pool (alloc new, free old) and
        // so is a squash (alloc new, free new), so after a full squash the
        // free count must match a fresh simulator's exactly — anything less
        // is a leaked physical register.
        let now_free = sim.prf.free_count(eole_isa::RegClass::Int);
        assert_eq!(now_free, fresh_free, "squash must not leak physical registers");
        sim.run(u64::MAX).unwrap();
        assert!(sim.finished());
    }
}
