//! Warm-state checkpoints: a serializable snapshot of everything
//! [`Simulator::functional_warm`] trains.
//!
//! A [`WarmState`] captures the long-lived microarchitectural state that a
//! functional replay of the committed prefix reconstructs — TAGE/BTB/RAS,
//! the value-prediction backend (including its RNG stream positions and
//! in-flight stride accounting), the whole cache/DRAM/MSHR hierarchy with
//! its cumulative counters, and the handful of scalar fields the replay
//! advances (`cursor`, the functional clock, the fetch-line filter).
//! Restoring it into a freshly constructed [`Simulator`] is **bit-identical**
//! to replaying the same prefix from zero: every other simulator field is
//! untouched by `functional_warm`, so construction defaults already match.
//!
//! The payload is a canonical little-endian byte string (see
//! [`eole_predictors::snapshot`]): fixed field order, length-prefixed
//! tables, no padding. Byte equality of two `WarmState`s therefore *is*
//! state equality, which is what the paranoid interval checks and the
//! `checkpoint_restore_equals_prefix_replay` proptest assert.
//!
//! Versioning: the leading marker is [`WARMSTATE_FORMAT`]. Any change to
//! the field layout of any snapshotted component must bump the `v1` suffix
//! (see `PERF.md` §checkpointed-warmup) — stores key checkpoints by this
//! string, so a bump simply makes old cached checkpoints miss, degrading
//! to replay, never misdecoding.

use eole_predictors::snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};

use super::state::Simulator;

/// Format marker (and store payload kind) for serialized warm state.
pub const WARMSTATE_FORMAT: &str = "eole-warmstate/v1";

/// An opaque, store-cacheable checkpoint of a simulator's warm state.
///
/// Equality is byte equality of the canonical payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WarmState {
    bytes: Vec<u8>,
}

impl WarmState {
    /// The canonical serialized payload (starts with [`WARMSTATE_FORMAT`]).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the checkpoint, yielding the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload is empty (never the case for a valid
    /// checkpoint — the marker alone is non-empty).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Wraps bytes received from a store, checking the format marker.
    ///
    /// This validates only the *kind* of payload; structural validation
    /// happens in [`Simulator::restore_warm`], against the live
    /// configuration's table shapes.
    ///
    /// # Errors
    ///
    /// [`SnapError`] if the payload does not start with
    /// [`WARMSTATE_FORMAT`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(&bytes);
        r.expect_marker(WARMSTATE_FORMAT)?;
        Ok(WarmState { bytes })
    }

    /// The trace position (µ-op index) this checkpoint was captured at,
    /// without deserializing the rest of the payload.
    ///
    /// # Errors
    ///
    /// [`SnapError`] if the payload is truncated before the cursor field.
    pub fn position(&self) -> Result<u64, SnapError> {
        let mut r = SnapReader::new(&self.bytes);
        r.expect_marker(WARMSTATE_FORMAT)?;
        r.get_u64()
    }
}

impl Simulator<'_> {
    /// Captures the warm state at the current trace position.
    ///
    /// Must be called with the speculative VP window drained — i.e. after
    /// [`Simulator::functional_warm`] / construction, not mid-detailed-run.
    /// (`functional_warm` drains the window one query/train pair at a
    /// time, so this always holds on the chained-sweep path.)
    pub fn capture_warm(&self) -> WarmState {
        let mut w = SnapWriter::new();
        w.put_marker(WARMSTATE_FORMAT);
        w.put_usize(self.cursor);
        w.put_u64(self.cycle);
        w.put_u64(self.last_commit_cycle);
        w.put_u64(self.last_fetch_line);
        self.tage.snapshot(&mut w);
        self.btb.snapshot(&mut w);
        self.ras.snapshot(&mut w);
        match &self.vp {
            None => w.put_bool(false),
            Some(vp) => {
                w.put_bool(true);
                vp.snapshot(&mut w);
            }
        }
        self.mem.snapshot(&mut w);
        WarmState { bytes: w.into_bytes() }
    }

    /// Restores warm state captured by [`Simulator::capture_warm`],
    /// overwriting every field `functional_warm` trains. After a
    /// successful restore this simulator is bit-identical to one that
    /// functionally replayed the prefix `[0, position)` from construction
    /// — provided `self` was built with the same configuration over the
    /// same trace and has not started detailed simulation.
    ///
    /// # Errors
    ///
    /// [`SnapError`] if the payload is truncated, structurally invalid,
    /// or shaped for a different configuration (table sizes, predictor
    /// kind, prefetcher presence). **On error the simulator may be left
    /// partially restored — discard it and fall back to replay.**
    pub fn restore_warm(&mut self, warm: &WarmState) -> Result<(), SnapError> {
        let mut r = SnapReader::new(warm.as_bytes());
        r.expect_marker(WARMSTATE_FORMAT)?;
        let cursor = r.get_usize()?;
        if cursor > self.trace.len() {
            return Err(SnapError::new("warm cursor past end of trace"));
        }
        self.cursor = cursor;
        self.cycle = r.get_u64()?;
        self.last_commit_cycle = r.get_u64()?;
        self.last_fetch_line = r.get_u64()?;
        self.tage.restore(&mut r)?;
        self.btb.restore(&mut r)?;
        self.ras.restore(&mut r)?;
        let has_vp = r.get_bool()?;
        match (&mut self.vp, has_vp) {
            (Some(vp), true) => vp.restore(&mut r)?,
            (None, false) => {}
            _ => return Err(SnapError::new("vp presence mismatch")),
        }
        self.mem.restore(&mut r)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_rejects_wrong_marker() {
        let mut w = SnapWriter::new();
        w.put_marker("eole-result/v2");
        assert!(WarmState::from_bytes(w.into_bytes()).is_err());
        assert!(WarmState::from_bytes(Vec::new()).is_err());
    }

    #[test]
    fn position_reads_cursor_without_full_decode() {
        let mut w = SnapWriter::new();
        w.put_marker(WARMSTATE_FORMAT);
        w.put_usize(12_345);
        w.put_u8(0xff); // trailing garbage a full decode would reject
        let warm = WarmState::from_bytes(w.into_bytes()).expect("marker ok");
        assert_eq!(warm.position().expect("cursor present"), 12_345);
    }
}
