//! Early Execution (§3.1): single-cycle ALU µ-ops whose operands are all
//! EE-available (immediates, the local rename-group bypass, or a used value
//! prediction — never the PRF) execute in-order beside Rename and never
//! enter the OoO engine.

use super::state::{Avail, Simulator};

impl Simulator<'_> {
    /// Is the value of `arch` available to the EE block (never via PRF)?
    /// Returns the chaining depth contribution: `Some(depth_of_consumer)`.
    fn ee_src_depth(&self, arch: u8, now: u64) -> Option<usize> {
        let w = self.writer_info[arch as usize]?;
        if w.renamed_cycle == now {
            // Same rename group.
            match w.avail {
                Avail::Pred => Some(1),
                Avail::Ee1 if self.config.eole.ee_stages >= 2 => Some(2),
                _ => None,
            }
        } else if w.renamed_cycle == self.prev_group_cycle {
            // Previous rename group: pipeline-register bypass.
            match w.avail {
                Avail::No => None,
                _ => Some(1),
            }
        } else {
            None
        }
    }

    /// EE decision for a single-cycle ALU µ-op: `Some(Ee1 | Ee2)` if every
    /// register source is EE-available.
    pub(super) fn decide_early(&self, di: &eole_isa::DynInst, now: u64) -> Option<Avail> {
        if !self.config.eole.early || !di.inst.is_single_cycle_alu() {
            return None;
        }
        let mut depth = 1usize;
        for src in di.inst.sources() {
            match self.ee_src_depth(src.flat(), now) {
                Some(d) => depth = depth.max(d),
                None => return None,
            }
        }
        if depth == 1 {
            Some(Avail::Ee1)
        } else {
            Some(Avail::Ee2)
        }
    }
}
