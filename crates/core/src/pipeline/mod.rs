//! The EOLE pipeline model: a trace-driven, cycle-level superscalar with
//! value prediction, Early Execution beside Rename, and a Late Execution /
//! Validation / Training (LE/VT) stage before Commit.
//!
//! Stage order per simulated cycle (reverse pipeline order, standard for
//! cycle-by-cycle models): **commit+LE/VT → issue/execute → rename/dispatch
//! (incl. Early Execution) → fetch (incl. branch & value prediction)**.
//!
//! The module tree mirrors the paper's hardware stages:
//!
//! | Module | Hardware stage |
//! |---|---|
//! | [`frontend`](self) | fetch, branch prediction, VP query at fetch (§4.2) |
//! | [`early`](self) | Early Execution beside Rename (§3.1) |
//! | [`ooo`](self) | rename/dispatch and the OoO issue/execute engine |
//! | [`late`](self) | Late Execution + Validation/Training before Commit (§3.2) |
//! | [`commit`](self) | in-order commit and squash recovery |
//! | [`state`](self) | shared [`Simulator`] state, [`PreparedTrace`], [`SimError`] |
//!
//! See `DESIGN.md` §3 for the modelling decisions (trace-driven fetch that
//! stalls on mispredicted branches instead of running wrong paths; oracle
//! branch history; squash = cursor rewind + ROB walk).

mod commit;
mod early;
mod frontend;
mod late;
mod ooo;
mod state;
mod warm;
mod window;

#[cfg(test)]
mod tests;

pub use state::{PreparedTrace, SimError, Simulator};
pub use warm::{WarmState, WARMSTATE_FORMAT};
