//! Front end: trace-driven fetch with I-cache timing, branch prediction
//! (TAGE + BTB + RAS), and the block-granular value-predictor query at
//! fetch time (§4.2 / BeBoP): the predictor is read once per (cycle,
//! fetch block) and each VP-eligible µ-op registers an in-flight
//! instance in the speculative window — unless the window is full, in
//! which case the µ-op simply travels unpredicted.

use eole_isa::InstClass;
use eole_predictors::branch::{BranchConfidence, DirectionPredictor};

use super::state::{pck, FrontUop, Simulator};

impl Simulator<'_> {
    pub(super) fn do_fetch(&mut self) {
        if self.pending_redirect.is_some() || self.cycle < self.fetch_stall_until {
            return;
        }
        let mut taken = 0usize;
        for _ in 0..self.config.fetch_width {
            if self.cursor >= self.trace.len() || self.front_q.len() >= self.front_cap {
                return;
            }
            let di = &self.trace.insts()[self.cursor];
            // I-cache: access once per line transition.
            let line = pck(di.pc) & !63;
            if line != self.last_fetch_line {
                let done = self.mem.fetch(line, self.cycle);
                self.last_fetch_line = line;
                let hit_latency = 1;
                if done > self.cycle + hit_latency {
                    self.fetch_stall_until = done;
                    return; // µ-op not consumed; refetch hits the line.
                }
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut fu = FrontUop {
                trace_idx: self.cursor,
                seq,
                at_rename: self.cycle + self.config.frontend_depth,
                vp_queried: false,
                pred_some: false,
                pred_used: false,
                pred_correct: false,
                pred_level: 0,
                pred_value_correct: false,
                hc: false,
                awaited: false,
                ind_mispredict: false,
            };
            let view = self.trace.history.view(di.bhist_pos as usize);
            // Value prediction at fetch (§4.2), block-granular (BeBoP).
            if let Some(vp) = self.vp.as_mut() {
                if di.inst.is_vp_eligible() {
                    let q = vp.predict(self.cycle, seq, pck(di.pc), view);
                    if q.new_block {
                        self.stats.vp_block_reads += 1;
                    }
                    // Only accepted queries registered an in-flight
                    // instance, so only they are trained at commit or
                    // dropped at squash.
                    fu.vp_queried = q.accepted;
                    if !q.accepted {
                        self.stats.vp_window_rejects += 1;
                    }
                    if let Some(p) = q.pred {
                        fu.pred_some = true;
                        fu.pred_level = p.level;
                        fu.pred_value_correct = p.value == di.result;
                        if p.confident {
                            fu.pred_used = true;
                            fu.pred_correct = fu.pred_value_correct;
                        }
                    }
                }
            }
            // Control prediction.
            let cls = di.class();
            match cls {
                InstClass::Branch => {
                    let pred = self.tage.predict(pck(di.pc), view);
                    fu.hc = pred.confidence == BranchConfidence::VeryHigh;
                    if pred.taken {
                        if self.btb.lookup(pck(di.pc)).is_none() {
                            // Direct target resolved at decode: short bubble.
                            self.stats.btb_miss_bubbles += 1;
                            self.fetch_stall_until = self.cycle + self.config.btb_miss_bubble;
                        }
                        self.btb.insert(pck(di.pc), di.inst.imm as u32);
                    }
                    if pred.taken != di.taken {
                        fu.awaited = true;
                    }
                    if di.taken {
                        taken += 1;
                    }
                }
                InstClass::Jump | InstClass::Call => {
                    if self.btb.lookup(pck(di.pc)).is_none() {
                        self.stats.btb_miss_bubbles += 1;
                        self.fetch_stall_until = self.cycle + self.config.btb_miss_bubble;
                    }
                    self.btb.insert(pck(di.pc), di.next_pc);
                    if cls == InstClass::Call {
                        self.ras.push(di.pc + 1);
                    }
                    taken += 1;
                }
                InstClass::Return => {
                    let predicted = self.ras.pop();
                    if predicted != Some(di.next_pc) {
                        fu.awaited = true;
                        fu.ind_mispredict = true;
                    }
                    taken += 1;
                }
                InstClass::JumpIndirect | InstClass::CallIndirect => {
                    let predicted = self.btb.lookup(pck(di.pc));
                    self.btb.insert(pck(di.pc), di.next_pc);
                    if cls == InstClass::CallIndirect {
                        self.ras.push(di.pc + 1);
                    }
                    if predicted != Some(di.next_pc) {
                        fu.awaited = true;
                        fu.ind_mispredict = true;
                    }
                    taken += 1;
                }
                _ => {}
            }
            self.stats.fetched += 1;
            self.cursor += 1;
            let awaited = fu.awaited;
            if awaited {
                self.pending_redirect = Some(seq);
            }
            self.front_q.push_back(fu);
            if awaited || taken >= self.config.max_taken_per_cycle {
                return;
            }
            if self.cycle < self.fetch_stall_until {
                return; // BTB bubble cuts the fetch group.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{PreparedTrace, Simulator};
    use crate::config::CoreConfig;
    use eole_isa::{generate_trace, IntReg, ProgramBuilder};

    fn r(i: u8) -> IntReg {
        IntReg::new(i)
    }

    /// Fetch-to-commit depth calibration: the first independent µ-op must
    /// retire after roughly the front-end depth plus rename/commit and the
    /// LE/VT stage — the paper's "fetch-to-commit latency of 19 cycles
    /// (+1 with VP)".
    #[test]
    fn pipeline_depth_matches_the_paper() {
        let mut b = ProgramBuilder::new();
        for i in 0..32 {
            b.movi(r((i % 8) as u8 + 1), i as i64);
        }
        b.halt();
        let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 100).unwrap());
        let first_commit = |config: CoreConfig| {
            let mut sim = Simulator::new(&trace, config).unwrap();
            while sim.committed_total() == 0 {
                sim.step();
                assert!(sim.cycle() < 1000, "first commit never happened");
            }
            sim.cycle()
        };
        // The very first fetch pays one cold I-cache fill (~L2+DRAM),
        // then the µ-op flows through the 15-cycle front end to commit.
        let base = first_commit(CoreConfig::baseline_6_64());
        assert!(
            (140..=200).contains(&base),
            "cold fill + pipeline depth = {base} cycles"
        );
        // Adding VP adds exactly the one-cycle LE/VT stage.
        let vp = first_commit(CoreConfig::baseline_vp_6_64());
        assert_eq!(vp, base + 1, "the LE/VT stage is one cycle deep");
    }

    /// A hard-to-predict branch must cost roughly the pipeline refill
    /// (≥ 20 cycles per the paper) compared to a predictable one.
    #[test]
    fn branch_misprediction_penalty_is_a_pipeline_refill() {
        let build = |entropy: bool| {
            let mut b = ProgramBuilder::new();
            let (seed, t, i, n) = (r(1), r(2), r(3), r(4));
            b.movi(seed, 0x1357_9bdf);
            b.movi(i, 0);
            b.movi(n, 3_000);
            let top = b.label();
            b.bind(top);
            b.shli(t, seed, 13);
            b.xor(seed, seed, t);
            b.shri(t, seed, 7);
            b.xor(seed, seed, t);
            b.shli(t, seed, 17);
            b.xor(seed, seed, t);
            // Branch over *nothing*: taken and not-taken paths commit the
            // identical µ-op stream, so cycle deltas are pure penalty.
            let skip = b.label();
            if entropy {
                b.andi(t, seed, 1); // coin flip
            } else {
                b.andi(t, seed, 0); // always 0: perfectly predictable
            }
            b.beq_imm(t, 1, skip);
            b.bind(skip);
            b.addi(i, i, 1);
            b.blt(i, n, top);
            b.halt();
            PreparedTrace::new(generate_trace(&b.build().unwrap(), 200_000).unwrap())
        };
        let run = |trace: &PreparedTrace| {
            let mut sim = Simulator::new(trace, CoreConfig::baseline_6_64()).unwrap();
            sim.run(u64::MAX).unwrap();
            (sim.stats().cycles, sim.stats().branch_mispredicts, sim.stats().committed)
        };
        let noisy = build(true);
        let calm = build(false);
        let (noisy_cycles, mis, noisy_committed) = run(&noisy);
        let (calm_cycles, calm_mis, calm_committed) = run(&calm);
        assert!(mis > 500, "coin-flip branch must mispredict often: {mis}");
        assert!(calm_mis < 50, "biased branch must not: {calm_mis}");
        // Charge the cycle difference to the mispredictions (the two
        // programs commit the identical µ-op count by construction).
        assert_eq!(noisy_committed, calm_committed);
        let penalty = (noisy_cycles - calm_cycles) as f64 / mis as f64;
        assert!(
            (12.0..40.0).contains(&penalty),
            "per-misprediction penalty ≈ refill: {penalty:.1} cycles"
        );
    }

    /// Cold instruction fetch must stall on I-cache misses (long straight-
    /// line code marches through new lines).
    #[test]
    fn icache_misses_stall_fetch() {
        let mut b = ProgramBuilder::new();
        // 4K straight-line µ-ops = 256 I-cache lines, all cold.
        for i in 0..4096 {
            b.movi(r((i % 8) as u8 + 1), i as i64);
        }
        b.halt();
        let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 10_000).unwrap());
        let mut sim = Simulator::new(&trace, CoreConfig::baseline_6_64()).unwrap();
        sim.run(u64::MAX).unwrap();
        let s = sim.stats();
        assert!(s.mem.l1i.misses >= 200, "cold code must miss: {}", s.mem.l1i.misses);
        // Straight-line prefetch-free fetch gates IPC well below width.
        assert!(s.ipc() < 6.0);
    }

    /// Taken branches that miss the BTB charge the decode-redirect bubble.
    #[test]
    fn btb_misses_cost_bubbles_once() {
        let mut b = ProgramBuilder::new();
        let (i, n) = (r(1), r(2));
        b.movi(i, 0);
        b.movi(n, 500);
        let top = b.label();
        b.bind(top);
        b.addi(i, i, 1);
        b.blt(i, n, top); // same branch every time: one cold BTB miss
        b.halt();
        let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 10_000).unwrap());
        let mut sim = Simulator::new(&trace, CoreConfig::baseline_6_64()).unwrap();
        sim.run(u64::MAX).unwrap();
        let s = sim.stats();
        assert!(
            s.btb_miss_bubbles <= 5,
            "a single hot branch trains the BTB once: {}",
            s.btb_miss_bubbles
        );
    }
}
