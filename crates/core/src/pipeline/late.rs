//! Late Execution / Validation / Training (§3.2): the pre-commit stage
//! where predicted ALU µ-ops and very-high-confidence branches execute,
//! used predictions are validated against the architectural result, and
//! the value predictor is trained — all under the LE/VT read-port budget
//! of Fig. 11.

use eole_isa::InstClass;
use eole_predictors::branch::DirectionPredictor;

use super::state::{pck, RobEntry, Simulator};

impl Simulator<'_> {
    /// Can the ROB head pre-commit this cycle? LE µ-ops execute in the
    /// LE/VT stage itself: operands must be readable now (DIVA-style:
    /// everything older has resolved) and the µ-op must have traversed the
    /// pipe to pre-commit. Everything else waits out its completion plus
    /// the LE/VT depth.
    pub(super) fn levt_complete(&self, e: &RobEntry, now: u64) -> bool {
        if e.le_alu || e.le_branch {
            if e.dispatch_cycle + self.config.levt_depth() > now {
                return false;
            }
            self.srcs_known_ready_by(e).is_some_and(|t| t <= now)
        } else {
            e.done_cycle != crate::prf::NOT_READY
                && e.done_cycle + self.config.levt_depth() <= now
        }
    }

    /// The `(bank, class-index)` PRF reads this µ-op charges against the
    /// LE/VT read-port budget (Fig. 11): validation/training reads the
    /// result of every VP-eligible µ-op; LE µ-ops read their operands.
    ///
    /// At most 3 reads per µ-op (one result + two LE operands), so the
    /// list fits a fixed array — this runs per commit attempt and must
    /// not allocate. Returns the array plus the live count.
    pub(super) fn levt_reads(&self, e: &RobEntry) -> ([(usize, usize); 3], usize) {
        let mut needed = [(0usize, 0usize); 3];
        let mut n = 0usize;
        if self.vp.is_some() && e.vp_eligible {
            if let Some(d) = e.dst {
                let ci = if d.class == eole_isa::RegClass::Int { 0 } else { 1 };
                needed[n] = (self.prf.bank_of(d.new), ci);
                n += 1;
            }
        }
        if e.le_alu || e.le_branch {
            for s in e.srcs.iter().flatten() {
                let ci = if s.class == eole_isa::RegClass::Int { 0 } else { 1 };
                needed[n] = (self.prf.bank_of(s.preg), ci);
                n += 1;
            }
        }
        (needed, n)
    }

    /// Late-execution accounting plus control resolution at pre-commit:
    /// LE-resolved branch redirects (the expensive-but-rare case of §3.3)
    /// and branch-predictor training.
    pub(super) fn levt_resolve_control(&mut self, e: &RobEntry, now: u64) {
        if e.ee {
            self.stats.early_executed += 1;
        }
        if e.le_alu {
            self.stats.late_executed_alu += 1;
        }
        if e.le_branch {
            self.stats.late_executed_branches += 1;
        }

        let di = &self.trace.insts()[e.trace_idx];
        let view = self.trace.history.view(di.bhist_pos as usize);
        if e.class == InstClass::Branch {
            self.stats.cond_branches += 1;
            if e.hc {
                self.stats.hc_branches += 1;
            }
            if e.awaited {
                if e.hc {
                    self.stats.hc_branch_mispredicts += 1;
                } else {
                    self.stats.branch_mispredicts += 1;
                }
                if e.le_branch && self.pending_redirect == Some(e.seq) {
                    // Resolved only now, in the pre-commit stage.
                    self.pending_redirect = None;
                    self.fetch_stall_until = now + 1;
                    self.last_fetch_line = u64::MAX;
                }
            }
            self.tage.update(pck(di.pc), view, di.taken);
        } else if e.ind_mispredict {
            self.stats.indirect_mispredicts += 1;
        }
    }

    /// Value-predictor training (the "T" in LE/VT) for a retiring µ-op:
    /// retires the µ-op's in-flight speculative-window instance and
    /// trains the block predictor with the architectural result.
    pub(super) fn levt_train(&mut self, e: &RobEntry) {
        if !e.vp_eligible {
            return;
        }
        self.stats.vp_eligible += 1;
        if e.pred_some {
            self.stats.vp_predicted += 1;
            let lvl = (e.pred_level & 7) as usize;
            self.stats.vp_pred_by_level[lvl] += 1;
            if e.pred_value_correct {
                self.stats.vp_correct_by_level[lvl] += 1;
            }
        }
        if e.pred_used {
            self.stats.vp_used += 1;
            if e.pred_correct {
                self.stats.vp_used_correct += 1;
            }
        }
        let di = &self.trace.insts()[e.trace_idx];
        let view = self.trace.history.view(di.bhist_pos as usize);
        if let Some(vp) = self.vp.as_mut() {
            if e.vp_queried {
                vp.commit(e.seq, pck(di.pc), view, di.result);
            }
        }
    }

    /// Validation (the "V" in LE/VT): returns true if a used prediction
    /// turned out wrong and everything younger must squash (§3.1: squash,
    /// not selective replay).
    pub(super) fn levt_validate(&mut self, e: &RobEntry) -> bool {
        if e.pred_used && !e.pred_correct {
            self.stats.vp_used_wrong += 1;
            self.stats.vp_squashes += 1;
            true
        } else {
            false
        }
    }
}
