//! Shared simulator state: [`PreparedTrace`], [`SimError`], the
//! [`Simulator`] struct itself, the in-flight µ-op bookkeeping records, and
//! the cycle loop that sequences the stage modules.

use std::collections::VecDeque;

use eole_isa::{InstClass, Program, RegClass, Trace};
use eole_mem::hierarchy::MemoryHierarchy;
use eole_predictors::branch::{Btb, ReturnStack, Tage};
use eole_predictors::history::BranchHistory;
use eole_predictors::storesets::StoreSets;
use eole_predictors::value::{
    Fcm, LastValue, StridePredictor, TwoDeltaStride, ValuePredictor, Vtage,
    VtageTwoDeltaStride,
};

use crate::config::{CoreConfig, ValuePredictorKind};
use crate::prf::{PhysReg, Prf};
use crate::stats::SimStats;

/// A dynamic trace plus the precomputed branch-history log, shareable
/// across many simulator instances (one per configuration).
#[derive(Clone, Debug)]
pub struct PreparedTrace {
    insts: Vec<eole_isa::DynInst>,
    pub(super) history: BranchHistory,
}

impl PreparedTrace {
    /// Prepares a raw trace for timing simulation.
    pub fn new(trace: Trace) -> Self {
        let history = BranchHistory::from_outcomes(&trace.branch_outcomes);
        PreparedTrace { insts: trace.insts, history }
    }

    /// Number of µ-ops.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the trace holds no µ-ops.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The µ-ops.
    pub fn insts(&self) -> &[eole_isa::DynInst] {
        &self.insts
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline stopped retiring (internal invariant broken).
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Instructions committed up to that point.
        committed: u64,
    },
    /// Configuration rejected by [`CoreConfig::validate`].
    BadConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { cycle, committed } => {
                write!(f, "pipeline deadlock at cycle {cycle} after {committed} commits")
            }
            SimError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// How a value becomes available to the Early Execution block's operand
/// sources (paper §3.2: immediate, local bypass, or the value predictor —
/// never the PRF).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum Avail {
    /// Producer's *used prediction* travels with the rename group.
    Pred,
    /// Early-executed in EE stage 1.
    Ee1,
    /// Early-executed in EE stage 2 (2-deep EE only).
    Ee2,
    /// Result only exists in the PRF / OoO engine: not EE-consumable.
    No,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct Writer {
    pub(super) renamed_cycle: u64,
    pub(super) avail: Avail,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct SrcReg {
    pub(super) class: RegClass,
    pub(super) preg: PhysReg,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct DstReg {
    pub(super) arch_flat: u8,
    pub(super) class: RegClass,
    pub(super) new: PhysReg,
    pub(super) old: PhysReg,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct FrontUop {
    pub(super) trace_idx: usize,
    pub(super) seq: u64,
    pub(super) at_rename: u64,
    pub(super) vp_queried: bool,
    pub(super) pred_some: bool,
    pub(super) pred_used: bool,
    pub(super) pred_correct: bool,
    /// Very-high-confidence conditional branch (storage-free TAGE conf).
    pub(super) hc: bool,
    /// Fetch stalls until this µ-op resolves (mispredicted control).
    pub(super) awaited: bool,
    /// Mispredicted indirect/return (for stats).
    pub(super) ind_mispredict: bool,
}

#[derive(Clone, Debug)]
pub(super) struct RobEntry {
    pub(super) seq: u64,
    pub(super) trace_idx: usize,
    pub(super) dispatch_cycle: u64,
    pub(super) class: InstClass,
    pub(super) dst: Option<DstReg>,
    pub(super) srcs: [Option<SrcReg>; 2],
    pub(super) done_cycle: u64,
    pub(super) ee: bool,
    pub(super) le_alu: bool,
    pub(super) le_branch: bool,
    pub(super) vp_eligible: bool,
    pub(super) vp_queried: bool,
    pub(super) pred_some: bool,
    pub(super) pred_used: bool,
    pub(super) pred_correct: bool,
    pub(super) hc: bool,
    pub(super) awaited: bool,
    pub(super) ind_mispredict: bool,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct LoadEntry {
    pub(super) seq: u64,
    pub(super) trace_idx: usize,
    pub(super) addr: u64,
    pub(super) size: u8,
    pub(super) dep_store: Option<u64>,
    pub(super) issued_at: u64,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct StoreEntry {
    pub(super) seq: u64,
    pub(super) trace_idx: usize,
    pub(super) addr: u64,
    pub(super) size: u8,
    pub(super) issued_at: u64,
}

pub(super) fn overlap(a_addr: u64, a_size: u8, b_addr: u64, b_size: u8) -> bool {
    a_addr < b_addr + b_size as u64 && b_addr < a_addr + a_size as u64
}

pub(super) fn contains(
    outer_addr: u64,
    outer_size: u8,
    inner_addr: u64,
    inner_size: u8,
) -> bool {
    outer_addr <= inner_addr
        && inner_addr + inner_size as u64 <= outer_addr + outer_size as u64
}

pub(super) fn pck(pc: u32) -> u64 {
    Program::inst_addr(pc)
}

fn make_value_predictor(kind: ValuePredictorKind, seed: u64) -> Box<dyn ValuePredictor> {
    match kind {
        ValuePredictorKind::VtageTwoDeltaStride => Box::new(VtageTwoDeltaStride::paper(seed)),
        ValuePredictorKind::Vtage => Box::new(Vtage::paper(seed)),
        ValuePredictorKind::TwoDeltaStride => Box::new(TwoDeltaStride::paper(seed)),
        ValuePredictorKind::Stride => Box::new(StridePredictor::new(8192, seed)),
        ValuePredictorKind::LastValue => Box::new(LastValue::new(8192, seed)),
        ValuePredictorKind::Fcm => Box::new(Fcm::new(8192, 8192, seed)),
    }
}

/// The cycle-level simulator for one core configuration over one trace.
pub struct Simulator<'t> {
    pub(super) trace: &'t PreparedTrace,
    pub(super) config: CoreConfig,
    pub(super) cycle: u64,
    pub(super) cursor: usize,
    pub(super) next_seq: u64,
    pub(super) total_committed: u64,
    pub(super) last_commit_cycle: u64,

    // Front end.
    pub(super) fetch_stall_until: u64,
    pub(super) pending_redirect: Option<u64>,
    pub(super) last_fetch_line: u64,
    pub(super) front_q: VecDeque<FrontUop>,
    pub(super) front_cap: usize,
    pub(super) tage: Tage,
    pub(super) btb: Btb,
    pub(super) ras: ReturnStack,
    pub(super) vp: Option<Box<dyn ValuePredictor>>,

    // Rename.
    pub(super) spec_rat: [PhysReg; 64],
    pub(super) commit_rat: [PhysReg; 64],
    pub(super) prf: Prf,
    pub(super) writer_info: [Option<Writer>; 64],
    pub(super) prev_group_cycle: u64,

    // Window.
    pub(super) rob: VecDeque<RobEntry>,
    pub(super) iq: VecDeque<u64>,
    pub(super) lq: VecDeque<LoadEntry>,
    pub(super) sq: VecDeque<StoreEntry>,
    pub(super) store_sets: StoreSets,
    pub(super) lfst: Vec<Option<u64>>,

    // Execute.
    pub(super) muldiv_busy: Vec<u64>,
    pub(super) fpmuldiv_busy: Vec<u64>,
    pub(super) mem: MemoryHierarchy,

    pub(super) stats: SimStats,
}

impl<'t> Simulator<'t> {
    /// Builds a simulator over a prepared trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the configuration is inconsistent.
    pub fn new(trace: &'t PreparedTrace, config: CoreConfig) -> Result<Self, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        let mut spec_rat = [0 as PhysReg; 64];
        for (i, r) in spec_rat.iter_mut().enumerate() {
            *r = (i % 32) as PhysReg;
        }
        let store_sets = StoreSets::paper();
        let lfst = vec![None; store_sets.num_ssids() as usize];
        let front_cap = config.fetch_width * (config.frontend_depth as usize + 4);
        Ok(Simulator {
            cycle: 0,
            cursor: 0,
            next_seq: 0,
            total_committed: 0,
            last_commit_cycle: 0,
            fetch_stall_until: 0,
            pending_redirect: None,
            last_fetch_line: u64::MAX,
            front_q: VecDeque::new(),
            front_cap,
            tage: Tage::paper(config.branch_seed),
            btb: Btb::paper(),
            ras: ReturnStack::paper(),
            vp: config.vp.as_ref().map(|v| make_value_predictor(v.kind, v.seed)),
            spec_rat,
            commit_rat: spec_rat,
            prf: Prf::new(config.int_prf, config.fp_prf, config.prf_banks),
            writer_info: [None; 64],
            prev_group_cycle: u64::MAX,
            rob: VecDeque::new(),
            iq: VecDeque::new(),
            lq: VecDeque::new(),
            sq: VecDeque::new(),
            store_sets,
            lfst,
            muldiv_busy: vec![0; config.fu.int_muldiv],
            fpmuldiv_busy: vec![0; config.fu.fp_muldiv],
            mem: MemoryHierarchy::new(&config.mem),
            stats: SimStats::default(),
            trace,
            config,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total µ-ops committed since construction (not reset by
    /// [`Simulator::begin_measurement`]).
    pub fn committed_total(&self) -> u64 {
        self.total_committed
    }

    /// True once every trace µ-op has committed.
    pub fn finished(&self) -> bool {
        self.cursor >= self.trace.len() && self.front_q.is_empty() && self.rob.is_empty()
    }

    /// Snapshot of the counters (memory counters are cumulative).
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.mem = self.mem.stats();
        s
    }

    /// Zeroes the pipeline counters — call at the end of warmup so the
    /// measurement window starts clean (predictor/cache state is kept).
    pub fn begin_measurement(&mut self) {
        self.stats.reset();
    }

    /// Runs until `insts` more µ-ops commit, the trace drains, or the
    /// deadlock watchdog fires.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no commit happens for 100k cycles.
    pub fn run(&mut self, insts: u64) -> Result<(), SimError> {
        let target = self.total_committed.saturating_add(insts);
        while self.total_committed < target && !self.finished() {
            self.step();
            if self.cycle - self.last_commit_cycle > 100_000 {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    committed: self.total_committed,
                });
            }
        }
        Ok(())
    }

    /// Advances the pipeline by one cycle.
    pub fn step(&mut self) {
        let squashed = self.do_commit();
        if !squashed {
            let violated = self.do_issue();
            if !violated {
                self.do_dispatch();
                self.do_fetch();
            }
        }
        self.cycle += 1;
        self.stats.cycles += 1;
    }
}

impl std::fmt::Debug for Simulator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("config", &self.config.name)
            .field("cycle", &self.cycle)
            .field("committed", &self.total_committed)
            .field("rob", &self.rob.len())
            .field("iq", &self.iq.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, IntReg, ProgramBuilder};

    fn tiny_trace(iters: i64) -> Trace {
        let r = IntReg::new;
        let mut b = ProgramBuilder::new();
        b.movi(r(1), 0);
        b.movi(r(2), iters);
        let top = b.label();
        b.bind(top);
        b.addi(r(1), r(1), 1);
        b.bne(r(1), r(2), top);
        b.halt();
        generate_trace(&b.build().unwrap(), 100_000).unwrap()
    }

    #[test]
    fn prepared_trace_round_trips_the_raw_trace() {
        let raw = tiny_trace(10);
        let raw_insts = raw.insts.clone();
        let prepared = PreparedTrace::new(raw);
        assert_eq!(prepared.len(), raw_insts.len());
        assert!(!prepared.is_empty());
        // `insts()` exposes the same µ-ops in the same order.
        assert_eq!(prepared.insts().len(), raw_insts.len());
        for (a, b) in prepared.insts().iter().zip(raw_insts.iter()) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.result, b.result);
            assert_eq!(a.next_pc, b.next_pc);
        }
    }

    #[test]
    fn empty_trace_is_empty_and_finishes_immediately() {
        let prepared = PreparedTrace::new(Trace {
            insts: Vec::new(),
            branch_outcomes: Vec::new(),
            halted: false,
        });
        assert_eq!(prepared.len(), 0);
        assert!(prepared.is_empty());
        assert!(prepared.insts().is_empty());
        let mut sim =
            Simulator::new(&prepared, crate::config::CoreConfig::baseline_6_64()).unwrap();
        assert!(sim.finished());
        sim.run(u64::MAX).unwrap();
        assert_eq!(sim.committed_total(), 0);
    }

    #[test]
    fn prepared_trace_is_cloneable_and_shareable() {
        let prepared = PreparedTrace::new(tiny_trace(50));
        let cloned = prepared.clone();
        assert_eq!(prepared.len(), cloned.len());
        // Two simulators over the same prepared trace agree exactly.
        let run = |t: &PreparedTrace| {
            let mut sim =
                Simulator::new(t, crate::config::CoreConfig::baseline_6_64()).unwrap();
            sim.run(u64::MAX).unwrap();
            sim.stats().cycles
        };
        assert_eq!(run(&prepared), run(&cloned));
    }
}
