//! Shared simulator state: [`PreparedTrace`], [`SimError`], the
//! [`Simulator`] struct itself, the in-flight µ-op bookkeeping records, and
//! the cycle loop that sequences the stage modules.

use std::collections::VecDeque;

use eole_isa::{InstClass, Program, RegClass, Trace};
use eole_mem::hierarchy::MemoryHierarchy;
use eole_predictors::branch::{Btb, DirectionPredictor, ReturnStack, Tage};
use eole_predictors::history::BranchHistory;
use eole_predictors::storesets::StoreSets;
use eole_predictors::value::{
    AnyValuePredictor, BlockBackend, BlockParams, BlockVp, DVtage, DVtageConfig, Fcm, LastValue,
    StridePredictor, TwoDeltaStride, Vtage, VtageTwoDeltaStride,
};

use super::window::SeqRing;
use crate::config::{ConfigError, CoreConfig, ValuePredictorKind, VpConfig};
use crate::prf::{PhysReg, Prf, NOT_READY};
use crate::stats::SimStats;

/// A dynamic trace plus the precomputed branch-history log, shareable
/// across many simulator instances (one per configuration).
#[derive(Clone, Debug)]
pub struct PreparedTrace {
    insts: Vec<eole_isa::DynInst>,
    pub(super) history: BranchHistory,
}

impl PreparedTrace {
    /// Prepares a raw trace for timing simulation.
    pub fn new(trace: Trace) -> Self {
        let history = BranchHistory::from_outcomes(&trace.branch_outcomes);
        PreparedTrace { insts: trace.insts, history }
    }

    /// Number of µ-ops.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// The precomputed correct-path branch-outcome log (predictors index
    /// it by each µ-op's `bhist_pos`; offline evaluation replays it).
    pub fn history(&self) -> &BranchHistory {
        &self.history
    }

    /// True if the trace holds no µ-ops.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The µ-ops.
    pub fn insts(&self) -> &[eole_isa::DynInst] {
        &self.insts
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The pipeline stopped retiring (internal invariant broken).
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Instructions committed up to that point.
        committed: u64,
    },
    /// Configuration rejected by [`CoreConfig::validate`] (or a shape
    /// the PRF/predictor constructors refuse) — typed, not a panic.
    BadConfig(ConfigError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { cycle, committed } => {
                write!(f, "pipeline deadlock at cycle {cycle} after {committed} commits")
            }
            SimError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// How a value becomes available to the Early Execution block's operand
/// sources (paper §3.2: immediate, local bypass, or the value predictor —
/// never the PRF).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum Avail {
    /// Producer's *used prediction* travels with the rename group.
    Pred,
    /// Early-executed in EE stage 1.
    Ee1,
    /// Early-executed in EE stage 2 (2-deep EE only).
    Ee2,
    /// Result only exists in the PRF / OoO engine: not EE-consumable.
    No,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct Writer {
    pub(super) renamed_cycle: u64,
    pub(super) avail: Avail,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct SrcReg {
    pub(super) class: RegClass,
    pub(super) preg: PhysReg,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct DstReg {
    pub(super) arch_flat: u8,
    pub(super) class: RegClass,
    pub(super) new: PhysReg,
    pub(super) old: PhysReg,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct FrontUop {
    pub(super) trace_idx: usize,
    pub(super) seq: u64,
    pub(super) at_rename: u64,
    pub(super) vp_queried: bool,
    pub(super) pred_some: bool,
    pub(super) pred_used: bool,
    pub(super) pred_correct: bool,
    /// FPC level of the prediction at fetch (0–7; meaningful iff
    /// `pred_some`).
    pub(super) pred_level: u8,
    /// Whether the predicted value matched the trace result — tracked
    /// for *every* prediction, not just used ones, so per-confidence-
    /// level accuracy is observable.
    pub(super) pred_value_correct: bool,
    /// Very-high-confidence conditional branch (storage-free TAGE conf).
    pub(super) hc: bool,
    /// Fetch stalls until this µ-op resolves (mispredicted control).
    pub(super) awaited: bool,
    /// Mispredicted indirect/return (for stats).
    pub(super) ind_mispredict: bool,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct RobEntry {
    pub(super) seq: u64,
    pub(super) trace_idx: usize,
    pub(super) dispatch_cycle: u64,
    pub(super) class: InstClass,
    pub(super) dst: Option<DstReg>,
    pub(super) srcs: [Option<SrcReg>; 2],
    pub(super) done_cycle: u64,
    /// LQ/SQ slot id (loads/stores only) — cached at dispatch so issue,
    /// commit, and squash never search the queues.
    pub(super) lsq_slot: u64,
    pub(super) ee: bool,
    pub(super) le_alu: bool,
    pub(super) le_branch: bool,
    pub(super) vp_eligible: bool,
    pub(super) vp_queried: bool,
    pub(super) pred_some: bool,
    pub(super) pred_used: bool,
    pub(super) pred_correct: bool,
    pub(super) pred_level: u8,
    pub(super) pred_value_correct: bool,
    pub(super) hc: bool,
    pub(super) awaited: bool,
    pub(super) ind_mispredict: bool,
}

impl RobEntry {
    /// Inert slab filler for the pre-sized ROB ring (never observed:
    /// `SeqRing` only exposes live slots).
    pub(super) fn vacant() -> Self {
        RobEntry {
            seq: 0,
            trace_idx: 0,
            dispatch_cycle: 0,
            class: InstClass::IntAlu,
            dst: None,
            srcs: [None, None],
            done_cycle: NOT_READY,
            lsq_slot: 0,
            ee: false,
            le_alu: false,
            le_branch: false,
            vp_eligible: false,
            vp_queried: false,
            pred_some: false,
            pred_used: false,
            pred_correct: false,
            pred_level: 0,
            pred_value_correct: false,
            hc: false,
            awaited: false,
            ind_mispredict: false,
        }
    }
}

/// One issue-queue entry: the µ-op's sequence number plus a cached
/// wakeup bound.
///
/// `wake` is a *sound lower bound* on the first cycle the µ-op's sources
/// can all be readable, so the issue loop skips the operand check while
/// `wake > now` without ever issuing late: a physical register's
/// `ready_at` only transitions `NOT_READY → final cycle` while a reader
/// sits in the IQ (`Prf::set_ready_min` at dispatch precedes the reader's
/// rename; the later write at issue takes the minimum and cannot lower a
/// known value further). Sources still `NOT_READY` leave `wake` at
/// `now + 1` — re-examined every cycle until the producer issues, at
/// which point the completion cycle becomes the bound.
#[derive(Clone, Copy, Debug)]
pub(super) struct IqEntry {
    pub(super) seq: u64,
    pub(super) wake: u64,
}

#[derive(Clone, Copy, Debug)]
pub(super) struct LoadEntry {
    pub(super) seq: u64,
    pub(super) addr: u64,
    pub(super) size: u8,
    /// Store-set dependence: `(store seq, SQ slot id)` of the last
    /// fetched store of this load's store set, for O(1) lookup at issue.
    pub(super) dep_store: Option<(u64, u64)>,
    pub(super) issued_at: u64,
}

impl LoadEntry {
    pub(super) fn vacant() -> Self {
        LoadEntry { seq: 0, addr: 0, size: 0, dep_store: None, issued_at: NOT_READY }
    }
}

#[derive(Clone, Copy, Debug)]
pub(super) struct StoreEntry {
    pub(super) seq: u64,
    pub(super) addr: u64,
    pub(super) size: u8,
    pub(super) issued_at: u64,
}

impl StoreEntry {
    pub(super) fn vacant() -> Self {
        StoreEntry { seq: 0, addr: 0, size: 0, issued_at: NOT_READY }
    }
}

pub(super) fn overlap(a_addr: u64, a_size: u8, b_addr: u64, b_size: u8) -> bool {
    a_addr < b_addr + b_size as u64 && b_addr < a_addr + a_size as u64
}

pub(super) fn contains(
    outer_addr: u64,
    outer_size: u8,
    inner_addr: u64,
    inner_size: u8,
) -> bool {
    outer_addr <= inner_addr
        && inner_addr + inner_size as u64 <= outer_addr + outer_size as u64
}

pub(super) fn pck(pc: u32) -> u64 {
    Program::inst_addr(pc)
}

/// Builds a legacy per-instruction predictor as a by-value enum: the
/// fetch path queries it every cycle, and static dispatch keeps that
/// query free of the `Box<dyn>` pointer chase.
fn make_value_predictor(kind: ValuePredictorKind, seed: u64) -> AnyValuePredictor {
    match kind {
        ValuePredictorKind::VtageTwoDeltaStride => VtageTwoDeltaStride::paper(seed).into(),
        ValuePredictorKind::Vtage => Vtage::paper(seed).into(),
        ValuePredictorKind::TwoDeltaStride => TwoDeltaStride::paper(seed).into(),
        ValuePredictorKind::Stride => StridePredictor::new(8192, seed).into(),
        ValuePredictorKind::LastValue => LastValue::new(8192, seed).into(),
        ValuePredictorKind::Fcm => Fcm::new(8192, 8192, seed).into(),
        ValuePredictorKind::DVtage => unreachable!("DVtage is a native block backend"),
    }
}

/// Builds the block-based VP subsystem the pipeline talks to: the
/// configured backend (native D-VTAGE, or a legacy predictor behind the
/// block adapter) plus the speculative window, pre-sized to the
/// pipeline's maximum in-flight µ-op count so steady-state registration
/// never allocates.
fn make_block_vp(vp: &VpConfig, window_hint: usize) -> BlockVp {
    let params = BlockParams {
        block_size: vp.block_size,
        banks: vp.banks,
        spec_window: vp.spec_window,
    };
    let backend = match vp.kind {
        ValuePredictorKind::DVtage => BlockBackend::DVtage(DVtage::new(
            DVtageConfig::paper(vp.block_size, vp.banks),
            vp.seed,
        )),
        kind => BlockBackend::Legacy(make_value_predictor(kind, vp.seed)),
    };
    BlockVp::new(backend, params, window_hint)
}

/// Reusable per-cycle scratch buffers: cleared at the top of the stage
/// that owns them, never reallocated — `step()` performs no steady-state
/// heap allocation (enforced by `tests/zero_alloc.rs`).
#[derive(Debug)]
pub(super) struct Scratch {
    /// EE/prediction PRF writes per (bank, class) this dispatch group.
    pub(super) ee_writes: Vec<[usize; 2]>,
    /// LE/VT read ports consumed per (bank, class) this commit group.
    pub(super) port_reads: Vec<[usize; 2]>,
}

impl Scratch {
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    fn new(prf_banks: usize) -> Self {
        Scratch {
            ee_writes: vec![[0usize; 2]; prf_banks],
            port_reads: vec![[0usize; 2]; prf_banks],
        }
    }
}

/// The cycle-level simulator for one core configuration over one trace.
pub struct Simulator<'t> {
    pub(super) trace: &'t PreparedTrace,
    pub(super) config: CoreConfig,
    pub(super) cycle: u64,
    pub(super) cursor: usize,
    pub(super) next_seq: u64,
    pub(super) total_committed: u64,
    pub(super) last_commit_cycle: u64,

    // Front end.
    pub(super) fetch_stall_until: u64,
    pub(super) pending_redirect: Option<u64>,
    pub(super) last_fetch_line: u64,
    pub(super) front_q: VecDeque<FrontUop>,
    pub(super) front_cap: usize,
    pub(super) tage: Tage,
    pub(super) btb: Btb,
    pub(super) ras: ReturnStack,
    pub(super) vp: Option<BlockVp>,

    // Rename.
    pub(super) spec_rat: [PhysReg; 64],
    pub(super) commit_rat: [PhysReg; 64],
    pub(super) prf: Prf,
    pub(super) writer_info: [Option<Writer>; 64],
    pub(super) prev_group_cycle: u64,

    // Window: flat, pre-sized rings — allocated once at construction.
    // ROB slot ids coincide with sequence numbers (see `squash_from`);
    // LQ/SQ slot ids are cached in `RobEntry::lsq_slot`.
    pub(super) rob: SeqRing<RobEntry>,
    pub(super) iq: Vec<IqEntry>,
    pub(super) lq: SeqRing<LoadEntry>,
    pub(super) sq: SeqRing<StoreEntry>,
    pub(super) store_sets: StoreSets,
    pub(super) lfst: Vec<Option<(u64, u64)>>,

    // Execute.
    pub(super) muldiv_busy: Vec<u64>,
    pub(super) fpmuldiv_busy: Vec<u64>,
    pub(super) mem: MemoryHierarchy,

    pub(super) scratch: Scratch,
    /// True when the previous [`Simulator::step`] performed no action —
    /// the precondition for event-driven fast-forwarding in `run`.
    pub(super) idle: bool,
    /// Hard commit ceiling (`u64::MAX` = none): [`Simulator::do_commit`]
    /// never retires the µ-op that would push `total_committed` past it.
    /// Set only inside [`Simulator::run_exact`], so the overshooting
    /// [`Simulator::run`] semantics the golden fingerprints pin are
    /// untouched.
    pub(super) commit_limit: u64,
    pub(super) stats: SimStats,
}

impl<'t> Simulator<'t> {
    /// Builds a simulator over a prepared trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] if the configuration is inconsistent.
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub fn new(trace: &'t PreparedTrace, config: CoreConfig) -> Result<Self, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        let mut spec_rat = [0 as PhysReg; 64];
        for (i, r) in spec_rat.iter_mut().enumerate() {
            *r = (i % 32) as PhysReg;
        }
        let store_sets = StoreSets::paper();
        let lfst = vec![None; store_sets.num_ssids() as usize];
        let front_cap = config.fetch_width * (config.frontend_depth as usize + 4);
        Ok(Simulator {
            cycle: 0,
            cursor: 0,
            next_seq: 0,
            total_committed: 0,
            last_commit_cycle: 0,
            fetch_stall_until: 0,
            pending_redirect: None,
            last_fetch_line: u64::MAX,
            front_q: VecDeque::with_capacity(front_cap),
            front_cap,
            tage: Tage::paper(config.branch_seed),
            btb: Btb::paper(),
            ras: ReturnStack::paper(),
            vp: config
                .vp
                .as_ref()
                .map(|v| make_block_vp(v, front_cap + config.rob_entries)),
            spec_rat,
            commit_rat: spec_rat,
            prf: Prf::try_new(config.int_prf, config.fp_prf, config.prf_banks)
                .map_err(SimError::BadConfig)?,
            writer_info: [None; 64],
            prev_group_cycle: u64::MAX,
            rob: SeqRing::new(config.rob_entries, RobEntry::vacant()),
            iq: Vec::with_capacity(config.iq_entries),
            lq: SeqRing::new(config.lq_entries, LoadEntry::vacant()),
            sq: SeqRing::new(config.sq_entries, StoreEntry::vacant()),
            store_sets,
            lfst,
            muldiv_busy: vec![0; config.fu.int_muldiv],
            fpmuldiv_busy: vec![0; config.fu.fp_muldiv],
            mem: MemoryHierarchy::new(&config.mem),
            scratch: Scratch::new(config.prf_banks),
            idle: false,
            commit_limit: u64::MAX,
            stats: SimStats::default(),
            trace,
            config,
        })
    }

    /// Builds a simulator whose fetch cursor starts at trace index
    /// `start`, with predictor and cache state reconstructed by a
    /// functional replay of the skipped prefix — the entry point of
    /// interval-parallel simulation.
    ///
    /// The trace is fully deterministic, so no architectural
    /// reconstruction is needed: every µ-op carries its result, address,
    /// and taken/target outcome, and branch-history positions
    /// (`bhist_pos`) are absolute, so predictors indexed through
    /// [`PreparedTrace::history`] see exactly the history a from-zero run
    /// would at the same µ-op. Microarchitectural state is rebuilt by
    /// [`Simulator::functional_warm`] over `[0, start)`; callers then
    /// typically run a short *detailed* warmup window before their
    /// measurement region to settle timing-local state (see
    /// `Runner::try_run_intervals` in `eole-bench`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadConfig`] as [`Simulator::new`] does.
    pub fn new_at(
        trace: &'t PreparedTrace,
        config: CoreConfig,
        start: usize,
    ) -> Result<Self, SimError> {
        let mut sim = Self::new(trace, config)?;
        sim.functional_warm(start);
        Ok(sim)
    }

    /// Functionally replays trace µ-ops `[cursor, upto)` through the
    /// long-lived microarchitectural state — predictor tables and cache
    /// hierarchy — without cycle-level pipeline simulation, then leaves
    /// the fetch cursor at `upto`.
    ///
    /// The replay is in commit order with architectural outcomes, which
    /// reconstructs everything that is a pure function of the committed
    /// prefix *exactly*: TAGE is trained with the same `(pc, history,
    /// taken)` triples a detailed run trains it with at commit, the value
    /// predictor sees the same in-order query/train pairs its backend
    /// sees at fetch/commit (speculative-window depth effects are
    /// transient and settle during the caller's detailed warmup window),
    /// and the return stack replays its call/return pushes and pops.
    /// Cache and DRAM state is approximate — tags are touched in trace
    /// order at a synthetic clock rather than out-of-order issue order —
    /// which is what the interval cycle-error budget covers (`PERF.md`).
    ///
    /// The pipeline clock advances monotonically past every modeled
    /// access so the hierarchy never observes time running backwards; a
    /// subsequent [`Simulator::run`] simply continues from that cycle.
    pub fn functional_warm(&mut self, upto: usize) {
        let upto = upto.min(self.trace.len());
        let mut cycle = self.cycle;
        // Throwaway sequence numbers for the query/train pairs: each pair
        // drains the speculative window before the next, and `next_seq`
        // itself must stay untouched (ROB slots are seq-addressed from
        // the ring's base).
        let mut seq = 0u64;
        while self.cursor < upto {
            let di = &self.trace.insts()[self.cursor];
            let view = self.trace.history.view(di.bhist_pos as usize);
            // I-cache: one touch per line transition, as fetch does.
            let line = pck(di.pc) & !63;
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                cycle = cycle.max(self.mem.fetch(line, cycle));
            }
            // Value predictor: the same in-order query/train pair the
            // detailed machine issues at fetch and commit.
            if let Some(vp) = self.vp.as_mut() {
                if di.inst.is_vp_eligible() {
                    let q = vp.predict(cycle, seq, pck(di.pc), view);
                    if q.accepted {
                        vp.commit(seq, pck(di.pc), view, di.result);
                    }
                    seq += 1;
                }
            }
            // Control predictors: predict-then-train mirrors the fetch /
            // pre-commit split of the detailed machine.
            let cls = di.class();
            match cls {
                InstClass::Branch => {
                    let pred = self.tage.predict(pck(di.pc), view);
                    if pred.taken {
                        self.btb.insert(pck(di.pc), di.inst.imm as u32);
                    }
                    self.tage.update(pck(di.pc), view, di.taken);
                }
                InstClass::Jump | InstClass::Call => {
                    self.btb.insert(pck(di.pc), di.next_pc);
                    if cls == InstClass::Call {
                        self.ras.push(di.pc + 1);
                    }
                }
                InstClass::Return => {
                    self.ras.pop();
                }
                InstClass::JumpIndirect | InstClass::CallIndirect => {
                    self.btb.insert(pck(di.pc), di.next_pc);
                    if cls == InstClass::CallIndirect {
                        self.ras.push(di.pc + 1);
                    }
                }
                InstClass::Load => {
                    cycle = cycle.max(self.mem.load(pck(di.pc), di.addr, cycle));
                }
                InstClass::Store => {
                    self.mem.store(pck(di.pc), di.addr, cycle);
                }
                _ => {}
            }
            self.cursor += 1;
            cycle += 1;
        }
        self.cycle = cycle;
        // The replay clock can advance far past the deadlock watchdog's
        // window; re-arm it so the first detailed commit isn't declared
        // overdue.
        self.last_commit_cycle = cycle;
    }

    /// Trace index of the next µ-op to fetch (equals the number of
    /// committed µ-ops whenever the pipeline is drained; commit order is
    /// trace order).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// The active configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Total µ-ops committed since construction (not reset by
    /// [`Simulator::begin_measurement`]).
    pub fn committed_total(&self) -> u64 {
        self.total_committed
    }

    /// True once every trace µ-op has committed.
    pub fn finished(&self) -> bool {
        self.cursor >= self.trace.len() && self.front_q.is_empty() && self.rob.is_empty()
    }

    /// Snapshot of the counters (memory counters are cumulative).
    /// `SimStats` is `Copy`: the snapshot is a plain bitwise copy, no
    /// heap traffic.
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats;
        s.mem = self.mem.stats();
        s
    }

    /// Zeroes the pipeline counters — call at the end of warmup so the
    /// measurement window starts clean (predictor/cache state is kept).
    pub fn begin_measurement(&mut self) {
        self.stats.reset();
    }

    /// Runs until `insts` more µ-ops commit, the trace drains, or the
    /// deadlock watchdog fires.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no commit happens for 100k cycles.
    pub fn run(&mut self, insts: u64) -> Result<(), SimError> {
        let target = self.total_committed.saturating_add(insts);
        while self.total_committed < target && !self.finished() {
            self.step();
            if self.idle {
                // Nothing moved this cycle: jump to the next timed event
                // instead of burning a full pipeline scan per idle cycle
                // (memory-bound workloads spend most cycles exactly here).
                self.fast_forward();
            }
            if self.cycle - self.last_commit_cycle > 100_000 {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    committed: self.total_committed,
                });
            }
        }
        Ok(())
    }

    /// Like [`Simulator::run`], but commits **exactly** `insts` more
    /// µ-ops (or fewer if the trace drains): the final commit group is
    /// cut at the target instead of overshooting up to `commit_width - 1`
    /// µ-ops past it. Interval-parallel simulation is built on this —
    /// exact boundaries are what make per-interval committed counts add
    /// up to the serial count bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no commit happens for 100k cycles.
    pub fn run_exact(&mut self, insts: u64) -> Result<(), SimError> {
        self.commit_limit = self.total_committed.saturating_add(insts);
        let out = self.run(insts);
        debug_assert!(out.is_err() || self.finished() || self.total_committed == self.commit_limit);
        self.commit_limit = u64::MAX;
        out
    }

    /// Advances the pipeline by one cycle.
    pub fn step(&mut self) {
        let committed_before = self.stats.committed;
        let fetched_before = self.stats.fetched;
        let mut quiet = false;
        let squashed = self.do_commit();
        if !squashed {
            let (violated, issued) = self.do_issue();
            if !violated {
                let dispatched = self.do_dispatch();
                self.do_fetch();
                quiet = issued == 0 && dispatched == 0;
            }
        }
        self.idle = quiet
            && self.stats.committed == committed_before
            && self.stats.fetched == fetched_before;
        self.cycle += 1;
        self.stats.cycles += 1;
    }

    /// Max `ready_at` over the µ-op's register sources, or `None` while
    /// any source's readiness is still unknown (its producer has not
    /// issued). THE readiness scan: `srcs_wake` (issue), `levt_complete`
    /// (LE pre-commit), and `next_event` (fast-forward) all share it, so
    /// a change to operand-readiness semantics cannot silently diverge
    /// between the stepping and skipping paths.
    pub(super) fn srcs_known_ready_by(&self, e: &RobEntry) -> Option<u64> {
        let mut t = 0u64;
        for s in e.srcs.iter().flatten() {
            let r = self.prf.ready_at(s.class, s.preg);
            if r == NOT_READY {
                return None;
            }
            t = t.max(r);
        }
        Some(t)
    }

    /// The earliest future cycle at which any stage could act again,
    /// valid immediately after an idle [`Simulator::step`] (one that
    /// committed, issued, dispatched, fetched, and squashed nothing).
    ///
    /// During idle cycles no `Prf::set_ready_min` runs and no queue
    /// changes, so every unblock time is already written down somewhere:
    ///
    /// * the ROB head completes at `done + levt_depth` (LE µ-ops: at
    ///   `dispatch + levt_depth` once their sources — produced by already
    ///   committed µ-ops, hence with known readiness — are readable);
    /// * an IQ entry with a known wake bound issues no earlier than it;
    ///   an entry still waiting on an *unissued* producer (wake pinned to
    ///   "next cycle" by `srcs_wake`) cannot move before one of the other
    ///   events fires first, so it contributes nothing;
    /// * a ready entry blocked on an unpipelined divider waits for the
    ///   unit's busy-until cycle;
    /// * fetch resumes at `fetch_stall_until`; the front-queue head
    ///   reaches rename at `at_rename`.
    ///
    /// Returns `None` when no timed event exists (a genuine deadlock —
    /// the caller keeps stepping and the watchdog fires as usual).
    fn next_event(&self) -> Option<u64> {
        // `step` already advanced the clock past the idle cycle: `pre` is
        // the cycle that proved idle, `self.cycle` the next one simulated.
        // Every event strictly later than `pre` is still pending — a value
        // equal to `self.cycle` simply means "no skip".
        let pre = self.cycle - 1;
        let mut ev = u64::MAX;
        // Commit: the ROB head's completion.
        if let Some(e) = self.rob.front() {
            if e.le_alu || e.le_branch {
                if let Some(ready) = self.srcs_known_ready_by(e) {
                    let t = ready.max(e.dispatch_cycle + self.config.levt_depth());
                    if t > pre {
                        ev = ev.min(t);
                    }
                }
            } else if e.done_cycle != crate::prf::NOT_READY {
                let t = e.done_cycle + self.config.levt_depth();
                if t > pre {
                    ev = ev.min(t);
                }
            }
        }
        // Issue: known wakeups, and FU frees for ready-but-blocked entries.
        let mut fu_blocked = false;
        for entry in &self.iq {
            if entry.wake > pre && entry.wake != pre + 1 {
                ev = ev.min(entry.wake);
            } else if entry.wake == 0 {
                fu_blocked = true;
            } else {
                // `wake == pre + 1` is ambiguous: `srcs_wake` pins entries
                // blocked on an *unissued* producer to "next cycle", and a
                // genuinely known wake can also land there. Re-read the
                // sources (unchanged during idle cycles) to tell them
                // apart: any NOT_READY source means the entry only moves
                // as a consequence of another event.
                if let Some(t) = self.srcs_known_ready_by(self.rob.slot(entry.seq)) {
                    ev = ev.min(t.max(pre + 1));
                }
            }
        }
        if fu_blocked {
            for b in self.muldiv_busy.iter().chain(self.fpmuldiv_busy.iter()) {
                if *b > pre {
                    ev = ev.min(*b);
                }
            }
        }
        // Front end.
        if self.fetch_stall_until > pre {
            ev = ev.min(self.fetch_stall_until);
        }
        if let Some(fu) = self.front_q.front() {
            if fu.at_rename > pre {
                ev = ev.min(fu.at_rename);
            }
        }
        (ev != u64::MAX).then_some(ev)
    }

    /// After an idle step, jumps the clock to the next event; every
    /// skipped cycle is provably a no-op, so the cycle count (and every
    /// other observable) is identical to stepping through one by one.
    fn fast_forward(&mut self) {
        debug_assert!(self.idle);
        // Validation mode for the fast-forward machinery: instead of
        // jumping, single-step to the predicted event and panic if any
        // skipped cycle turns out not to be a no-op. Used by the golden
        // fingerprint tooling; read once so the hot path stays
        // allocation-free.
        static PARANOID: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if let Some(ev) = self.next_event() {
            if *PARANOID.get_or_init(|| std::env::var_os("EOLE_FF_PARANOID").is_some()) {
                while self.cycle < ev && !self.finished() {
                    let before = (self.stats.committed, self.stats.fetched, self.rob.len(), self.iq.len(), self.front_q.len());
                    let c = self.cycle;
                    self.step();
                    if !self.idle && self.cycle <= ev {
                        panic!( // lint:allow(error-typing) EOLE_FF_PARANOID is a crash-on-divergence debug mode
                            "fast-forward would miss an event: acted at cycle {c}, predicted {ev}; before={before:?} after=({}, {}, {}, {}, {})",
                            self.stats.committed, self.stats.fetched, self.rob.len(), self.iq.len(), self.front_q.len()
                        );
                    }
                }
                return;
            }
            if ev > self.cycle {
                let skip = ev - self.cycle;
                self.cycle += skip;
                self.stats.cycles += skip;
            }
        }
    }
}

impl std::fmt::Debug for Simulator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("config", &self.config.name)
            .field("cycle", &self.cycle)
            .field("committed", &self.total_committed)
            .field("rob", &self.rob.len())
            .field("iq", &self.iq.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, IntReg, ProgramBuilder};

    fn tiny_trace(iters: i64) -> Trace {
        let r = IntReg::new;
        let mut b = ProgramBuilder::new();
        b.movi(r(1), 0);
        b.movi(r(2), iters);
        let top = b.label();
        b.bind(top);
        b.addi(r(1), r(1), 1);
        b.bne(r(1), r(2), top);
        b.halt();
        generate_trace(&b.build().unwrap(), 100_000).unwrap()
    }

    #[test]
    fn prepared_trace_round_trips_the_raw_trace() {
        let raw = tiny_trace(10);
        let raw_insts = raw.insts.clone();
        let prepared = PreparedTrace::new(raw);
        assert_eq!(prepared.len(), raw_insts.len());
        assert!(!prepared.is_empty());
        // `insts()` exposes the same µ-ops in the same order.
        assert_eq!(prepared.insts().len(), raw_insts.len());
        for (a, b) in prepared.insts().iter().zip(raw_insts.iter()) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.result, b.result);
            assert_eq!(a.next_pc, b.next_pc);
        }
    }

    #[test]
    fn empty_trace_is_empty_and_finishes_immediately() {
        let prepared = PreparedTrace::new(Trace {
            insts: Vec::new(),
            branch_outcomes: Vec::new(),
            halted: false,
        });
        assert_eq!(prepared.len(), 0);
        assert!(prepared.is_empty());
        assert!(prepared.insts().is_empty());
        let mut sim =
            Simulator::new(&prepared, crate::config::CoreConfig::baseline_6_64()).unwrap();
        assert!(sim.finished());
        sim.run(u64::MAX).unwrap();
        assert_eq!(sim.committed_total(), 0);
    }

    #[test]
    fn prepared_trace_is_cloneable_and_shareable() {
        let prepared = PreparedTrace::new(tiny_trace(50));
        let cloned = prepared.clone();
        assert_eq!(prepared.len(), cloned.len());
        // Two simulators over the same prepared trace agree exactly.
        let run = |t: &PreparedTrace| {
            let mut sim =
                Simulator::new(t, crate::config::CoreConfig::baseline_6_64()).unwrap();
            sim.run(u64::MAX).unwrap();
            sim.stats().cycles
        };
        assert_eq!(run(&prepared), run(&cloned));
    }
}
