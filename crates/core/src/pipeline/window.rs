//! Flat, pre-sized window storage for the hot loop.
//!
//! [`SeqRing`] is a fixed-capacity FIFO ring over a contiguous slab,
//! built for the simulator's in-order-allocate / in-order-retire window
//! structures (ROB, LQ, SQ). It never allocates after construction, and
//! every element is addressable in O(1) two ways:
//!
//! * **positionally** — `ring[i]` / [`SeqRing::get`] with `0 = front`;
//! * **by slot id** — [`SeqRing::slot`]: `push_back` assigns each element
//!   a *slot id* (`front_slot + len`), `pop_front` advances `front_slot`,
//!   and `pop_back` returns the id to the allocator. Because the pipeline
//!   allocates window entries in program order and squashes youngest-first,
//!   a surviving reference can only point at a surviving (or already
//!   retired) slot, so a cached slot id replaces every O(n)
//!   `iter().find(|e| e.seq == seq)` scan the `VecDeque` window needed.
//!
//! For the ROB specifically the slot id *is* the sequence number: µ-ops
//! enter in seq order, and a squash rewinds `next_seq` in lock-step with
//! `pop_back` (see `squash_from`), keeping the two aligned forever —
//! the invariants `PERF.md` documents.

/// Fixed-capacity FIFO ring with O(1) positional and slot-id access.
///
/// See the module docs; `PERF.md` has the full invariant list.
#[derive(Clone, Debug)]
pub(super) struct SeqRing<T> {
    buf: Box<[T]>,
    /// Physical index of the front element.
    head: usize,
    len: usize,
    /// Absolute slot id of the front element (monotonic under
    /// `pop_front`; rewound only by `pop_back` freeing the tail).
    front_slot: u64,
}

impl<T: Copy> SeqRing<T> {
    /// A ring of `capacity` slots, pre-filled with `fill` (never read
    /// before being overwritten by `push_back`; a fill value keeps the
    /// slab initialization safe without `T: Default`).
    // lint:allow(hot-alloc) cold construction path: tables allocated once, before the measured loop
    pub(super) fn new(capacity: usize, fill: T) -> Self {
        assert!(capacity > 0, "window structures are never zero-sized");
        SeqRing { buf: vec![fill; capacity].into_boxed_slice(), head: 0, len: 0, front_slot: 0 }
    }

    #[inline]
    pub(super) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(super) fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn phys(&self, logical: usize) -> usize {
        let i = self.head + logical;
        if i >= self.buf.len() {
            i - self.buf.len()
        } else {
            i
        }
    }

    /// Slot id the next `push_back` will be assigned.
    #[inline]
    pub(super) fn next_slot(&self) -> u64 {
        self.front_slot + self.len as u64
    }

    #[inline]
    pub(super) fn front(&self) -> Option<&T> {
        (self.len > 0).then(|| &self.buf[self.head])
    }

    #[inline]
    pub(super) fn back(&self) -> Option<&T> {
        (self.len > 0).then(|| &self.buf[self.phys(self.len - 1)])
    }

    /// Appends an element and returns its slot id.
    ///
    /// # Panics
    ///
    /// Panics when full — callers gate on capacity (`rob_entries`,
    /// `lq_entries`, `sq_entries`) before dispatching.
    #[inline]
    pub(super) fn push_back(&mut self, v: T) -> u64 {
        assert!(self.len < self.buf.len(), "SeqRing overflow: capacity {}", self.buf.len());
        let slot = self.front_slot + self.len as u64;
        let i = self.phys(self.len);
        self.buf[i] = v;
        self.len += 1;
        slot
    }

    #[inline]
    pub(super) fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let v = self.buf[self.head];
        self.head = self.phys(1);
        self.len -= 1;
        self.front_slot += 1;
        Some(v)
    }

    #[inline]
    pub(super) fn pop_back(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let v = self.buf[self.phys(self.len - 1)];
        self.len -= 1;
        Some(v)
    }

    /// Positional access, `0 = front`.
    #[inline]
    pub(super) fn get(&self, logical: usize) -> Option<&T> {
        (logical < self.len).then(|| &self.buf[self.phys(logical)])
    }

    /// True if `slot` currently addresses a live element.
    #[inline]
    pub(super) fn holds_slot(&self, slot: u64) -> bool {
        slot >= self.front_slot && slot < self.front_slot + self.len as u64
    }

    /// O(1) access by slot id.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live (older than the front — already
    /// retired — or beyond the back).
    #[inline]
    pub(super) fn slot(&self, slot: u64) -> &T {
        debug_assert!(self.holds_slot(slot), "slot {slot} not live");
        let logical = (slot - self.front_slot) as usize;
        &self.buf[self.phys(logical)]
    }

    /// O(1) mutable access by slot id (same contract as [`SeqRing::slot`]).
    #[inline]
    pub(super) fn slot_mut(&mut self, slot: u64) -> &mut T {
        debug_assert!(self.holds_slot(slot), "slot {slot} not live");
        let logical = (slot - self.front_slot) as usize;
        let i = self.phys(logical);
        &mut self.buf[i]
    }

    fn as_slices(&self) -> (&[T], &[T]) {
        let end = self.head + self.len;
        if end <= self.buf.len() {
            (&self.buf[self.head..end], &[])
        } else {
            (&self.buf[self.head..], &self.buf[..end - self.buf.len()])
        }
    }

    /// Front-to-back iteration (double-ended, like `VecDeque::iter`).
    pub(super) fn iter(&self) -> impl DoubleEndedIterator<Item = &T> {
        let (a, b) = self.as_slices();
        a.iter().chain(b.iter())
    }
}

impl<T: Copy> std::ops::Index<usize> for SeqRing<T> {
    type Output = T;

    fn index(&self, logical: usize) -> &T {
        self.get(logical).expect("SeqRing index out of range") // lint:allow(error-typing) std `Index` contract: out-of-range must panic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_positional_access() {
        let mut r: SeqRing<u32> = SeqRing::new(4, 0);
        assert!(r.is_empty());
        assert_eq!(r.push_back(10), 0);
        assert_eq!(r.push_back(11), 1);
        assert_eq!(r.push_back(12), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], 10);
        assert_eq!(r[2], 12);
        assert_eq!(r.front(), Some(&10));
        assert_eq!(r.back(), Some(&12));
        assert_eq!(r.pop_front(), Some(10));
        assert_eq!(r.pop_back(), Some(12));
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![11]);
    }

    #[test]
    fn wraps_without_moving_elements() {
        let mut r: SeqRing<u32> = SeqRing::new(3, 0);
        for i in 0..3 {
            r.push_back(i);
        }
        // Retire two, append two: the ring wraps across the slab edge.
        assert_eq!(r.pop_front(), Some(0));
        assert_eq!(r.pop_front(), Some(1));
        r.push_back(3);
        r.push_back(4);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.iter().rev().copied().collect::<Vec<_>>(), vec![4, 3, 2]);
        assert_eq!(r[0], 2);
        assert_eq!(r[2], 4);
    }

    #[test]
    fn slot_ids_survive_front_retirement() {
        let mut r: SeqRing<u32> = SeqRing::new(4, 0);
        let a = r.push_back(100);
        let b = r.push_back(200);
        let c = r.push_back(300);
        r.pop_front(); // retire slot `a`
        assert!(!r.holds_slot(a));
        assert!(r.holds_slot(b) && r.holds_slot(c));
        assert_eq!(*r.slot(b), 200);
        *r.slot_mut(c) += 1;
        assert_eq!(*r.slot(c), 301);
        assert_eq!(r.front_slot, 1);
    }

    #[test]
    fn pop_back_reuses_slot_ids() {
        let mut r: SeqRing<u32> = SeqRing::new(4, 0);
        r.push_back(1);
        let b = r.push_back(2);
        assert_eq!(r.pop_back(), Some(2)); // squash the youngest
        let b2 = r.push_back(20); // refetch path reuses the id
        assert_eq!(b, b2);
        assert_eq!(*r.slot(b2), 20);
        assert_eq!(r.next_slot(), b2 + 1);
    }

    #[test]
    #[should_panic(expected = "SeqRing overflow")]
    fn overflow_panics() {
        let mut r: SeqRing<u32> = SeqRing::new(2, 0);
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
    }
}
