//! End-to-end pipeline tests exercising every stage together: all Table 1
//! presets, determinism, VP speedups, EOLE offload, squash recovery, store
//! sets, port limits, and the measurement-window protocol.

use super::{PreparedTrace, Simulator};
use crate::config::CoreConfig;
use crate::stats::SimStats;
use eole_isa::{generate_trace, FpReg, IntReg, ProgramBuilder};

fn r(i: u8) -> IntReg {
    IntReg::new(i)
}

/// A counted loop with a strided accumulator: highly value-predictable.
fn strided_loop(iters: i64) -> PreparedTrace {
    let mut b = ProgramBuilder::new();
    b.movi(r(1), 0);
    b.movi(r(2), iters);
    b.movi(r(3), 0);
    let top = b.label();
    b.bind(top);
    b.addi(r(1), r(1), 1);
    b.addi(r(3), r(3), 8);
    b.bne(r(1), r(2), top);
    b.halt();
    PreparedTrace::new(generate_trace(&b.build().unwrap(), 1_000_000).unwrap())
}

/// A long dependent chain through loads/ALU: VP breaks the chain.
fn dependent_chain(iters: i64) -> PreparedTrace {
    let mut b = ProgramBuilder::new();
    let buf = b.add_data_u64(&[5]);
    b.movi(r(1), buf as i64);
    b.movi(r(2), 0);
    b.movi(r(4), iters);
    let top = b.label();
    b.bind(top);
    // Serial chain: ld -> add -> st -> ld ... (same address)
    b.ld(r(3), r(1), 0);
    b.addi(r(3), r(3), 0); // value stays 5: predictable
    b.st(r(1), 0, r(3));
    b.addi(r(2), r(2), 1);
    b.bne(r(2), r(4), top);
    b.halt();
    PreparedTrace::new(generate_trace(&b.build().unwrap(), 1_000_000).unwrap())
}

fn run_to_end(trace: &PreparedTrace, config: CoreConfig) -> SimStats {
    let mut sim = Simulator::new(trace, config).unwrap();
    sim.run(u64::MAX).unwrap();
    assert!(sim.finished());
    assert_eq!(sim.committed_total(), trace.len() as u64);
    sim.stats()
}

#[test]
fn all_presets_complete_and_commit_everything() {
    let trace = strided_loop(400);
    for config in [
        CoreConfig::baseline_6_64(),
        CoreConfig::baseline_vp_6_64(),
        CoreConfig::baseline_vp_4_64(),
        CoreConfig::eole_6_64(),
        CoreConfig::eole_4_64(),
        CoreConfig::eole_4_64_banked(4),
        CoreConfig::eole_4_64_ports(4, 2),
        CoreConfig::ole_4_64_ports(4, 4),
        CoreConfig::eoe_4_64_ports(4, 4),
    ] {
        let name = config.name.clone();
        let s = run_to_end(&trace, config);
        assert!(s.ipc() > 0.1, "{name}: ipc = {}", s.ipc());
    }
}

#[test]
fn simulation_is_deterministic() {
    let trace = dependent_chain(800);
    let a = run_to_end(&trace, CoreConfig::eole_4_64());
    let b = run_to_end(&trace, CoreConfig::eole_4_64());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.vp_used, b.vp_used);
    assert_eq!(a.early_executed, b.early_executed);
}

#[test]
fn value_prediction_speeds_up_dependent_chains() {
    let trace = dependent_chain(3_000);
    let base = run_to_end(&trace, CoreConfig::baseline_6_64());
    let vp = run_to_end(&trace, CoreConfig::baseline_vp_6_64());
    assert!(
        vp.ipc() > base.ipc() * 1.05,
        "VP should break the serial chain: base {:.3}, vp {:.3}",
        base.ipc(),
        vp.ipc()
    );
    assert!(vp.vp_used > 1000, "predictions must be used: {}", vp.vp_used);
    assert_eq!(vp.vp_used_wrong, 0, "constant stream must not mispredict");
}

#[test]
fn eole_offloads_uops_from_the_ooo_engine() {
    let trace = strided_loop(4_000);
    let s = run_to_end(&trace, CoreConfig::eole_6_64());
    assert!(s.early_executed > 0, "EE must fire on predictable ALU ops");
    assert!(
        s.offload_fraction() > 0.10,
        "offload = {:.3}",
        s.offload_fraction()
    );
    // Disjoint counting: EE + LE(alu) can never exceed committed.
    assert!(s.early_executed + s.late_executed_alu + s.late_executed_branches <= s.committed);
}

#[test]
fn value_mispredict_squashes_and_recovers() {
    // A load whose value is constant for thousands of instances, then
    // changes: the saturated predictor uses a now-wrong prediction and
    // the pipeline must squash, refetch and still commit everything.
    let mut b = ProgramBuilder::new();
    let buf = b.add_data_u64(&[7]);
    b.movi(r(1), buf as i64);
    b.movi(r(2), 0);
    b.movi(r(4), 4_000);
    b.movi(r(6), 3_000);
    let top = b.label();
    b.bind(top);
    b.ld(r(3), r(1), 0);
    b.add(r(5), r(3), r(3)); // consumer of the predicted load
    b.addi(r(2), r(2), 1);
    let skip = b.label();
    b.bne(r(2), r(6), skip);
    b.movi(r(7), 99);
    b.st(r(1), 0, r(7)); // flip the loaded value once at iteration 3000
    b.bind(skip);
    b.bne(r(2), r(4), top);
    b.halt();
    let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 1_000_000).unwrap());
    let s = run_to_end(&trace, CoreConfig::baseline_vp_6_64());
    assert!(s.vp_squashes >= 1, "expected at least one value-mispredict squash");
    assert!(s.squashed > 0);
    // Squash-cost split: every VP squash charges the full front-end depth
    // plus the LE/VT stage; the window share only exists if younger µ-ops
    // were in flight.
    let cfg = CoreConfig::baseline_vp_6_64();
    assert_eq!(s.vp_squash_cycles_frontend, s.vp_squashes * cfg.frontend_depth);
    assert_eq!(s.vp_squash_cycles_levt, s.vp_squashes * cfg.levt_depth());
    assert!(s.vp_squash_cycles() >= s.vp_squashes * cfg.frontend_depth);
    assert!(s.vp_squash_cost_fraction() > 0.0);
}

#[test]
fn memory_order_violation_trains_store_sets() {
    // Store address depends on a 25-cycle divide; an immediately
    // following load hits the same address. The load speculates past
    // the store the first time (violation), and store sets should
    // prevent it from repeating every iteration.
    let mut b = ProgramBuilder::new();
    let buf = b.add_data_u64(&[0; 16]);
    b.movi(r(1), buf as i64);
    b.movi(r(2), 0);
    b.movi(r(4), 600);
    b.movi(r(8), 3);
    let top = b.label();
    b.bind(top);
    b.movi(r(5), 24);
    b.div(r(6), r(5), r(8)); // 24/3 = 8: slow address component
    b.add(r(7), r(1), r(6));
    b.st(r(7), 0, r(2)); // store to buf+8, address late
    b.ld(r(9), r(1), 8); // load from buf+8: conflicts
    b.addi(r(2), r(2), 1);
    b.bne(r(2), r(4), top);
    b.halt();
    let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 1_000_000).unwrap());
    let s = run_to_end(&trace, CoreConfig::baseline_6_64());
    assert!(s.memory_order_squashes >= 1, "must detect the violation");
    assert!(
        s.memory_order_squashes < 300,
        "store sets must stop recurrent violations: {}",
        s.memory_order_squashes
    );
}

#[test]
fn levt_port_limit_slows_but_completes() {
    let trace = strided_loop(3_000);
    let free = run_to_end(&trace, CoreConfig::eole_4_64_banked(4));
    let capped = run_to_end(&trace, CoreConfig::eole_4_64_ports(4, 1));
    assert!(capped.levt_port_stalls > 0, "1 port/bank must cut commit groups");
    assert!(capped.cycles >= free.cycles);
}

#[test]
fn fp_heavy_code_uses_fp_pools() {
    let f = FpReg::new;
    let mut b = ProgramBuilder::new();
    let data = b.add_data_f64(&[1.0, 1.5]);
    b.movi(r(1), data as i64);
    b.fld(f(1), r(1), 0);
    b.fld(f(2), r(1), 8);
    b.movi(r(2), 0);
    b.movi(r(3), 500);
    let top = b.label();
    b.bind(top);
    b.fmul(f(3), f(1), f(2));
    b.fadd(f(1), f(3), f(2));
    b.fdiv(f(4), f(1), f(2));
    b.addi(r(2), r(2), 1);
    b.bne(r(2), r(3), top);
    b.halt();
    let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 1_000_000).unwrap());
    let s = run_to_end(&trace, CoreConfig::baseline_6_64());
    // The serial FP chain (3 + 5 cycles per iteration minimum) caps IPC.
    assert!(s.ipc() < 2.0);
}

#[test]
fn narrower_issue_width_never_helps() {
    let trace = strided_loop(4_000);
    let six = run_to_end(&trace, CoreConfig::baseline_vp_6_64());
    let four = run_to_end(&trace, CoreConfig::baseline_vp_4_64());
    assert!(four.cycles >= six.cycles);
}

#[test]
fn measurement_window_reset_works() {
    let trace = strided_loop(2_000);
    let mut sim = Simulator::new(&trace, CoreConfig::baseline_vp_6_64()).unwrap();
    sim.run(1_000).unwrap();
    sim.begin_measurement();
    let warm = sim.stats();
    assert_eq!(warm.committed, 0);
    sim.run(1_000).unwrap();
    let s = sim.stats();
    assert!(s.committed >= 1_000);
    assert!(s.cycles > 0);
}

#[test]
fn calls_and_returns_flow_through() {
    let mut b = ProgramBuilder::new();
    b.movi(r(2), 0);
    b.movi(r(4), 300);
    let top = b.label();
    let func = b.label();
    b.bind(top);
    b.call(func);
    b.addi(r(2), r(2), 1);
    b.bne(r(2), r(4), top);
    b.halt();
    b.bind(func);
    b.addi(r(3), r(3), 2);
    b.ret();
    let trace = PreparedTrace::new(generate_trace(&b.build().unwrap(), 100_000).unwrap());
    let s = run_to_end(&trace, CoreConfig::eole_4_64());
    // RAS should make returns nearly free after warmup.
    assert!(s.indirect_mispredicts < 5, "indirect mispredicts: {}", s.indirect_mispredicts);
}
