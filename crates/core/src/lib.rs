//! # eole-core
//!
//! The paper's primary contribution: a cycle-level model of the
//! {Early | Out-of-Order | Late} Execution microarchitecture (EOLE,
//! Perais & Seznec, ISCA 2014) together with its baselines.
//!
//! * [`config::CoreConfig`] — Table 1 presets (`Baseline_6_64`,
//!   `Baseline_VP_6_64`, `EOLE_4_64`, `OLE`/`EOE` variants, banked/port-
//!   limited PRFs).
//! * [`pipeline::Simulator`] — trace-driven superscalar pipeline with
//!   value prediction at fetch, Early Execution beside Rename, an OoO
//!   scheduler with store sets, and the Late Execution/Validation/Training
//!   stage before Commit.
//! * [`prf::Prf`] — banked physical register file with the §6.3
//!   round-robin allocation rule.
//! * [`complexity`] — §6's register-file port/area arithmetic.
//! * [`stats::SimStats`] — IPC, offload fractions (Figs. 2/4), VP
//!   coverage/accuracy, branch MPKI.
//! * [`canon`] — canonical configuration serialization and FNV-1a
//!   digests ([`CoreConfig::digest`](config::CoreConfig::digest)), plus
//!   [`canon::SIM_FINGERPRINT_VERSION`], the cycle-behavior version that
//!   keys every stored result.
//!
//! ## Example
//!
//! ```
//! use eole_core::config::CoreConfig;
//! use eole_core::pipeline::{PreparedTrace, Simulator};
//! use eole_isa::{generate_trace, IntReg, ProgramBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny strided loop: value prediction eats it for breakfast.
//! let mut b = ProgramBuilder::new();
//! let (i, n) = (IntReg::new(1), IntReg::new(2));
//! b.movi(i, 0);
//! b.movi(n, 500);
//! let top = b.label();
//! b.bind(top);
//! b.addi(i, i, 1);
//! b.bne(i, n, top);
//! b.halt();
//! let trace = PreparedTrace::new(generate_trace(&b.build()?, 10_000)?);
//!
//! let mut sim = Simulator::new(&trace, CoreConfig::eole_4_64())?;
//! sim.run(u64::MAX)?;
//! assert!(sim.finished());
//! assert!(sim.stats().ipc() > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod canon;
pub mod complexity;
pub mod config;
pub mod pipeline;
pub mod prf;
pub mod stats;
