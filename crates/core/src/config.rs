//! Core configuration and the named presets of the paper's evaluation.
//!
//! Preset naming follows the paper: `Baseline_6_64` is a 6-issue, 64-entry-IQ
//! superscalar without value prediction; `Baseline_VP_6_64` adds the
//! VTAGE-2DStride predictor with validation at commit; `EOLE_x_y` adds Early
//! and Late Execution; `OLE`/`EOE` drop Early/Late Execution respectively
//! (§6.5).

use eole_mem::hierarchy::HierarchyConfig;

/// Functional-unit pool sizes (Table 1: "6ALU(1c), 4MulDiv(3c/25c*),
/// 6FP(3c), 4FPMulDiv(5c/10c*), 4Ld/Str; * = not pipelined").
#[derive(Clone, Debug)]
pub struct FuConfig {
    /// Single-cycle integer ALUs.
    pub int_alu: usize,
    /// Integer multiply/divide units (divide is unpipelined).
    pub int_muldiv: usize,
    /// 3-cycle FP units.
    pub fp_alu: usize,
    /// FP multiply/divide units (divide is unpipelined).
    pub fp_muldiv: usize,
    /// Load/store ports.
    pub mem_ports: usize,
}

impl FuConfig {
    /// Table 1's pool for the 6-issue baseline.
    pub fn paper() -> Self {
        FuConfig { int_alu: 6, int_muldiv: 4, fp_alu: 6, fp_muldiv: 4, mem_ports: 4 }
    }
}

/// Operation latencies in cycles (Table 1).
pub mod latency {
    /// Single-cycle integer ALU.
    pub const INT_ALU: u64 = 1;
    /// Pipelined integer multiply.
    pub const INT_MUL: u64 = 3;
    /// Unpipelined integer divide.
    pub const INT_DIV: u64 = 25;
    /// FP add/sub/convert/compare.
    pub const FP_ALU: u64 = 3;
    /// FP multiply.
    pub const FP_MUL: u64 = 5;
    /// Unpipelined FP divide.
    pub const FP_DIV: u64 = 10;
    /// Store-to-load forwarding from the SQ.
    pub const SQ_FORWARD: u64 = 2;
}

/// A configuration constraint violation, as data.
///
/// Every shape panic formerly reachable from a bad `CoreConfig` (the
/// `assert!`s in `Prf::new`, the free-form `String` from `validate`) now
/// reports through this type: a bad grid cell surfaces as a typed
/// `RunError` in the executor instead of aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A fetch/rename/commit/issue width or window capacity is zero.
    ZeroSize(&'static str),
    /// A banking/blocking parameter must be a power of two.
    NotPowerOfTwo {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        got: usize,
    },
    /// PRF registers must divide evenly across banks.
    PrfNotBankDivisible {
        /// Registers in the offending class.
        regs: usize,
        /// Configured bank count.
        banks: usize,
    },
    /// The PRF must at least cover the 32 architectural registers with
    /// renaming headroom.
    PrfTooSmall {
        /// Integer physical registers.
        int_prf: usize,
        /// FP physical registers.
        fp_prf: usize,
    },
    /// EOLE requires value prediction (validation happens at commit).
    EoleWithoutVp,
    /// The Early Execution block is 1 or 2 stages deep (Fig. 2).
    BadEeStages(usize),
    /// The VP speculative window, when bounded, must hold ≥ 1 µ-op.
    EmptySpecWindow,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroSize(what) => write!(f, "{what} must be non-zero"),
            ConfigError::NotPowerOfTwo { field, got } => {
                write!(f, "{field} must be a power of two, got {got}")
            }
            ConfigError::PrfNotBankDivisible { regs, banks } => {
                write!(f, "PRF size {regs} must divide evenly across {banks} banks")
            }
            ConfigError::PrfTooSmall { int_prf, fp_prf } => write!(
                f,
                "PRF ({int_prf} INT / {fp_prf} FP) must at least cover the 32 \
                 architectural registers with renaming headroom (≥ 64 each)"
            ),
            ConfigError::EoleWithoutVp => {
                write!(f, "EOLE requires value prediction (validation at commit)")
            }
            ConfigError::BadEeStages(got) => write!(f, "ee_stages must be 1 or 2, got {got}"),
            ConfigError::EmptySpecWindow => {
                write!(f, "vp.spec_window, when bounded, must hold at least 1 µ-op")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which value predictor drives the VP pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValuePredictorKind {
    /// The paper's hybrid (Table 2).
    VtageTwoDeltaStride,
    /// VTAGE alone.
    Vtage,
    /// 2-delta stride alone.
    TwoDeltaStride,
    /// Simple stride.
    Stride,
    /// Last-value.
    LastValue,
    /// Order-4 FCM.
    Fcm,
    /// D-VTAGE: block-based differential VTAGE (BeBoP, HPCA 2015) — the
    /// cost-aware realization of the hybrid, and the only kind that
    /// natively exploits `block_size`/`banks` in its table layout.
    DVtage,
}

/// Value-prediction configuration: predictor choice plus the shape of
/// the block-based access front (BeBoP).
#[derive(Clone, Debug)]
pub struct VpConfig {
    /// Predictor choice.
    pub kind: ValuePredictorKind,
    /// Seed for the probabilistic confidence counters.
    pub seed: u64,
    /// µ-ops per predictor fetch block (power of two). 1 models the
    /// pre-BeBoP per-instruction access the paper argues against.
    pub block_size: usize,
    /// Predictor storage banks (power of two).
    pub banks: usize,
    /// Bound on in-flight (predicted, unretired) µ-ops — the hardware's
    /// speculative-history checkpoint budget. `None` = unbounded (the
    /// idealization); a full window refuses further predictions.
    pub spec_window: Option<usize>,
}

impl VpConfig {
    /// The paper's VTAGE-2DStride hybrid, accessed per instruction with
    /// an unbounded speculative window (the EOLE paper's idealized
    /// predictor front — behavior-identical to the pre-block pipeline).
    pub fn paper() -> Self {
        VpConfig {
            kind: ValuePredictorKind::VtageTwoDeltaStride,
            seed: 0xe01e,
            block_size: 1,
            banks: 1,
            spec_window: None,
        }
    }

    /// The BeBoP-style D-VTAGE front: 4-µ-op fetch blocks, 4 banks, a
    /// 64-µ-op speculative window.
    pub fn dvtage() -> Self {
        VpConfig {
            kind: ValuePredictorKind::DVtage,
            block_size: 4,
            banks: 4,
            spec_window: Some(64),
            ..Self::paper()
        }
    }
}

/// EOLE feature toggles and port budgets.
#[derive(Clone, Debug)]
pub struct EoleConfig {
    /// Early Execution beside Rename (§3.2).
    pub early: bool,
    /// Late Execution in the pre-commit LE/VT stage (§3.3).
    pub late: bool,
    /// Depth of the Early Execution block (Fig. 2 compares 1 vs 2).
    pub ee_stages: usize,
    /// PRF read ports per bank reserved for Late Execution / Validation /
    /// Training; `None` models unlimited ports (Fig. 11 sweeps 2/3/4).
    pub levt_read_ports_per_bank: Option<usize>,
    /// Cap on EE/prediction PRF writes per bank per dispatch group
    /// (§6.3 "further possible hardware optimizations"); `None` = no cap.
    pub ee_writes_per_bank: Option<usize>,
}

impl EoleConfig {
    /// EOLE disabled (plain baseline / baseline+VP).
    pub fn off() -> Self {
        EoleConfig {
            early: false,
            late: false,
            ee_stages: 1,
            levt_read_ports_per_bank: None,
            ee_writes_per_bank: None,
        }
    }

    /// Full EOLE with unconstrained ports.
    pub fn full() -> Self {
        EoleConfig { early: true, late: true, ..Self::off() }
    }
}

/// Complete core configuration.
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Display name (used in result tables).
    pub name: String,
    /// µ-ops fetched per cycle (Table 1: 8-wide fetch).
    pub fetch_width: usize,
    /// µ-ops renamed/dispatched per cycle (8-wide).
    pub rename_width: usize,
    /// µ-ops retired per cycle (8-wide).
    pub commit_width: usize,
    /// Out-of-order issue width (the paper's 6 vs 4 experiments).
    pub issue_width: usize,
    /// Unified IQ capacity (64 vs 48).
    pub iq_entries: usize,
    /// Reorder buffer capacity (192).
    pub rob_entries: usize,
    /// Load-queue capacity (48).
    pub lq_entries: usize,
    /// Store-queue capacity (48).
    pub sq_entries: usize,
    /// Integer physical registers (256).
    pub int_prf: usize,
    /// FP physical registers (256).
    pub fp_prf: usize,
    /// PRF banks (Fig. 10 sweeps 1/2/4/8).
    pub prf_banks: usize,
    /// Fetch-to-rename depth in cycles (deep 15-cycle front end).
    pub frontend_depth: u64,
    /// Decode-redirect bubble on a taken control µ-op that misses the BTB.
    pub btb_miss_bubble: u64,
    /// Taken branches fetchable per cycle (Table 1: 2).
    pub max_taken_per_cycle: usize,
    /// Functional units.
    pub fu: FuConfig,
    /// Memory hierarchy.
    pub mem: HierarchyConfig,
    /// Value prediction; `None` disables VP (plain baseline).
    pub vp: Option<VpConfig>,
    /// EOLE toggles.
    pub eole: EoleConfig,
    /// Overrides the pre-commit LE/VT stage depth computed by
    /// [`CoreConfig::levt_depth`]; `Some(0)` models a free (zero-cycle)
    /// validation stage — the ROADMAP's h264 ablation knob.
    pub levt_depth_override: Option<u64>,
    /// Seed for TAGE's allocation randomization.
    pub branch_seed: u64,
}

/// Fluent constructor for [`CoreConfig`], for experiments that are not
/// one of the paper's named presets.
///
/// Starts from the `Baseline_6_64` skeleton; every setter overrides one
/// field and [`CoreConfigBuilder::build`] validates the result, so
/// experiment code no longer clones-and-mutates presets by hand:
///
/// ```
/// use eole_core::config::{CoreConfig, VpConfig};
///
/// let c = CoreConfig::builder()
///     .name("VP_6_48")
///     .issue_width(6)
///     .iq(48)
///     .vp(VpConfig::paper())
///     .build()
///     .unwrap();
/// assert_eq!(c.iq_entries, 48);
/// ```
#[derive(Clone, Debug)]
pub struct CoreConfigBuilder {
    config: CoreConfig,
}

impl CoreConfigBuilder {
    /// Display name used in result reports.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.config.name = name.into();
        self
    }

    /// Out-of-order issue width.
    #[must_use]
    pub fn issue_width(mut self, w: usize) -> Self {
        self.config.issue_width = w;
        self
    }

    /// Unified IQ capacity.
    #[must_use]
    pub fn iq(mut self, entries: usize) -> Self {
        self.config.iq_entries = entries;
        self
    }

    /// Reorder-buffer capacity.
    #[must_use]
    pub fn rob(mut self, entries: usize) -> Self {
        self.config.rob_entries = entries;
        self
    }

    /// Load-queue / store-queue capacities.
    #[must_use]
    pub fn lsq(mut self, lq: usize, sq: usize) -> Self {
        self.config.lq_entries = lq;
        self.config.sq_entries = sq;
        self
    }

    /// Fetch/rename/commit widths (the paper keeps all three equal).
    #[must_use]
    pub fn front_width(mut self, w: usize) -> Self {
        self.config.fetch_width = w;
        self.config.rename_width = w;
        self.config.commit_width = w;
        self
    }

    /// Integer / FP physical register counts.
    #[must_use]
    pub fn prf(mut self, int: usize, fp: usize) -> Self {
        self.config.int_prf = int;
        self.config.fp_prf = fp;
        self
    }

    /// Number of PRF banks.
    #[must_use]
    pub fn prf_banks(mut self, banks: usize) -> Self {
        self.config.prf_banks = banks;
        self
    }

    /// Fetch-to-rename depth in cycles.
    #[must_use]
    pub fn frontend_depth(mut self, cycles: u64) -> Self {
        self.config.frontend_depth = cycles;
        self
    }

    /// Enables value prediction with the given configuration.
    #[must_use]
    pub fn vp(mut self, vp: VpConfig) -> Self {
        self.config.vp = Some(vp);
        self
    }

    /// Enables value prediction with the given predictor and the paper's
    /// default seed.
    #[must_use]
    pub fn vp_kind(mut self, kind: ValuePredictorKind) -> Self {
        self.config.vp = Some(VpConfig { kind, ..VpConfig::paper() });
        self
    }

    /// Sets the BeBoP access shape — µ-ops per predictor fetch block and
    /// storage banks — of the already-enabled VP configuration.
    ///
    /// # Panics
    ///
    /// Panics if value prediction has not been enabled yet (authoring
    /// order error; enable with [`CoreConfigBuilder::vp`] first).
    #[must_use]
    pub fn vp_block(mut self, block_size: usize, banks: usize) -> Self {
        let vp = self.config.vp.as_mut().expect("enable VP before shaping its block front"); // lint:allow(error-typing) documented `# Panics`: builder authoring-order error
        vp.block_size = block_size;
        vp.banks = banks;
        self
    }

    /// Bounds (or unbounds, with `None`) the VP speculative window of the
    /// already-enabled VP configuration.
    ///
    /// # Panics
    ///
    /// Panics if value prediction has not been enabled yet.
    #[must_use]
    pub fn vp_spec_window(mut self, window: Option<usize>) -> Self {
        let vp = self.config.vp.as_mut().expect("enable VP before bounding its window"); // lint:allow(error-typing) documented `# Panics`: builder authoring-order error
        vp.spec_window = window;
        self
    }

    /// Disables value prediction (and therefore EOLE).
    #[must_use]
    pub fn no_vp(mut self) -> Self {
        self.config.vp = None;
        self
    }

    /// Replaces the whole EOLE block.
    #[must_use]
    pub fn eole(mut self, eole: EoleConfig) -> Self {
        self.config.eole = eole;
        self
    }

    /// Enables full EOLE (Early + Late Execution, unconstrained ports).
    #[must_use]
    pub fn eole_full(mut self) -> Self {
        self.config.eole = EoleConfig::full();
        self
    }

    /// Depth of the Early Execution block (1 or 2).
    #[must_use]
    pub fn ee_stages(mut self, stages: usize) -> Self {
        self.config.eole.ee_stages = stages;
        self
    }

    /// LE/VT read ports per PRF bank (`None` = unconstrained).
    #[must_use]
    pub fn levt_ports(mut self, ports: Option<usize>) -> Self {
        self.config.eole.levt_read_ports_per_bank = ports;
        self
    }

    /// Cap on EE/prediction PRF writes per bank per dispatch group.
    #[must_use]
    pub fn ee_writes_per_bank(mut self, cap: Option<usize>) -> Self {
        self.config.eole.ee_writes_per_bank = cap;
        self
    }

    /// Functional-unit pool.
    #[must_use]
    pub fn fu(mut self, fu: FuConfig) -> Self {
        self.config.fu = fu;
        self
    }

    /// Memory hierarchy.
    #[must_use]
    pub fn mem(mut self, mem: HierarchyConfig) -> Self {
        self.config.mem = mem;
        self
    }

    /// Seed for TAGE's allocation randomization.
    #[must_use]
    pub fn branch_seed(mut self, seed: u64) -> Self {
        self.config.branch_seed = seed;
        self
    }

    /// Pins the LE/VT stage depth (ablation knob; `Some(0)` = free
    /// validation stage, `None` = derive from the VP setting).
    #[must_use]
    pub fn levt_depth_override(mut self, depth: Option<u64>) -> Self {
        self.config.levt_depth_override = depth;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first constraint violated (see
    /// [`CoreConfig::validate`]).
    pub fn build(self) -> Result<CoreConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl CoreConfig {
    /// Starts a builder from the `Baseline_6_64` skeleton.
    pub fn builder() -> CoreConfigBuilder {
        CoreConfigBuilder { config: Self::base("custom", 6, 64) }
    }

    /// Reopens this configuration as a builder (derive a variant from a
    /// preset without mutating fields in place).
    pub fn to_builder(self) -> CoreConfigBuilder {
        CoreConfigBuilder { config: self }
    }

    fn base(name: &str, issue_width: usize, iq_entries: usize) -> Self {
        CoreConfig {
            name: name.to_string(),
            fetch_width: 8,
            rename_width: 8,
            commit_width: 8,
            issue_width,
            iq_entries,
            rob_entries: 192,
            lq_entries: 48,
            sq_entries: 48,
            int_prf: 256,
            fp_prf: 256,
            prf_banks: 1,
            frontend_depth: 15,
            btb_miss_bubble: 3,
            max_taken_per_cycle: 2,
            fu: FuConfig::paper(),
            mem: HierarchyConfig::paper(),
            vp: None,
            eole: EoleConfig::off(),
            levt_depth_override: None,
            branch_seed: 0x7a6e,
        }
    }

    /// `Baseline_6_64`: 6-issue, 64-entry IQ, no VP (Table 1).
    pub fn baseline_6_64() -> Self {
        Self::base("Baseline_6_64", 6, 64)
    }

    /// `Baseline_VP_6_64`: the reference configuration of §5.
    pub fn baseline_vp_6_64() -> Self {
        let mut c = Self::base("Baseline_VP_6_64", 6, 64);
        c.vp = Some(VpConfig::paper());
        c
    }

    /// `Baseline_VP_4_64` (Fig. 7).
    pub fn baseline_vp_4_64() -> Self {
        let mut c = Self::base("Baseline_VP_4_64", 4, 64);
        c.vp = Some(VpConfig::paper());
        c
    }

    /// `Baseline_VP_6_48` (Fig. 8).
    pub fn baseline_vp_6_48() -> Self {
        let mut c = Self::base("Baseline_VP_6_48", 6, 48);
        c.vp = Some(VpConfig::paper());
        c
    }

    /// `EOLE_6_64` (Fig. 7).
    pub fn eole_6_64() -> Self {
        let mut c = Self::base("EOLE_6_64", 6, 64);
        c.vp = Some(VpConfig::paper());
        c.eole = EoleConfig::full();
        c
    }

    /// `EOLE_4_64` — the headline configuration.
    pub fn eole_4_64() -> Self {
        let mut c = Self::base("EOLE_4_64", 4, 64);
        c.vp = Some(VpConfig::paper());
        c.eole = EoleConfig::full();
        c
    }

    /// `EOLE_6_48` (Fig. 8).
    pub fn eole_6_48() -> Self {
        let mut c = Self::base("EOLE_6_48", 6, 48);
        c.vp = Some(VpConfig::paper());
        c.eole = EoleConfig::full();
        c
    }

    /// `EOLE_4_64` with a banked PRF (Fig. 10).
    pub fn eole_4_64_banked(banks: usize) -> Self {
        let mut c = Self::eole_4_64();
        c.name = format!("EOLE_4_64_{banks}banks");
        c.prf_banks = banks;
        c
    }

    /// `EOLE_4_64` with a 4-banked PRF and `ports` LE/VT read ports per bank
    /// (Fig. 11; the paper's `EOLE_4_64_4ports_4banks` is `ports = 4`).
    pub fn eole_4_64_ports(banks: usize, ports: usize) -> Self {
        let mut c = Self::eole_4_64();
        c.name = format!("EOLE_4_64_{ports}ports_{banks}banks");
        c.prf_banks = banks;
        c.eole.levt_read_ports_per_bank = Some(ports);
        c
    }

    /// `OLE_4_64`: Late Execution only (§6.5, Fig. 13).
    pub fn ole_4_64_ports(banks: usize, ports: usize) -> Self {
        let mut c = Self::eole_4_64_ports(banks, ports);
        c.name = format!("OLE_4_64_{ports}ports_{banks}banks");
        c.eole.early = false;
        c
    }

    /// `EOE_4_64`: Early Execution only (§6.5, Fig. 13).
    pub fn eoe_4_64_ports(banks: usize, ports: usize) -> Self {
        let mut c = Self::eole_4_64_ports(banks, ports);
        c.name = format!("EOE_4_64_{ports}ports_{banks}banks");
        c.eole.late = false;
        c
    }

    /// `Baseline_DVTAGE_6_64`: the 6-issue VP baseline with the BeBoP
    /// D-VTAGE front (4-µ-op blocks, 4 banks, 64-deep speculative
    /// window) instead of the idealized per-instruction hybrid.
    pub fn baseline_dvtage_6_64() -> Self {
        let mut c = Self::base("Baseline_DVTAGE_6_64", 6, 64);
        c.vp = Some(VpConfig::dvtage());
        c
    }

    /// `EOLE_DVTAGE_4_64`: the headline 4-issue EOLE pipeline on the
    /// BeBoP D-VTAGE front — the paper's cost argument end to end.
    pub fn eole_dvtage_4_64() -> Self {
        let mut c = Self::base("EOLE_DVTAGE_4_64", 4, 64);
        c.vp = Some(VpConfig::dvtage());
        c.eole = EoleConfig::full();
        c
    }

    /// Every named preset of the paper's evaluation, in paper order,
    /// plus the D-VTAGE/BeBoP pair — the population the golden
    /// cycle-exactness fingerprints cover.
    pub fn all_presets() -> Vec<CoreConfig> {
        vec![
            CoreConfig::baseline_6_64(),
            CoreConfig::baseline_vp_6_64(),
            CoreConfig::baseline_vp_4_64(),
            CoreConfig::baseline_vp_6_48(),
            CoreConfig::eole_6_64(),
            CoreConfig::eole_4_64(),
            CoreConfig::eole_6_48(),
            CoreConfig::eole_4_64_banked(4),
            CoreConfig::eole_4_64_ports(4, 4),
            CoreConfig::ole_4_64_ports(4, 4),
            CoreConfig::eoe_4_64_ports(4, 4),
            CoreConfig::baseline_dvtage_6_64(),
            CoreConfig::eole_dvtage_4_64(),
        ]
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a typed [`ConfigError`] — every
    /// shape that would previously panic deeper in the stack (PRF
    /// banking, VP block geometry) reports here instead.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.fetch_width == 0 || self.rename_width == 0 || self.commit_width == 0 {
            return Err(ConfigError::ZeroSize("fetch/rename/commit width"));
        }
        if self.issue_width == 0 || self.iq_entries == 0 || self.rob_entries == 0 {
            return Err(ConfigError::ZeroSize("issue width / IQ / ROB"));
        }
        if !self.prf_banks.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { field: "prf_banks", got: self.prf_banks });
        }
        if !self.int_prf.is_multiple_of(self.prf_banks) {
            return Err(ConfigError::PrfNotBankDivisible {
                regs: self.int_prf,
                banks: self.prf_banks,
            });
        }
        if !self.fp_prf.is_multiple_of(self.prf_banks) {
            return Err(ConfigError::PrfNotBankDivisible {
                regs: self.fp_prf,
                banks: self.prf_banks,
            });
        }
        if (self.eole.early || self.eole.late) && self.vp.is_none() {
            return Err(ConfigError::EoleWithoutVp);
        }
        if !(1..=2).contains(&self.eole.ee_stages) {
            return Err(ConfigError::BadEeStages(self.eole.ee_stages));
        }
        if self.int_prf < 64 || self.fp_prf < 64 {
            return Err(ConfigError::PrfTooSmall { int_prf: self.int_prf, fp_prf: self.fp_prf });
        }
        if let Some(vp) = &self.vp {
            if !vp.block_size.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo {
                    field: "vp.block_size",
                    got: vp.block_size,
                });
            }
            if !vp.banks.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo { field: "vp.banks", got: vp.banks });
            }
            if vp.spec_window == Some(0) {
                return Err(ConfigError::EmptySpecWindow);
            }
        }
        Ok(())
    }

    /// The extra pre-commit pipeline depth: 1 LE/VT stage when VP is on
    /// (§4.1: "an additional pipeline cycle"), 0 otherwise — unless the
    /// ablation override pins it.
    pub fn levt_depth(&self) -> u64 {
        if let Some(depth) = self.levt_depth_override {
            return depth;
        }
        if self.vp.is_some() {
            1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for c in CoreConfig::all_presets() {
            c.validate().unwrap_or_else(|e| panic!("{} invalid: {e}", c.name));
        }
    }

    #[test]
    fn eole_without_vp_is_rejected() {
        let mut c = CoreConfig::baseline_6_64();
        c.eole = EoleConfig::full();
        assert_eq!(c.validate(), Err(ConfigError::EoleWithoutVp));
    }

    #[test]
    fn banking_must_divide_prf() {
        let mut c = CoreConfig::eole_4_64();
        c.prf_banks = 3;
        assert_eq!(
            c.validate(),
            Err(ConfigError::NotPowerOfTwo { field: "prf_banks", got: 3 })
        );
        c.prf_banks = 8;
        c.int_prf = 252; // not divisible by 8
        assert_eq!(
            c.validate(),
            Err(ConfigError::PrfNotBankDivisible { regs: 252, banks: 8 })
        );
    }

    #[test]
    fn vp_block_geometry_is_validated_as_typed_errors() {
        let bad_block = CoreConfig::baseline_dvtage_6_64().to_builder().vp_block(3, 4).build();
        assert_eq!(
            bad_block.unwrap_err(),
            ConfigError::NotPowerOfTwo { field: "vp.block_size", got: 3 }
        );
        let bad_banks = CoreConfig::baseline_dvtage_6_64().to_builder().vp_block(4, 6).build();
        assert_eq!(
            bad_banks.unwrap_err(),
            ConfigError::NotPowerOfTwo { field: "vp.banks", got: 6 }
        );
        let empty = CoreConfig::baseline_dvtage_6_64()
            .to_builder()
            .vp_spec_window(Some(0))
            .build();
        assert_eq!(empty.unwrap_err(), ConfigError::EmptySpecWindow);
        // Display is human-readable (reaches RunError rendering).
        assert!(ConfigError::EmptySpecWindow.to_string().contains("spec_window"));
    }

    #[test]
    fn dvtage_presets_use_the_bebop_front() {
        let c = CoreConfig::baseline_dvtage_6_64();
        let vp = c.vp.as_ref().unwrap();
        assert_eq!(vp.kind, ValuePredictorKind::DVtage);
        assert_eq!((vp.block_size, vp.banks, vp.spec_window), (4, 4, Some(64)));
        let e = CoreConfig::eole_dvtage_4_64();
        assert!(e.eole.early && e.eole.late);
        assert_eq!(e.issue_width, 4);
        // The paper presets keep the behavior-neutral shape.
        let p = CoreConfig::baseline_vp_6_64();
        let vp = p.vp.as_ref().unwrap();
        assert_eq!((vp.block_size, vp.banks, vp.spec_window), (1, 1, None));
    }

    #[test]
    fn builder_shapes_the_block_front() {
        let c = CoreConfig::builder()
            .vp(VpConfig::paper())
            .vp_block(8, 2)
            .vp_spec_window(Some(32))
            .build()
            .unwrap();
        let vp = c.vp.unwrap();
        assert_eq!((vp.block_size, vp.banks, vp.spec_window), (8, 2, Some(32)));
    }

    #[test]
    fn preset_names_match_the_paper() {
        assert_eq!(CoreConfig::eole_4_64_ports(4, 4).name, "EOLE_4_64_4ports_4banks");
        assert_eq!(CoreConfig::ole_4_64_ports(4, 4).name, "OLE_4_64_4ports_4banks");
    }

    #[test]
    fn levt_depth_follows_vp() {
        assert_eq!(CoreConfig::baseline_6_64().levt_depth(), 0);
        assert_eq!(CoreConfig::baseline_vp_6_64().levt_depth(), 1);
        assert_eq!(CoreConfig::eole_4_64().levt_depth(), 1);
    }

    #[test]
    fn builder_constructs_named_variants() {
        let c = CoreConfig::builder()
            .name("VP_6_48")
            .issue_width(6)
            .iq(48)
            .vp(VpConfig::paper())
            .build()
            .unwrap();
        assert_eq!(c.name, "VP_6_48");
        assert_eq!((c.issue_width, c.iq_entries), (6, 48));
        assert!(c.vp.is_some());
        assert!(!c.eole.early && !c.eole.late);
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert!(CoreConfig::builder().issue_width(0).build().is_err());
        assert!(CoreConfig::builder().prf_banks(3).build().is_err());
        // EOLE without VP is inconsistent (validation happens at commit).
        assert!(CoreConfig::builder().eole_full().build().is_err());
        assert!(CoreConfig::builder().eole_full().vp(VpConfig::paper()).build().is_ok());
    }

    #[test]
    fn to_builder_round_trips_presets() {
        let derived = CoreConfig::eole_6_64()
            .to_builder()
            .name("EOLE_6_64_2ee")
            .ee_stages(2)
            .build()
            .unwrap();
        assert_eq!(derived.eole.ee_stages, 2);
        assert!(derived.eole.early && derived.eole.late);
        assert_eq!(derived.issue_width, CoreConfig::eole_6_64().issue_width);
    }

    #[test]
    fn issue_width_presets() {
        assert_eq!(CoreConfig::eole_4_64().issue_width, 4);
        assert_eq!(CoreConfig::eole_6_48().iq_entries, 48);
        assert_eq!(CoreConfig::baseline_vp_6_64().iq_entries, 64);
    }
}
