//! Simulation counters and derived metrics.
//!
//! `SimStats` is resettable mid-run so experiments can warm structures for
//! N instructions and then measure M (the paper warms 50M and measures
//! 100M; our synthetic slices scale both down).

use eole_mem::hierarchy::MemStats;

/// All counters collected by the pipeline.
///
/// Plain `Copy` data: snapshotting stats never touches the heap (the
/// throughput harness samples them from the hot loop).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Cycles simulated in the measurement window.
    pub cycles: u64,
    /// µ-ops committed.
    pub committed: u64,
    /// µ-ops fetched (includes refetches after squashes).
    pub fetched: u64,
    /// µ-ops discarded by squashes.
    pub squashed: u64,

    // ---- value prediction ------------------------------------------------
    /// Committed VP-eligible µ-ops.
    pub vp_eligible: u64,
    /// Eligible µ-ops for which the predictor returned a prediction.
    pub vp_predicted: u64,
    /// Predictions actually used (saturated confidence).
    pub vp_used: u64,
    /// Used predictions that were correct.
    pub vp_used_correct: u64,
    /// Used predictions that were wrong (each costs a squash).
    pub vp_used_wrong: u64,
    /// Pipeline squashes caused by value mispredictions.
    pub vp_squashes: u64,
    /// Squash-cost cycles charged to the front end: each VP squash
    /// refetches through the full fetch-to-rename depth.
    pub vp_squash_cycles_frontend: u64,
    /// Squash-cost cycles charged to the pre-commit LE/VT stage depth
    /// (validation discovers the mispredict one stage before commit).
    pub vp_squash_cycles_levt: u64,
    /// Squash-cost cycles charged to the OoO window: age of the oldest
    /// discarded in-flight µ-op at squash time (work thrown away).
    pub vp_squash_cycles_window: u64,
    /// Committed predictions by FPC confidence level at fetch time
    /// (index = level 0–7; only level 7 — saturated — is *used*).
    pub vp_pred_by_level: [u64; 8],
    /// Of those, predictions whose value matched the architectural
    /// result (correctness is tracked for every level, so the
    /// quality-per-confidence-bit curve is observable, not just the
    /// saturated point).
    pub vp_correct_by_level: [u64; 8],
    /// Predictor reads at fetch: one per (cycle, fetch block) — the
    /// BeBoP access count (block size 1 degenerates to one read per
    /// queried µ-op).
    pub vp_block_reads: u64,
    /// Fetch-time queries refused because the speculative window was
    /// full (the µ-op traveled unpredicted).
    pub vp_window_rejects: u64,

    // ---- EOLE ------------------------------------------------------------
    /// Committed µ-ops executed in the Early Execution block.
    pub early_executed: u64,
    /// Committed predicted single-cycle ALU µ-ops executed late (LE).
    pub late_executed_alu: u64,
    /// Committed very-high-confidence branches resolved late.
    pub late_executed_branches: u64,
    /// Commit-group cuts caused by the LE/VT read-port budget (Fig. 11).
    pub levt_port_stalls: u64,
    /// Dispatch-group cuts caused by the EE/prediction write budget (§6.3).
    pub ee_write_stalls: u64,

    // ---- branches ----------------------------------------------------------
    /// Committed conditional branches.
    pub cond_branches: u64,
    /// Mispredicted conditional branches (resolved in the OoO engine).
    pub branch_mispredicts: u64,
    /// Conditional branches fetched with very-high confidence.
    pub hc_branches: u64,
    /// Very-high-confidence branches that were mispredicted (resolved in
    /// LE/VT when EOLE is on — the expensive-but-rare case).
    pub hc_branch_mispredicts: u64,
    /// Mispredicted indirect jumps / returns.
    pub indirect_mispredicts: u64,
    /// Taken control µ-ops that missed the BTB (decode-redirect bubble).
    pub btb_miss_bubbles: u64,

    // ---- memory ------------------------------------------------------------
    /// Memory-order violations (store-set training events + squashes).
    pub memory_order_squashes: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub sq_forwards: u64,

    // ---- stalls --------------------------------------------------------------
    /// Dispatch-group cuts: ROB full.
    pub stall_rob_full: u64,
    /// Dispatch-group cuts: IQ full.
    pub stall_iq_full: u64,
    /// Dispatch-group cuts: LQ/SQ full.
    pub stall_lsq_full: u64,
    /// Dispatch-group cuts: current PRF bank out of free registers.
    pub stall_prf: u64,

    /// Memory-hierarchy counters at snapshot time.
    pub mem: MemStats,
}

impl SimStats {
    /// Instructions (µ-ops) per cycle over the measurement window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed µ-ops that were early-executed (Fig. 2).
    pub fn early_exec_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.early_executed as f64 / self.committed as f64
        }
    }

    /// Fraction of committed µ-ops late-executed as predicted ALU µ-ops
    /// (Fig. 4, "Value-predicted" series; disjoint from early execution).
    pub fn late_alu_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.late_executed_alu as f64 / self.committed as f64
        }
    }

    /// Fraction of committed µ-ops that were high-confidence branches
    /// resolved late (Fig. 4, "High-Confidence Branches" series).
    pub fn late_branch_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.late_executed_branches as f64 / self.committed as f64
        }
    }

    /// Total fraction of committed µ-ops bypassing the OoO engine (§3.4's
    /// "10% to 60%").
    pub fn offload_fraction(&self) -> f64 {
        self.early_exec_fraction() + self.late_alu_fraction() + self.late_branch_fraction()
    }

    /// Total cycles attributed to value-misprediction squashes, summed
    /// over the per-stage-depth split (front end + LE/VT + window).
    pub fn vp_squash_cycles(&self) -> u64 {
        self.vp_squash_cycles_frontend + self.vp_squash_cycles_levt + self.vp_squash_cycles_window
    }

    /// Fraction of measured cycles lost to value-misprediction squashes
    /// (the probe for the h264 baseline-beats-EOLE anomaly).
    pub fn vp_squash_cost_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.vp_squash_cycles() as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed predictions sitting at saturated (usable)
    /// confidence — how much of the predictor's work the FPC gate lets
    /// through.
    pub fn vp_saturated_share(&self) -> f64 {
        if self.vp_predicted == 0 {
            0.0
        } else {
            self.vp_pred_by_level[7] as f64 / self.vp_predicted as f64
        }
    }

    /// Correctness of committed predictions *below* saturation — the
    /// accuracy the FPC gate is holding back (high values here mean the
    /// confidence ramp is the coverage bottleneck, not the tables).
    pub fn vp_subsaturated_accuracy(&self) -> f64 {
        let pred: u64 = self.vp_pred_by_level[..7].iter().sum();
        let correct: u64 = self.vp_correct_by_level[..7].iter().sum();
        if pred == 0 {
            1.0
        } else {
            correct as f64 / pred as f64
        }
    }

    /// Predictor reads per committed µ-op (the BeBoP access-cost metric:
    /// block size B cuts this toward 1/B of the per-instruction rate).
    pub fn vp_reads_per_committed(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.vp_block_reads as f64 / self.committed as f64
        }
    }

    /// Coverage of value prediction: used predictions / eligible µ-ops.
    pub fn vp_coverage(&self) -> f64 {
        if self.vp_eligible == 0 {
            0.0
        } else {
            self.vp_used as f64 / self.vp_eligible as f64
        }
    }

    /// Accuracy of used predictions.
    pub fn vp_accuracy(&self) -> f64 {
        if self.vp_used == 0 {
            1.0
        } else {
            self.vp_used_correct as f64 / self.vp_used as f64
        }
    }

    /// Conditional-branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            (self.branch_mispredicts + self.hc_branch_mispredicts) as f64 * 1000.0
                / self.committed as f64
        }
    }

    /// Misprediction rate of the very-high-confidence branch class (the
    /// paper relies on this being < 0.5%).
    pub fn hc_branch_misrate(&self) -> f64 {
        if self.hc_branches == 0 {
            0.0
        } else {
            self.hc_branch_mispredicts as f64 / self.hc_branches as f64
        }
    }

    /// Zeroes every counter (start of a measurement window).
    pub fn reset(&mut self) {
        *self = SimStats::default();
    }

    /// Accumulates another window's counters into this one — the stitch
    /// operation of interval-parallel simulation. Every counter is a sum
    /// (cycles included: the stitched cycle count is the serial sum of
    /// the per-interval measurement windows); derived metrics computed on
    /// the stitched struct are therefore suite-level ratios, exactly as
    /// they would be for one long window.
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.committed += other.committed;
        self.fetched += other.fetched;
        self.squashed += other.squashed;
        self.vp_eligible += other.vp_eligible;
        self.vp_predicted += other.vp_predicted;
        self.vp_used += other.vp_used;
        self.vp_used_correct += other.vp_used_correct;
        self.vp_used_wrong += other.vp_used_wrong;
        self.vp_squashes += other.vp_squashes;
        self.vp_squash_cycles_frontend += other.vp_squash_cycles_frontend;
        self.vp_squash_cycles_levt += other.vp_squash_cycles_levt;
        self.vp_squash_cycles_window += other.vp_squash_cycles_window;
        for (a, b) in self.vp_pred_by_level.iter_mut().zip(&other.vp_pred_by_level) {
            *a += b;
        }
        for (a, b) in self.vp_correct_by_level.iter_mut().zip(&other.vp_correct_by_level) {
            *a += b;
        }
        self.vp_block_reads += other.vp_block_reads;
        self.vp_window_rejects += other.vp_window_rejects;
        self.early_executed += other.early_executed;
        self.late_executed_alu += other.late_executed_alu;
        self.late_executed_branches += other.late_executed_branches;
        self.levt_port_stalls += other.levt_port_stalls;
        self.ee_write_stalls += other.ee_write_stalls;
        self.cond_branches += other.cond_branches;
        self.branch_mispredicts += other.branch_mispredicts;
        self.hc_branches += other.hc_branches;
        self.hc_branch_mispredicts += other.hc_branch_mispredicts;
        self.indirect_mispredicts += other.indirect_mispredicts;
        self.btb_miss_bubbles += other.btb_miss_bubbles;
        self.memory_order_squashes += other.memory_order_squashes;
        self.sq_forwards += other.sq_forwards;
        self.stall_rob_full += other.stall_rob_full;
        self.stall_iq_full += other.stall_iq_full;
        self.stall_lsq_full += other.stall_lsq_full;
        self.stall_prf += other.stall_prf;
        self.mem.merge(&other.mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 1000,
            committed: 1500,
            vp_eligible: 1000,
            vp_used: 400,
            vp_used_correct: 399,
            early_executed: 150,
            late_executed_alu: 150,
            late_executed_branches: 75,
            cond_branches: 100,
            branch_mispredicts: 3,
            hc_branches: 60,
            hc_branch_mispredicts: 0,
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.vp_coverage() - 0.4).abs() < 1e-12);
        assert!((s.vp_accuracy() - 0.9975).abs() < 1e-12);
        assert!((s.offload_fraction() - 0.25).abs() < 1e-12);
        assert!((s.branch_mpki() - 2.0).abs() < 1e-12);
        assert_eq!(s.hc_branch_misrate(), 0.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.vp_accuracy(), 1.0);
        assert_eq!(s.offload_fraction(), 0.0);
    }

    #[test]
    fn squash_cost_splits_sum() {
        let s = SimStats {
            cycles: 1000,
            vp_squashes: 2,
            vp_squash_cycles_frontend: 30,
            vp_squash_cycles_levt: 2,
            vp_squash_cycles_window: 18,
            ..Default::default()
        };
        assert_eq!(s.vp_squash_cycles(), 50);
        assert!((s.vp_squash_cost_fraction() - 0.05).abs() < 1e-12);
        assert_eq!(SimStats::default().vp_squash_cost_fraction(), 0.0);
    }

    #[test]
    fn confidence_level_metrics() {
        let mut s = SimStats { committed: 1000, vp_predicted: 100, ..Default::default() };
        s.vp_pred_by_level[7] = 40;
        s.vp_pred_by_level[3] = 60;
        s.vp_correct_by_level[7] = 40;
        s.vp_correct_by_level[3] = 45;
        s.vp_block_reads = 250;
        assert!((s.vp_saturated_share() - 0.4).abs() < 1e-12);
        assert!((s.vp_subsaturated_accuracy() - 0.75).abs() < 1e-12);
        assert!((s.vp_reads_per_committed() - 0.25).abs() < 1e-12);
        assert_eq!(SimStats::default().vp_saturated_share(), 0.0);
        assert_eq!(SimStats::default().vp_subsaturated_accuracy(), 1.0);
        assert_eq!(SimStats::default().vp_reads_per_committed(), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = SimStats { cycles: 5, committed: 7, ..Default::default() };
        s.reset();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.committed, 0);
    }
}
