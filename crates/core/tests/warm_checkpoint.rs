//! Warm-state checkpoint contract: restoring a [`WarmState`] into a fresh
//! simulator is bit-identical to functionally replaying the same prefix
//! from zero, under arbitrary kernels, configurations, and checkpoint
//! positions — including *chained* capture/restore mid-sweep, which is
//! exactly what the checkpointed interval runner does.

use eole_core::config::CoreConfig;
use eole_core::pipeline::{PreparedTrace, Simulator, WarmState};
use eole_isa::{generate_trace, IntReg, ProgramBuilder};
use proptest::prelude::*;

/// A small mixed kernel: a strided load/store loop with a data-dependent
/// branch, a call/return pair, and a multiply — enough to exercise TAGE,
/// the BTB/RAS, the value predictor, and the cache hierarchy.
fn kernel_trace(iters: i64, stride: i64, flip: i64, len: usize) -> PreparedTrace {
    let mut b = ProgramBuilder::new();
    let (i, n, base, acc, tmp) = (
        IntReg::new(1),
        IntReg::new(2),
        IntReg::new(3),
        IntReg::new(4),
        IntReg::new(5),
    );
    let buf = b.alloc_zeroed(1 << 16);
    b.movi(i, 0);
    b.movi(n, iters);
    b.movi(base, buf as i64);
    b.movi(acc, 0);
    let helper = b.label();
    let top = b.label();
    let skip = b.label();
    b.jmp(top);
    b.bind(helper);
    b.addi(acc, acc, 3);
    b.ret();
    b.bind(top);
    b.ld_idx(tmp, base, i, 1, 0);
    b.add(acc, acc, tmp);
    b.st(base, 0, acc);
    b.mul(tmp, acc, n);
    b.andi(tmp, tmp, flip);
    b.beq_imm(tmp, 0, skip);
    b.call(helper);
    b.bind(skip);
    b.addi(i, i, stride);
    b.blt(i, n, top);
    b.halt();
    let program = b.build().expect("kernel assembles");
    PreparedTrace::new(generate_trace(&program, len as u64).expect("kernel traces"))
}

fn configs() -> Vec<CoreConfig> {
    vec![
        CoreConfig::eole_4_64(),
        CoreConfig::baseline_vp_6_64(),
        CoreConfig::baseline_6_64(), // no VP: exercises the absent-side path
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any prefix `[0, warm_to)`:
    ///
    /// 1. capture-at-`warm_to` equals restore(capture)-then-recapture
    ///    (the codec round-trips),
    /// 2. a *chained* sweep — warm to `mid`, checkpoint, restore into a
    ///    fresh simulator, continue warming to `warm_to` — captures the
    ///    same bytes as the one-shot replay (the producer-sweep contract),
    /// 3. the restored simulator's subsequent detailed run is
    ///    cycle-identical to the replayed one.
    #[test]
    fn checkpoint_restore_equals_prefix_replay(
        iters in 40i64..400,
        stride in 1i64..4,
        flip in prop::sample::select(vec![1i64, 3, 7]),
        len in 400usize..3_000,
        cfg_idx in 0usize..3,
        warm_num in 1u32..100,
        mid_num in 0u32..100,
    ) {
        let trace = kernel_trace(iters, stride, flip, len);
        let config = configs().swap_remove(cfg_idx);
        let warm_to = trace.len() * warm_num as usize / 100;
        let mid = warm_to * mid_num as usize / 100;

        // One-shot replay from zero.
        let mut reference = Simulator::new(&trace, config.clone()).expect("config valid");
        reference.functional_warm(warm_to);
        let golden = reference.capture_warm();
        prop_assert_eq!(golden.position().expect("cursor"), warm_to as u64);

        // (1) Round-trip through bytes into a fresh simulator.
        let decoded = WarmState::from_bytes(golden.as_bytes().to_vec()).expect("marker");
        let mut restored = Simulator::new(&trace, config.clone()).expect("config valid");
        restored.restore_warm(&decoded).expect("restore succeeds");
        prop_assert_eq!(restored.capture_warm().as_bytes(), golden.as_bytes());
        prop_assert_eq!(restored.cursor(), warm_to);

        // (2) Chained sweep: checkpoint at `mid`, restore, continue.
        let mut producer = Simulator::new(&trace, config.clone()).expect("config valid");
        producer.functional_warm(mid);
        let midpoint = producer.capture_warm();
        let mut chained = Simulator::new(&trace, config.clone()).expect("config valid");
        chained.restore_warm(&midpoint).expect("restore succeeds");
        chained.functional_warm(warm_to);
        prop_assert_eq!(chained.capture_warm().as_bytes(), golden.as_bytes());

        // (3) Detailed windows from the restored and replayed state agree.
        let window = 1_500u64;
        reference.begin_measurement();
        restored.begin_measurement();
        reference.run_exact(window).expect("no deadlock");
        restored.run_exact(window).expect("no deadlock");
        let (a, b) = (reference.stats(), restored.stats());
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.committed, b.committed);
        prop_assert_eq!(a.squashed, b.squashed);
        prop_assert_eq!(reference.cycle(), restored.cycle());
    }
}

#[test]
fn corrupt_payload_is_rejected_not_misdecoded() {
    let trace = kernel_trace(100, 1, 3, 1_200);
    let mut sim = Simulator::new(&trace, CoreConfig::eole_4_64()).expect("config valid");
    sim.functional_warm(600);
    let warm = sim.capture_warm();

    // Truncations never decode.
    for cut in [0, 1, warm.len() / 2, warm.len() - 1] {
        let bytes = warm.as_bytes()[..cut].to_vec();
        match WarmState::from_bytes(bytes) {
            Err(_) => {}
            Ok(w) => {
                let mut target =
                    Simulator::new(&trace, CoreConfig::eole_4_64()).expect("config valid");
                assert!(target.restore_warm(&w).is_err(), "truncated at {cut} must fail");
            }
        }
    }

    // A checkpoint for one configuration must not restore into another
    // shape (different predictor kind / table sizes).
    let mut other = Simulator::new(&trace, CoreConfig::baseline_6_64()).expect("config valid");
    assert!(other.restore_warm(&warm).is_err(), "vp presence mismatch must fail");
}

#[test]
fn capture_at_zero_is_the_construction_state() {
    let trace = kernel_trace(60, 1, 1, 600);
    let sim = Simulator::new(&trace, CoreConfig::eole_4_64()).expect("config valid");
    let warm = sim.capture_warm();
    assert_eq!(warm.position().expect("cursor"), 0);
    let mut fresh = Simulator::new(&trace, CoreConfig::eole_4_64()).expect("config valid");
    fresh.restore_warm(&warm).expect("restore succeeds");
    assert_eq!(fresh.capture_warm().as_bytes(), warm.as_bytes());
}
