//! Fixture hot module.

pub fn bad_alloc() -> Vec<u32> {
    vec![1, 2, 3]
}

pub fn bad_fault_hook() -> bool {
    faults::fire("pipeline.window").is_some()
}

// lint:allow(hot-alloc) fixture: sanctioned cold construction
pub fn allowed_alloc() -> Vec<u32> {
    vec![4, 5, 6]
}
