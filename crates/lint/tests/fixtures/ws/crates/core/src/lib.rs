#![forbid(unsafe_code)]

pub mod canon;
pub mod config;
