//! Fixture canonical serializer: writes `covered`, forgets `missing`.

pub const MARKER: &str = "eole-core-config/v1";

pub fn canonical_bytes(cfg: &crate::config::DemoConfig) -> [u8; 4] {
    let mut out = [0u8; 4];
    out.copy_from_slice(&cfg.covered.to_le_bytes());
    out
}
