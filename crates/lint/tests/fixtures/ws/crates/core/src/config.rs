//! Fixture: `missing` is deliberately absent from canon.rs.

pub struct DemoConfig {
    pub covered: u32,
    pub missing: u32,
}
