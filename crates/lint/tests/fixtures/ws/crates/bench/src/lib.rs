#![forbid(unsafe_code)]

pub fn bad_unwrap() -> u32 {
    Some(1).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_test_is_fine() {
        assert_eq!(Some(2).unwrap(), 2);
    }
}
