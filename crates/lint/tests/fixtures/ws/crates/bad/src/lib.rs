//! Fixture crate: misses the forbid attribute and abuses locks.

use std::sync::Mutex;

pub fn bad_lock(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned mutex")
}

pub fn scary() -> i32 {
    unsafe { std::mem::transmute::<u32, i32>(1) }
}

// lint:allow(hot-alloc)
pub fn missing_reason() {}
