//! Integration tests for `eole-lint`: every rule pinned to exact
//! `file:line` findings against a committed deliberately-bad fixture
//! workspace, the baseline ratchet's three regimes (at / over / under the
//! ceiling), mutation tests against copies of the *real* tree (delete a
//! digest write, inject a hot-loop `vec!`), and the check that the
//! workspace itself is clean at HEAD.

use std::path::{Path, PathBuf};

use eole_lint::baseline::Baseline;
use eole_lint::{check, Finding, Options, Outcome, Workspace};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// A scratch directory, wiped at construction (best-effort at drop).
struct TempWs {
    dir: PathBuf,
}

impl TempWs {
    fn new(name: &str) -> TempWs {
        let dir = std::env::temp_dir()
            .join(format!("eole-lint-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp ws");
        TempWs { dir }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdirs");
        std::fs::write(path, content).expect("write fixture file");
    }

    fn check(&self) -> Outcome {
        check_with_baseline(&self.dir, &self.dir.join("no-baseline.json"))
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn check_with_baseline(root: &Path, baseline: &Path) -> Outcome {
    check(&Options { root: root.to_path_buf(), baseline_path: baseline.to_path_buf() })
        .expect("check runs")
}

fn locations(findings: &[(Finding, u64)]) -> Vec<(String, String, u32)> {
    findings
        .iter()
        .map(|(f, _)| (f.rule.to_string(), f.path.clone(), f.line))
        .collect()
}

#[test]
fn fixture_rules_fire_at_exact_lines() {
    let tmp = TempWs::new("fixture-copy");
    let outcome = check_with_baseline(&fixture_root(), &tmp.dir.join("absent.json"));

    let got = locations(&outcome.violations);
    let expect = |rule: &str, path: &str, line: u32| {
        assert!(
            got.contains(&(rule.to_string(), path.to_string(), line)),
            "missing {rule} at {path}:{line}; got {got:?}"
        );
    };
    expect("forbid-unsafe", "crates/bad/src/lib.rs", 1); // missing attribute
    expect("lock-hygiene", "crates/bad/src/lib.rs", 6); // .lock() outside lock_clean
    expect("forbid-unsafe", "crates/bad/src/lib.rs", 10); // unsafe token
    expect("error-typing", "crates/bench/src/lib.rs", 4); // .unwrap() in library code
    expect("digest-coverage", "crates/core/src/config.rs", 5); // `missing` never canonicalized
    expect("hot-alloc", "crates/core/src/pipeline/ooo.rs", 4); // vec! in a hot module
    expect("cold-path-faults", "crates/core/src/pipeline/ooo.rs", 8); // faults:: in a hot module

    // Exactly two findings on bad/lib.rs:6 (the lock AND the
    // crash-on-poison expect), and nothing unexpected anywhere else.
    let on_line_6 = got
        .iter()
        .filter(|(r, p, l)| r == "lock-hygiene" && p == "crates/bad/src/lib.rs" && *l == 6)
        .count();
    assert_eq!(on_line_6, 2, "lock + expect(\"poison\") both fire: {got:?}");
    assert_eq!(outcome.violations.len(), 8, "no extra findings: {got:?}");

    // The reasoned allow suppressed the third vec!; the reasonless allow
    // in bad/lib.rs is a grammar error instead of a suppression.
    assert_eq!(outcome.allow_suppressed, 1);
    assert_eq!(outcome.grammar.len(), 1);
    assert_eq!(outcome.grammar[0].path, "crates/bad/src/lib.rs");
    assert_eq!(outcome.grammar[0].line, 13);
    assert!(!outcome.clean());
}

#[test]
fn test_code_is_out_of_scope() {
    let tmp = TempWs::new("fixture-test-scope");
    let outcome = check_with_baseline(&fixture_root(), &tmp.dir.join("absent.json"));
    // bench fixture line 11 is an unwrap inside #[cfg(test)].
    assert!(
        !locations(&outcome.violations)
            .iter()
            .any(|(_, p, l)| p == "crates/bench/src/lib.rs" && *l == 11),
        "test-module unwrap must not be flagged"
    );
}

#[test]
fn baseline_at_ceiling_is_clean_over_fails_under_is_stale() {
    let tmp = TempWs::new("ratchet");
    let strict = check_with_baseline(&fixture_root(), &tmp.dir.join("absent.json"));
    assert!(!strict.clean());

    // Regime 1: baseline at exactly the current counts, minus the
    // grammar error (grammar is never baselined) → everything except the
    // grammar error is absorbed.
    let findings: Vec<Finding> =
        strict.violations.iter().map(|(f, _)| f.clone()).collect();
    let at_ceiling = Baseline::from_findings(&findings);
    let base_path = tmp.dir.join("baseline.json");
    at_ceiling.save(&base_path).expect("save baseline");
    let absorbed = check_with_baseline(&fixture_root(), &base_path);
    assert!(absorbed.violations.is_empty(), "all debt absorbed");
    assert_eq!(absorbed.baselined, findings.len());
    assert_eq!(absorbed.grammar.len(), 1, "grammar errors are never baselined");
    assert!(!absorbed.clean(), "the malformed allow still fails the run");

    // Regime 2: a count above the recorded ceiling → those findings are
    // violations again.
    let mut under = at_ceiling.clone();
    if let Some(n) = under
        .counts
        .get_mut("error-typing")
        .and_then(|m| m.get_mut("crates/bench/src/lib.rs"))
    {
        *n = 0;
    }
    under.save(&base_path).expect("save baseline");
    let over = check_with_baseline(&fixture_root(), &base_path);
    assert!(
        locations(&over.violations).contains(&(
            "error-typing".to_string(),
            "crates/bench/src/lib.rs".to_string(),
            4
        )),
        "raising the count above the ceiling fails"
    );

    // Regime 3: a ceiling above the current count → the entry is stale
    // and the run fails until the baseline is regenerated.
    let mut loose = at_ceiling.clone();
    if let Some(n) = loose
        .counts
        .get_mut("error-typing")
        .and_then(|m| m.get_mut("crates/bench/src/lib.rs"))
    {
        *n += 5;
    }
    loose.save(&base_path).expect("save baseline");
    let stale = check_with_baseline(&fixture_root(), &base_path);
    assert!(stale.violations.is_empty());
    assert_eq!(stale.stale.len(), 1);
    assert_eq!(stale.stale[0].rule, "error-typing");
    assert_eq!(stale.stale[0].file, "crates/bench/src/lib.rs");
    assert_eq!(stale.stale[0].recorded, 6);
    assert_eq!(stale.stale[0].current, 1);
    assert!(!stale.clean());
}

#[test]
fn baseline_entry_for_vanished_findings_is_stale() {
    let tmp = TempWs::new("stale-vanished");
    tmp.write("crates/ok/Cargo.toml", "[package]\nname = \"ok\"\n");
    tmp.write("crates/ok/src/lib.rs", "#![forbid(unsafe_code)]\n");
    let mut base = Baseline::default();
    base.counts
        .entry("hot-alloc".to_string())
        .or_default()
        .insert("crates/ok/src/gone.rs".to_string(), 3);
    let base_path = tmp.dir.join("baseline.json");
    base.save(&base_path).expect("save baseline");
    let outcome = check_with_baseline(&tmp.dir, &base_path);
    assert_eq!(outcome.stale.len(), 1);
    assert_eq!(outcome.stale[0].current, 0);
    assert!(!outcome.clean());
}

/// Mutation test, acceptance-pinned: deleting one field write from the
/// real `canonical_bytes` must fail with the exact `config.rs` line of
/// the now-uncovered field.
#[test]
fn deleting_a_canon_field_write_fails_digest_coverage() {
    let repo = repo_root();
    let config_text = std::fs::read_to_string(repo.join("crates/core/src/config.rs"))
        .expect("read real config.rs");
    let canon_text = std::fs::read_to_string(repo.join("crates/core/src/canon.rs"))
        .expect("read real canon.rs");

    let doomed = "        c.put_u64(self.lq_entries as u64);\n";
    assert!(canon_text.contains(doomed), "the lq_entries write exists at HEAD");
    let mutated = canon_text.replacen(doomed, "", 1);

    let tmp = TempWs::new("canon-mutation");
    tmp.write("crates/core/Cargo.toml", "[package]\nname = \"core\"\n");
    tmp.write("crates/core/src/config.rs", &config_text);
    tmp.write("crates/core/src/canon.rs", &mutated);

    let outcome = tmp.check();
    let field_line = 1 + config_text
        .lines()
        .position(|l| l.trim_start().starts_with("pub lq_entries:"))
        .expect("lq_entries declared in config.rs") as u32;
    let digest: Vec<_> = outcome
        .violations
        .iter()
        .filter(|(f, _)| f.rule == "digest-coverage")
        .collect();
    assert_eq!(digest.len(), 1, "exactly the deleted field: {digest:?}");
    assert_eq!(digest[0].0.path, "crates/core/src/config.rs");
    assert_eq!(digest[0].0.line, field_line, "finding: {:?}", digest[0]);
    assert!(digest[0].0.message.contains("lq_entries"));
}

/// Mutation test, acceptance-pinned: adding one `vec![]` to the real
/// `pipeline/ooo.rs` must fail `hot-alloc` at the injected line.
#[test]
fn injecting_a_vec_into_ooo_fails_hot_alloc() {
    let repo = repo_root();
    let ooo_text = std::fs::read_to_string(repo.join("crates/core/src/pipeline/ooo.rs"))
        .expect("read real ooo.rs");

    let mutated = format!("{ooo_text}\npub fn injected() -> Vec<u32> {{\n    vec![1]\n}}\n");
    let vec_line = mutated
        .lines()
        .count()
        .checked_sub(1)
        .expect("mutated file is non-empty") as u32; // the `vec![1]` line

    let tmp = TempWs::new("ooo-mutation");
    tmp.write("crates/core/Cargo.toml", "[package]\nname = \"core\"\n");
    tmp.write("crates/core/src/pipeline/ooo.rs", &mutated);

    let outcome = tmp.check();
    let hot: Vec<_> = outcome
        .violations
        .iter()
        .filter(|(f, _)| f.rule == "hot-alloc")
        .collect();
    assert_eq!(hot.len(), 1, "exactly the injected vec!: {hot:?}");
    assert_eq!(hot[0].0.path, "crates/core/src/pipeline/ooo.rs");
    assert_eq!(hot[0].0.line, vec_line);
}

#[test]
fn duplicate_format_marker_is_flagged() {
    let tmp = TempWs::new("marker-twice");
    tmp.write("crates/core/Cargo.toml", "[package]\nname = \"core\"\n");
    tmp.write(
        "crates/core/src/canon.rs",
        "pub const A: &str = \"eole-core-config/v1\";\n\
         pub const B: &str = \"eole-core-config/v2\";\n",
    );
    let outcome = tmp.check();
    let digest: Vec<_> = outcome
        .violations
        .iter()
        .filter(|(f, _)| f.rule == "digest-coverage")
        .collect();
    assert_eq!(digest.len(), 1);
    assert_eq!(digest[0].0.line, 2, "the second marker is the finding");
    assert!(digest[0].0.message.contains("more than once"));
}

#[test]
fn out_of_line_cfg_test_modules_are_dropped() {
    let ws = Workspace::load(&repo_root()).expect("load repo");
    // crates/core/src/pipeline/mod.rs declares `#[cfg(test)] mod tests;`;
    // the walker must drop the sibling tests.rs entirely.
    assert!(
        !ws.files.iter().any(|f| f.rel == "crates/core/src/pipeline/tests.rs"),
        "out-of-line test module must not be scanned"
    );
    assert!(ws.files.iter().any(|f| f.rel == "crates/core/src/pipeline/mod.rs"));
}

/// The acceptance gate: the workspace itself, against its committed
/// baseline, is clean at HEAD.
#[test]
fn workspace_is_clean_at_head() {
    let repo = repo_root();
    let outcome = check_with_baseline(&repo, &repo.join("lint-baseline.json"));
    let rendered: Vec<String> =
        outcome.violations.iter().map(|(f, _)| f.to_string()).collect();
    assert!(outcome.clean(), "eole-lint must be clean at HEAD: {rendered:?} {:?}", outcome.stale);
}
