//! Per-file lexical model: tokens plus the light item-level structure the
//! rules need — `#[cfg(test)]` regions, `fn` spans, and the in-source
//! allow grammar.
//!
//! ## Allow grammar
//!
//! ```text
//! // lint:allow(<rule>) <reason>
//! ```
//!
//! * On a line **with code**: suppresses findings of `<rule>` on that line.
//! * On a line **of its own**: suppresses findings of `<rule>` on the next
//!   code line — and when that line starts an *item* (`fn`, `impl`,
//!   `struct`, …, possibly behind attributes), on the whole item.
//!
//! The reason is mandatory; a missing reason or an unknown rule name is
//! itself a finding (`allow-grammar`) that no baseline can absorb.

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::rules::RULE_NAMES;
use crate::Finding;

/// An allow directive with its computed suppression span.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Rule this directive suppresses.
    pub rule: String,
    /// Mandatory free-form justification.
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Inclusive line range the suppression covers.
    pub span: (u32, u32),
}

/// One lexed source file plus its item-level structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Token stream (comments stripped).
    pub toks: Vec<Tok>,
    /// Allow directives with computed spans.
    pub allows: Vec<Allow>,
    /// Malformed allow directives (reported as `allow-grammar` findings).
    pub grammar_errors: Vec<Finding>,
    /// Inclusive line ranges compiled only under `#[cfg(test)]`/`#[test]`.
    pub test_ranges: Vec<(u32, u32)>,
    /// Module names declared as `#[cfg(test)] mod <name>;` (out-of-line
    /// test files the walker must drop entirely).
    pub test_mod_decls: Vec<String>,
    /// `fn` items: (name, first token index, inclusive line range).
    pub fns: Vec<(String, usize, (u32, u32))>,
}

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn parse(rel: String, text: &str) -> SourceFile {
        let (toks, comments) = lex(text);
        let mut f = SourceFile {
            rel,
            toks,
            allows: Vec::new(),
            grammar_errors: Vec::new(),
            test_ranges: Vec::new(),
            test_mod_decls: Vec::new(),
            fns: Vec::new(),
        };
        f.index_test_items();
        f.index_fns();
        f.index_allows(&comments);
        f
    }

    /// True when `line` is inside test-only code.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// True when a `lint:allow(rule)` span covers `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.span.0..=a.span.1).contains(&line))
    }

    /// Name of the innermost `fn` containing `line`, if any.
    pub fn enclosing_fn(&self, line: u32) -> Option<&str> {
        self.fns
            .iter()
            .filter(|(_, _, (a, b))| (*a..=*b).contains(&line))
            .max_by_key(|(_, start, _)| *start)
            .map(|(name, _, _)| name.as_str())
    }

    /// Index of the first token at a line strictly after `line`.
    fn first_tok_after_line(&self, line: u32) -> Option<usize> {
        self.toks.iter().position(|t| t.line > line)
    }

    /// Inclusive end line of the item starting at token `i` (see
    /// [`item_end_index`]).
    fn item_end_line(&self, i: usize) -> u32 {
        let end = item_end_index(&self.toks, i);
        self.toks.get(end).or_else(|| self.toks.last()).map_or(0, |t| t.line)
    }

    fn index_test_items(&mut self) {
        let toks = &self.toks;
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                let close = matching_bracket(toks, i + 1);
                let inner = &toks[i + 2..close.min(toks.len())];
                let is_test_attr = match inner.first() {
                    Some(t) if t.is_ident("cfg") => inner.iter().any(|t| t.is_ident("test")),
                    Some(t) if t.is_ident("test") => inner.len() == 1,
                    _ => false,
                };
                if is_test_attr {
                    // Skip any further attributes, then take the item.
                    let mut j = close + 1;
                    while j < toks.len()
                        && toks[j].is_punct('#')
                        && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                    {
                        j = matching_bracket(toks, j + 1) + 1;
                    }
                    if j < toks.len() {
                        // `#[cfg(test)] mod name;` → out-of-line test file.
                        if toks[j].is_ident("mod")
                            && toks.get(j + 1).map(|t| t.kind) == Some(TokKind::Ident)
                            && toks.get(j + 2).is_some_and(|t| t.is_punct(';'))
                        {
                            self.test_mod_decls.push(toks[j + 1].text.clone());
                        }
                        let end = self.item_end_line(j);
                        self.test_ranges.push((toks[i].line, end));
                        i = item_end_index(toks, j);
                    }
                }
                i = i.max(close) + 1;
                continue;
            }
            i += 1;
        }
    }

    fn index_fns(&mut self) {
        let toks = &self.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("fn") {
                continue;
            }
            let Some(name_tok) = toks.get(i + 1) else { continue };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            // Find the body: first `{` at bracket depth 0 (or `;` for a
            // bodyless trait/extern declaration).
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut body: Option<usize> = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('{') {
                    body = Some(j);
                    break;
                } else if depth == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = matching_brace(toks, open);
                let end_line = toks.get(close).or_else(|| toks.last()).map_or(0, |t| t.line);
                self.fns
                    .push((name_tok.text.clone(), i, (toks[i].line, end_line)));
            }
        }
    }

    fn index_allows(&mut self, comments: &[Comment]) {
        for c in comments.iter().filter(|c| !c.doc) {
            let text = c.text.trim();
            let Some(rest) = text.strip_prefix("lint:allow(") else {
                // A half-remembered spelling silently doing nothing would
                // be worse than an error.
                if text.starts_with("lint:allow") || text.starts_with("lint: allow") {
                    self.grammar_errors.push(Finding::grammar(
                        &self.rel,
                        c.line,
                        "malformed allow: expected `lint:allow(<rule>) reason`".to_string(),
                    ));
                }
                continue;
            };
            let Some(close) = rest.find(')') else {
                self.grammar_errors.push(Finding::grammar(
                    &self.rel,
                    c.line,
                    "malformed allow: missing `)` after rule name".to_string(),
                ));
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let reason = rest[close + 1..].trim().to_string();
            if !RULE_NAMES.contains(&rule.as_str()) {
                self.grammar_errors.push(Finding::grammar(
                    &self.rel,
                    c.line,
                    format!("unknown rule `{rule}` in lint:allow"),
                ));
                continue;
            }
            if reason.is_empty() {
                self.grammar_errors.push(Finding::grammar(
                    &self.rel,
                    c.line,
                    format!("lint:allow({rule}) requires a reason"),
                ));
                continue;
            }
            let span = if c.own_line {
                match self.first_tok_after_line(c.line) {
                    Some(mut j) => {
                        let start_line = self.toks[j].line;
                        // Attributes belong to the item they decorate.
                        while j < self.toks.len()
                            && self.toks[j].is_punct('#')
                            && self.toks.get(j + 1).is_some_and(|t| t.is_punct('['))
                        {
                            j = matching_bracket(&self.toks, j + 1) + 1;
                        }
                        let is_item = self.toks.get(j).is_some_and(|t| {
                            t.kind == TokKind::Ident
                                && matches!(
                                    t.text.as_str(),
                                    "pub" | "fn" | "impl" | "struct" | "enum" | "mod"
                                        | "trait" | "const" | "static" | "type" | "macro_rules"
                                )
                        });
                        if is_item {
                            (start_line, self.item_end_line(j))
                        } else {
                            (start_line, start_line)
                        }
                    }
                    None => (c.line, c.line),
                }
            } else {
                (c.line, c.line)
            };
            self.allows.push(Allow { rule, reason, line: c.line, span });
        }
    }
}

/// Token index of the end of the item starting at `i`: the matching `}` of
/// the first base-depth `{`, or the first base-depth `;` if no brace opens
/// (declarations like `mod tests;`).
pub fn item_end_index(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return matching_brace(toks, j);
        } else if depth == 0 && t.is_punct(';') {
            return j;
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::parse("x.rs".to_string(), text)
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let f = file("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n");
        assert!(!f.in_test(1));
        assert!(f.in_test(3));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn out_of_line_test_mod_is_recorded() {
        let f = file("#[cfg(test)]\nmod tests;\nfn a() {}\n");
        assert_eq!(f.test_mod_decls, vec!["tests".to_string()]);
        assert!(!f.in_test(3));
    }

    #[test]
    fn own_line_allow_covers_the_next_item() {
        let f = file(
            "// lint:allow(hot-alloc) cold construction path\npub fn new() {\n    let v = 1;\n}\nfn other() {}\n",
        );
        assert!(f.allowed("hot-alloc", 2));
        assert!(f.allowed("hot-alloc", 3));
        assert!(!f.allowed("hot-alloc", 5));
    }

    #[test]
    fn same_line_allow_covers_only_that_line() {
        let f = file("let a = 1; // lint:allow(error-typing) test scaffolding\nlet b = 2;\n");
        assert!(f.allowed("error-typing", 1));
        assert!(!f.allowed("error-typing", 2));
    }

    #[test]
    fn allow_without_reason_or_with_unknown_rule_is_a_grammar_error() {
        let f = file("// lint:allow(hot-alloc)\n// lint:allow(no-such-rule) because\n");
        assert_eq!(f.grammar_errors.len(), 2);
        assert!(f.grammar_errors[0].message.contains("requires a reason"));
        assert!(f.grammar_errors[1].message.contains("unknown rule"));
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let f = file("fn outer() {\n    fn inner() {\n        x();\n    }\n}\n");
        assert_eq!(f.enclosing_fn(3), Some("inner"));
        assert_eq!(f.enclosing_fn(5), Some("outer"));
        assert_eq!(f.enclosing_fn(99), None);
    }
}
