//! A hand-rolled Rust token scanner — just enough lexical structure for
//! pattern-level linting.
//!
//! This is *not* a parser: it produces a flat token stream with comments,
//! strings, char literals, and lifetimes correctly delimited, so the rule
//! modules can match token shapes (`.` `lock` `(`, `vec` `!`, …) without
//! being fooled by occurrences inside comments, doc examples, or string
//! literals. Comments are captured separately because the in-source allow
//! grammar (`// lint:allow(<rule>) reason`) lives in them.

/// Lexical class of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// `'a`, `'static`, loop labels.
    Lifetime,
    /// String literal (plain, raw, or byte); `text` holds the *content*
    /// without quotes so rules can inspect it.
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// A single punctuation character (`text` is exactly one char).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Token text (string literals: unquoted content).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// One `//` comment (doc comments flagged, block comments not captured —
/// the allow grammar is line-comment only).
#[derive(Clone, Debug)]
pub struct Comment {
    /// Text after the `//` marker.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
    /// True for `///` and `//!` doc comments.
    pub doc: bool,
}

/// Scans `src` into tokens and line comments.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Byte offset where the current line starts, to decide `own_line`.
    let mut line_start = 0usize;

    let ident_start = |c: u8| c == b'_' || c.is_ascii_alphabetic() || c >= 0x80;
    let ident_cont = |c: u8| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let own_line = src[line_start..i].trim().is_empty();
                let doc = matches!(b.get(i + 2), Some(&b'/') | Some(&b'!'));
                let end = src[i..].find('\n').map_or(b.len(), |n| i + n);
                comments.push(Comment {
                    text: src[i + 2..end].to_string(),
                    line,
                    own_line,
                    doc,
                });
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment; newlines inside still count.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                        line_start = i;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (content, nl, end) = scan_string(src, i + 1, false, 0);
                toks.push(Tok { kind: TokKind::Str, text: content, line });
                line += nl;
                if nl > 0 {
                    line_start = src[..end].rfind('\n').map_or(line_start, |n| n + 1);
                }
                i = end;
            }
            b'r' | b'b' if is_literal_prefix(b, i) => {
                let (tok, nl, end) = scan_prefixed_literal(src, i, line);
                toks.push(tok);
                line += nl;
                if nl > 0 {
                    line_start = src[..end].rfind('\n').map_or(line_start, |n| n + 1);
                }
                i = end;
            }
            b'\'' => {
                // Lifetime or char literal.
                let next = b.get(i + 1).copied();
                if next.is_some_and(ident_start) && b.get(i + 2) != Some(&b'\'') {
                    // `'ident` not followed by a closing quote after one
                    // char: could still be 'ab' (invalid Rust) — treat an
                    // ident run with a closing quote as a char literal.
                    let mut j = i + 1;
                    while j < b.len() && ident_cont(b[j]) {
                        j += 1;
                    }
                    if b.get(j) == Some(&b'\'') {
                        toks.push(Tok { kind: TokKind::Char, text: src[i..=j].to_string(), line });
                        i = j + 1;
                    } else {
                        toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: src[i..j].to_string(),
                            line,
                        });
                        i = j;
                    }
                } else {
                    // Char literal: 'x', '\n', '\'', '\u{..}'.
                    let mut j = i + 1;
                    if b.get(j) == Some(&b'\\') {
                        j += 1;
                        if b.get(j) == Some(&b'u') && b.get(j + 1) == Some(&b'{') {
                            while j < b.len() && b[j] != b'}' {
                                j += 1;
                            }
                        }
                        j += 1; // the escaped char (or the `}`)
                    } else if j < b.len() {
                        // One UTF-8 scalar.
                        j += 1;
                        while j < b.len() && (b[j] & 0xc0) == 0x80 {
                            j += 1;
                        }
                    }
                    // Closing quote.
                    if b.get(j) == Some(&b'\'') {
                        j += 1;
                    }
                    toks.push(Tok { kind: TokKind::Char, text: src[i..j].to_string(), line });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        j += 1;
                    } else if d == b'.'
                        && b.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                        && !src[i..j].contains('.')
                    {
                        j += 1; // fractional part (but not `1..n` ranges)
                    } else if (d == b'+' || d == b'-')
                        && matches!(b.get(j - 1), Some(&b'e') | Some(&b'E'))
                    {
                        j += 1; // exponent sign
                    } else {
                        break;
                    }
                }
                toks.push(Tok { kind: TokKind::Num, text: src[i..j].to_string(), line });
                i = j;
            }
            c if ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && ident_cont(b[j]) {
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Ident, text: src[i..j].to_string(), line });
                i = j;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// Is the `r`/`b` at `i` a literal prefix (`r"`, `r#"`, `b"`, `b'`, `br"`,
/// `br#"`) rather than the start of an identifier?
fn is_literal_prefix(b: &[u8], i: usize) -> bool {
    // Raw identifiers `r#ident` are NOT literal prefixes.
    match (b[i], b.get(i + 1).copied()) {
        (b'r', Some(b'"')) => true,
        (b'r', Some(b'#')) => {
            // r#"..."# raw string vs r#ident raw identifier.
            let mut j = i + 1;
            while b.get(j) == Some(&b'#') {
                j += 1;
            }
            b.get(j) == Some(&b'"')
        }
        (b'b', Some(b'"')) | (b'b', Some(b'\'')) => true,
        (b'b', Some(b'r')) => matches!(b.get(i + 2), Some(&b'"') | Some(&b'#')),
        _ => false,
    }
}

/// Scans a `"…"` string body starting *after* the opening quote. `raw`
/// disables `\` escape processing; the literal closes at a `"` followed by
/// exactly `hashes` `#`s. Returns (content, newlines crossed, index after
/// the full closing delimiter).
fn scan_string(src: &str, start: usize, raw: bool, hashes: usize) -> (String, u32, usize) {
    let b = src.as_bytes();
    let mut i = start;
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                nl += 1;
                i += 1;
            }
            b'\\' if !raw => {
                // A line-continuation escapes the newline itself; it still
                // advances the source line counter.
                if b.get(i + 1) == Some(&b'\n') {
                    nl += 1;
                }
                i += 2;
            }
            b'"' => {
                let mut j = i + 1;
                let mut seen = 0;
                while seen < hashes && b.get(j) == Some(&b'#') {
                    j += 1;
                    seen += 1;
                }
                if seen == hashes {
                    return (src[start..i].to_string(), nl, j);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[start..].to_string(), nl, b.len())
}

/// Scans an `r`/`b`-prefixed literal starting at the prefix. Returns the
/// token, newlines crossed, and the index after the literal.
fn scan_prefixed_literal(src: &str, i: usize, line: u32) -> (Tok, u32, usize) {
    let b = src.as_bytes();
    let mut j = i;
    while matches!(b.get(j), Some(&b'r') | Some(&b'b')) {
        j += 1;
    }
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    match b.get(j) {
        Some(&b'"') => {
            // `r…` anywhere in the prefix means a raw (escape-free) body;
            // plain `b"` still processes escapes.
            let raw = src[i..j].contains('r');
            let (content, nl, end) = scan_string(src, j + 1, raw, hashes);
            (Tok { kind: TokKind::Str, text: content, line }, nl, end)
        }
        Some(&b'\'') => {
            // Byte char b'x' / b'\n'.
            let mut k = j + 1;
            if b.get(k) == Some(&b'\\') {
                k += 2;
            } else {
                k += 1;
            }
            if b.get(k) == Some(&b'\'') {
                k += 1;
            }
            (Tok { kind: TokKind::Char, text: src[i..k].to_string(), line }, 0, k)
        }
        _ => {
            // Not actually a literal; treat as identifier run.
            let mut k = i;
            while k < b.len() && (b[k] == b'_' || b[k].is_ascii_alphanumeric() || b[k] == b'#') {
                k += 1;
            }
            (Tok { kind: TokKind::Ident, text: src[i..k].to_string(), line }, 0, k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let (toks, comments) = lex("let x = \"vec![1]\"; // vec![2]\n/* Box::new */ y");
        assert!(toks.iter().all(|t| !(t.kind == TokKind::Ident && t.text == "Box")));
        assert_eq!(toks.iter().filter(|t| t.is_ident("vec")).count(), 0);
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("vec![2]"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks.iter().any(|t| t.kind == TokKind::Char && t.text == "'x'"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let (toks, _) = lex(r##"let s = r#"a "quoted" b"#; let t = "esc\"aped";"##);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].text, "a \"quoted\" b");
        assert_eq!(strs[1].text, "esc\\\"aped");
    }

    #[test]
    fn lines_are_tracked_across_constructs() {
        let (toks, comments) = lex("a\n\"x\ny\"\nb // c\nd");
        let a = toks.iter().find(|t| t.is_ident("a")).map(|t| t.line);
        let b = toks.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        let d = toks.iter().find(|t| t.is_ident("d")).map(|t| t.line);
        assert_eq!((a, b, d), (Some(1), Some(4), Some(5)));
        assert_eq!(comments[0].line, 4);
        assert!(!comments[0].own_line);
    }

    #[test]
    fn string_line_continuation_still_counts_the_newline() {
        let (toks, _) = lex("\"two \\\n lines\"\nafter");
        let after = toks.iter().find(|t| t.is_ident("after")).map(|t| t.line);
        assert_eq!(after, Some(3));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let (toks, _) = lex("for i in 0..8 { x.0.clone() } 1.5e-3");
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "8"));
        assert!(toks.iter().any(|t| t.is_ident("clone")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Num && t.text == "1.5e-3"));
    }
}
