//! The committed ratchet: `lint-baseline.json`.
//!
//! The baseline records, per `(rule, file)`, how many findings existed when
//! the baseline was last regenerated. The check fails when a count *rises*
//! (new debt) — and also when it *falls* (the baseline is stale: the debt
//! was paid, so the ceiling must come down before new debt can hide under
//! it). `--update-baseline` regenerates the file; the diff review of that
//! file IS the ratchet.
//!
//! Format (`eole-lint-baseline/v1`):
//!
//! ```json
//! {
//!   "format": "eole-lint-baseline/v1",
//!   "rules": {
//!     "error-typing": { "crates/bench/src/exec.rs": 2 }
//!   }
//! }
//! ```

use std::collections::BTreeMap;
use std::path::Path;

use eole_stats::json::Json;

use crate::Finding;

/// Format marker written to / required from the baseline file.
pub const FORMAT: &str = "eole-lint-baseline/v1";

/// The parsed baseline: rule → file → allowed finding count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-rule, per-file allowed counts (sorted for stable rendering).
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Baseline {
    /// Allowed count for `(rule, file)`; zero when absent.
    pub fn get(&self, rule: &str, file: &str) -> u64 {
        self.counts.get(rule).and_then(|m| m.get(file)).copied().unwrap_or(0)
    }

    /// Loads a baseline file; a missing file is an empty baseline (the
    /// strictest possible one), a malformed file is an error.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Baseline::default());
            }
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the v1 format.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = Json::parse(text)?;
        match v.get("format").and_then(Json::as_str) {
            Some(FORMAT) => {}
            Some(other) => return Err(format!("unsupported format `{other}`")),
            None => return Err("missing `format` field".to_string()),
        }
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        let Some(Json::Obj(rules)) = v.get("rules") else {
            return Err("missing `rules` object".to_string());
        };
        for (rule, files) in rules {
            let Json::Obj(entries) = files else {
                return Err(format!("rule `{rule}`: expected an object of files"));
            };
            let per_file = counts.entry(rule.clone()).or_default();
            for (file, n) in entries {
                let n = n
                    .as_u64()
                    .ok_or_else(|| format!("rule `{rule}`, file `{file}`: bad count"))?;
                per_file.insert(file.clone(), n);
            }
        }
        Ok(Baseline { counts })
    }

    /// Builds the baseline that exactly covers `findings`.
    pub fn from_findings<'a>(findings: impl IntoIterator<Item = &'a Finding>) -> Baseline {
        let mut b = Baseline::default();
        for f in findings {
            *b.counts
                .entry(f.rule.to_string())
                .or_default()
                .entry(f.path.clone())
                .or_insert(0) += 1;
        }
        b
    }

    /// Renders the v1 format (stable ordering, trailing newline).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": \"{FORMAT}\",");
        out.push_str("  \"rules\": {");
        let mut first_rule = true;
        for (rule, files) in &self.counts {
            if files.is_empty() {
                continue;
            }
            if !first_rule {
                out.push(',');
            }
            first_rule = false;
            let _ = write!(out, "\n    \"{}\": {{", escape(rule));
            let mut first_file = true;
            for (file, n) in files {
                if !first_file {
                    out.push(',');
                }
                first_file = false;
                let _ = write!(out, "\n      \"{}\": {n}", escape(file));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Writes the rendered baseline to `path`.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.render()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// JSON string escaping (paths and rule names are tame, but be correct).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding::new(rule, path, 1, "m".to_string())
    }

    #[test]
    fn round_trips() {
        let b = Baseline::from_findings(&[
            finding("error-typing", "crates/bench/src/exec.rs"),
            finding("error-typing", "crates/bench/src/exec.rs"),
            finding("hot-alloc", "crates/mem/src/cache.rs"),
        ]);
        let parsed = Baseline::parse(&b.render()).expect("parses");
        assert_eq!(parsed, b);
        assert_eq!(parsed.get("error-typing", "crates/bench/src/exec.rs"), 2);
        assert_eq!(parsed.get("hot-alloc", "crates/mem/src/cache.rs"), 1);
        assert_eq!(parsed.get("hot-alloc", "crates/mem/src/dram.rs"), 0);
    }

    #[test]
    fn empty_baseline_renders_and_parses() {
        let b = Baseline::default();
        assert_eq!(Baseline::parse(&b.render()).expect("parses"), b);
    }

    #[test]
    fn rejects_wrong_format_marker() {
        let text = "{\"format\": \"eole-lint-baseline/v9\", \"rules\": {}}";
        assert!(Baseline::parse(text).is_err());
        assert!(Baseline::parse("{\"rules\": {}}").is_err());
    }
}
