//! `eole-lint`: workspace-invariant static analysis for the EOLE
//! reproduction.
//!
//! The repo carries invariants that `rustc`/clippy cannot see — the hot
//! simulation loop must not allocate (PERF.md), every config field must
//! reach the canonical digest (the store's cache key), locks must be
//! poisoning-proof, and the result-bearing crates must route failures
//! through their typed errors. This crate is a hand-rolled lexer plus a
//! light item-level parser (no external dependencies — the build
//! environment has no crates.io access) that walks the workspace and
//! enforces those invariants as typed, `file:line`-addressed findings.
//!
//! See `LINTS.md` at the workspace root for the rule catalog, the
//! `// lint:allow(<rule>) reason` grammar, and the baseline ratchet
//! semantics.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod source;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use source::SourceFile;

/// Rule name used for malformed `lint:allow` directives. Grammar findings
/// are never absorbed by the baseline — a broken suppression must be fixed,
/// not ratcheted.
pub const GRAMMAR_RULE: &str = "allow-grammar";

/// One typed finding, addressed to a source line.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule that produced the finding.
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// A finding of `rule`.
    pub fn new(rule: &'static str, path: &str, line: u32, message: String) -> Finding {
        Finding { rule, path: path.to_string(), line, message }
    }

    /// A malformed-allow finding.
    pub fn grammar(path: &str, line: u32, message: String) -> Finding {
        Finding::new(GRAMMAR_RULE, path, line, message)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// The lexed workspace the rules run over.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Every library source file, lexed and indexed.
    pub files: Vec<SourceFile>,
    /// Crate directories (workspace-relative; `"."` for the root crate).
    pub crates: Vec<String>,
}

impl Workspace {
    /// Discovers crates (directories holding a `Cargo.toml`) under `root`
    /// and lexes every `.rs` file in their `src/` trees. Integration
    /// tests, benches, examples, and out-of-line `#[cfg(test)]` module
    /// files are excluded — the rules govern library code.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut crate_dirs = Vec::new();
        find_crates(root, root, &mut crate_dirs)?;
        crate_dirs.sort();

        let mut files = Vec::new();
        for dir in &crate_dirs {
            let src = if dir == "." {
                root.join("src")
            } else {
                root.join(dir).join("src")
            };
            if src.is_dir() {
                collect_rs(root, &src, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.0.cmp(&b.0));

        let mut parsed: Vec<SourceFile> = files
            .into_iter()
            .map(|(rel, text)| SourceFile::parse(rel, &text))
            .collect();

        // Drop files that exist only as `#[cfg(test)] mod X;` targets:
        // they are test code the compiler never builds into the library.
        let mut drops: Vec<String> = Vec::new();
        for f in &parsed {
            for m in &f.test_mod_decls {
                let base = module_base_dir(&f.rel);
                drops.push(format!("{base}{m}.rs"));
                drops.push(format!("{base}{m}/"));
            }
        }
        parsed.retain(|f| {
            !drops
                .iter()
                .any(|d| f.rel == *d || (d.ends_with('/') && f.rel.starts_with(d.as_str())))
        });

        Ok(Workspace { root: root.to_path_buf(), files: parsed, crates: crate_dirs })
    }
}

/// Directory (with trailing `/`, workspace-relative) that `mod X;` inside
/// `rel` resolves against: the file's own directory for `mod.rs` /
/// `lib.rs` / `main.rs`, the file-stem directory otherwise.
fn module_base_dir(rel: &str) -> String {
    let (dir, name) = match rel.rfind('/') {
        Some(i) => (&rel[..i + 1], &rel[i + 1..]),
        None => ("", rel),
    };
    match name {
        "mod.rs" | "lib.rs" | "main.rs" => dir.to_string(),
        _ => format!("{dir}{}/", name.trim_end_matches(".rs")),
    }
}

/// Directory names never descended into during crate discovery. `tests`
/// matters twice: integration tests are out of scope, and this crate's own
/// `tests/fixtures/` holds deliberately-bad mini-workspaces.
const SKIP_DIRS: &[&str] = &["target", ".git", "tests", "benches", "examples", "node_modules"];

fn find_crates(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    if dir.join("Cargo.toml").is_file() {
        let rel = rel_path(root, dir);
        out.push(if rel.is_empty() { ".".to_string() } else { rel });
    }
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
            continue;
        }
        find_crates(root, &path, out)?;
    }
    Ok(())
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    out: &mut Vec<(String, String)>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            out.push((rel_path(root, &path), text));
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// What the linter is asked to do.
#[derive(Clone, Debug)]
pub struct Options {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Path of the committed baseline file.
    pub baseline_path: PathBuf,
}

/// A baseline entry whose debt was (partly) paid: the recorded ceiling is
/// higher than the current count, so it must be regenerated.
#[derive(Clone, Debug)]
pub struct Stale {
    /// Rule of the entry.
    pub rule: String,
    /// File of the entry.
    pub file: String,
    /// Count recorded in the baseline.
    pub recorded: u64,
    /// Count found now.
    pub current: u64,
}

/// The result of a `--check` run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings over their baseline ceiling, with that ceiling attached.
    pub violations: Vec<(Finding, u64)>,
    /// Malformed `lint:allow` directives (never baselined).
    pub grammar: Vec<Finding>,
    /// Baseline entries whose count went *down* (ratchet must tighten).
    pub stale: Vec<Stale>,
    /// Findings suppressed by in-source `lint:allow` directives.
    pub allow_suppressed: usize,
    /// Findings absorbed by the baseline (count exactly at the ceiling).
    pub baselined: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// True when the run should exit 0.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.grammar.is_empty() && self.stale.is_empty()
    }
}

/// Raw rule output for one workspace, before baseline comparison.
struct Analysis {
    /// Findings not suppressed by `lint:allow`.
    active: Vec<Finding>,
    /// Malformed allow directives.
    grammar: Vec<Finding>,
    /// Count of allow-suppressed findings.
    allow_suppressed: usize,
    /// Files scanned.
    files_scanned: usize,
}

fn analyze(root: &Path) -> Result<Analysis, String> {
    let ws = Workspace::load(root)?;
    let raw = rules::run_all(&ws);
    let mut active = Vec::new();
    let mut allow_suppressed = 0usize;
    for finding in raw {
        let suppressed = ws
            .files
            .iter()
            .find(|f| f.rel == finding.path)
            .is_some_and(|f| f.allowed(finding.rule, finding.line));
        if suppressed {
            allow_suppressed += 1;
        } else {
            active.push(finding);
        }
    }
    let mut grammar: Vec<Finding> =
        ws.files.iter().flat_map(|f| f.grammar_errors.iter().cloned()).collect();
    grammar.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(Analysis { active, grammar, allow_suppressed, files_scanned: ws.files.len() })
}

/// Runs every rule and compares against the baseline.
pub fn check(opts: &Options) -> Result<Outcome, String> {
    let analysis = analyze(&opts.root)?;
    let base = Baseline::load(&opts.baseline_path)?;

    // Group active findings per (rule, file).
    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in analysis.active {
        groups.entry((f.rule.to_string(), f.path.clone())).or_default().push(f);
    }

    let mut out = Outcome {
        grammar: analysis.grammar,
        allow_suppressed: analysis.allow_suppressed,
        files_scanned: analysis.files_scanned,
        ..Outcome::default()
    };
    for ((rule, file), findings) in &groups {
        let ceiling = base.get(rule, file);
        let current = findings.len() as u64;
        if current > ceiling {
            for f in findings {
                out.violations.push((f.clone(), ceiling));
            }
        } else if current < ceiling {
            out.stale.push(Stale {
                rule: rule.clone(),
                file: file.clone(),
                recorded: ceiling,
                current,
            });
        } else {
            out.baselined += findings.len();
        }
    }
    // Baseline entries for (rule, file) pairs with no findings at all.
    for (rule, per_file) in &base.counts {
        for (file, &recorded) in per_file {
            if recorded > 0 && !groups.contains_key(&(rule.clone(), file.clone())) {
                out.stale.push(Stale {
                    rule: rule.clone(),
                    file: file.clone(),
                    recorded,
                    current: 0,
                });
            }
        }
    }
    out.stale.sort_by(|a, b| (&a.rule, &a.file).cmp(&(&b.rule, &b.file)));
    Ok(out)
}

/// Regenerates the baseline from the current findings. Grammar errors are
/// returned (non-empty means the update should still fail the run): a
/// malformed allow must never be laundered into a ratchet entry.
pub fn update_baseline(opts: &Options) -> Result<(Baseline, Vec<Finding>), String> {
    let analysis = analyze(&opts.root)?;
    let base = Baseline::from_findings(&analysis.active);
    base.save(&opts.baseline_path)?;
    Ok((base, analysis.grammar))
}
