//! CLI for `eole-lint`.
//!
//! ```text
//! eole-lint [--root DIR] [--baseline FILE] [--check | --update-baseline]
//! ```
//!
//! Exit codes: 0 clean; 1 violations, stale baseline entries, or malformed
//! `lint:allow` directives; 2 usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use eole_lint::{check, update_baseline, Options};

const USAGE: &str = "usage: eole-lint [--root DIR] [--baseline FILE] [--check | --update-baseline]

  --root DIR          workspace root to scan (default: .)
  --baseline FILE     ratchet file (default: <root>/lint-baseline.json)
  --check             report violations against the baseline (default)
  --update-baseline   regenerate the baseline from current findings";

enum Mode {
    Check,
    Update,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut mode = Mode::Check;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--check" => mode = Mode::Check,
            "--update-baseline" => mode = Mode::Update,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let opts = Options {
        baseline_path: baseline.unwrap_or_else(|| root.join("lint-baseline.json")),
        root,
    };

    match mode {
        Mode::Check => run_check(&opts),
        Mode::Update => run_update(&opts),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("eole-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn run_check(opts: &Options) -> ExitCode {
    let outcome = match check(opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("eole-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &outcome.grammar {
        println!("{f}");
    }
    for (f, ceiling) in &outcome.violations {
        if *ceiling > 0 {
            println!("{f} (baseline allows {ceiling} in this file)");
        } else {
            println!("{f}");
        }
    }
    for s in &outcome.stale {
        println!(
            "lint-baseline.json: stale entry [{}] {}: recorded {}, found {} — \
             run `eole-lint --update-baseline` to tighten the ratchet",
            s.rule, s.file, s.recorded, s.current
        );
    }
    let status = if outcome.clean() { "clean" } else { "FAILED" };
    println!(
        "eole-lint: {status} — {} violation(s), {} grammar error(s), {} stale \
         baseline entr(ies); {} baselined, {} allow-suppressed; {} files scanned",
        outcome.violations.len(),
        outcome.grammar.len(),
        outcome.stale.len(),
        outcome.baselined,
        outcome.allow_suppressed,
        outcome.files_scanned,
    );
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_update(opts: &Options) -> ExitCode {
    match update_baseline(opts) {
        Ok((base, grammar)) => {
            let entries: usize = base.counts.values().map(|m| m.len()).sum();
            println!(
                "eole-lint: wrote {} with {entries} entr(ies)",
                opts.baseline_path.display()
            );
            if grammar.is_empty() {
                ExitCode::SUCCESS
            } else {
                for f in &grammar {
                    println!("{f}");
                }
                println!(
                    "eole-lint: {} malformed lint:allow directive(s) — fix them; \
                     grammar errors are never baselined",
                    grammar.len()
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("eole-lint: {e}");
            ExitCode::from(2)
        }
    }
}
