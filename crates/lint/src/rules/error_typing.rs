//! `error-typing`: no `unwrap()`/`expect(`/`panic!` in library code of the
//! result-bearing crates.
//!
//! `eole-bench`, `eole-store-service`, `eole-core`, and `eole-stats` all
//! have typed error channels (`RunError`, `StoreError`, `ConfigError`,
//! parser `Result`s); a bare unwrap in their library paths turns a
//! recoverable condition into a process abort — exactly what PR 8's
//! crash-isolation work eliminated. Test code and `src/bin/` entry points
//! are out of scope; deliberate panicking wrappers (documented `# Panics`
//! APIs, scheduler invariants) carry `lint:allow` with a reason.
//!
//! This is the *ratchet* rule: existing debt is recorded per file in
//! `lint-baseline.json`, and counts may only go down.

use super::{macro_lines, method_lines};
use crate::{Finding, Workspace};

/// Rule name.
pub const NAME: &str = "error-typing";

/// Crates whose library code must stay unwrap-free.
pub const TYPED_CRATES: &[&str] = &[
    "crates/bench/src/",
    "crates/store-service/src/",
    "crates/core/src/",
    "crates/stats/src/",
];

fn in_scope(rel: &str) -> bool {
    TYPED_CRATES.iter().any(|d| rel.starts_with(d)) && !rel.contains("/src/bin/")
}

/// Runs the rule.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in ws.files.iter().filter(|f| in_scope(&f.rel)) {
        let mut hit = |line: u32, what: &str| {
            if !f.in_test(line) {
                out.push(Finding::new(
                    NAME,
                    &f.rel,
                    line,
                    format!("{what} in library code — return the typed error instead"),
                ));
            }
        };
        for l in method_lines(f, "unwrap").collect::<Vec<_>>() {
            hit(l, "`.unwrap()`");
        }
        for l in method_lines(f, "expect").collect::<Vec<_>>() {
            hit(l, "`.expect(…)`");
        }
        for l in macro_lines(f, "panic").collect::<Vec<_>>() {
            hit(l, "`panic!`");
        }
    }
}
