//! `lock-hygiene`: every mutex acquisition flows through `lock_clean`.
//!
//! PR 8 made the executor and the store service poisoning-proof: a panic
//! isolated to one run must not wedge every later `.lock()` behind a
//! `PoisonError`. The idiom is a per-crate `lock_clean` helper
//! (`unwrap_or_else(PoisonError::into_inner)`); this rule makes it the
//! *only* way to take a lock:
//!
//! * `.lock()` outside a function named `lock_clean` is a finding;
//! * `.expect("…poison…")` is a finding (that is the crash-on-poison
//!   anti-pattern the helper replaces);
//! * any `RwLock` mention is a finding — the workspace has no
//!   poisoning-proof reader/writer helper, so introducing one means
//!   writing that helper first (then `lint:allow` with a reason).

use super::method_lines;
use crate::lexer::TokKind;
use crate::{Finding, Workspace};

/// Rule name.
pub const NAME: &str = "lock-hygiene";

/// Runs the rule.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        for line in method_lines(f, "lock").collect::<Vec<_>>() {
            if f.in_test(line) || f.enclosing_fn(line) == Some("lock_clean") {
                continue;
            }
            out.push(Finding::new(
                NAME,
                &f.rel,
                line,
                "`.lock()` outside `lock_clean` — use the poisoning-proof helper"
                    .to_string(),
            ));
        }
        for t in f.toks.iter().filter(|t| t.is_ident("RwLock")) {
            if f.in_test(t.line) {
                continue;
            }
            out.push(Finding::new(
                NAME,
                &f.rel,
                t.line,
                "`RwLock` has no poisoning-proof helper in this workspace; add a \
                 `lock_clean`-style wrapper first"
                    .to_string(),
            ));
        }
        // `.expect("…poison…")` — crash-on-poison instead of recovering.
        for w in f.toks.windows(4) {
            if w[0].is_punct('.')
                && w[1].is_ident("expect")
                && w[2].is_punct('(')
                && w[3].kind == TokKind::Str
                && w[3].text.to_ascii_lowercase().contains("poison")
            {
                let line = w[1].line;
                if !f.in_test(line) {
                    out.push(Finding::new(
                        NAME,
                        &f.rel,
                        line,
                        "crash-on-poison `.expect(\"…poison…\")` — use `lock_clean` \
                         (`unwrap_or_else(PoisonError::into_inner)`)"
                            .to_string(),
                    ));
                }
            }
        }
    }
}
