//! `forbid-unsafe`: every crate carries `#![forbid(unsafe_code)]`.
//!
//! The whole workspace is hand-rolled safe Rust; the single legitimate
//! exception is `crates/compat/alloc-counter`, whose counting allocator
//! must implement `GlobalAlloc` (an `unsafe` trait). Everything else must
//! both declare the crate-level forbid *and* contain no `unsafe` token —
//! the token check catches the gap before the compiler does, and covers
//! files the attribute hasn't reached yet.

use crate::{Finding, Workspace};

/// Rule name.
pub const NAME: &str = "forbid-unsafe";

/// Crate directories exempt from the rule.
pub const EXEMPT: &[&str] = &["crates/compat/alloc-counter"];

/// Runs the rule.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for crate_dir in &ws.crates {
        if EXEMPT.contains(&crate_dir.as_str()) {
            continue;
        }
        let lib_rel = if crate_dir == "." {
            "src/lib.rs".to_string()
        } else {
            format!("{crate_dir}/src/lib.rs")
        };
        let Some(lib) = ws.files.iter().find(|f| f.rel == lib_rel) else {
            continue; // bin-only crate (none today)
        };
        if !has_crate_forbid(lib) {
            out.push(Finding::new(
                NAME,
                &lib_rel,
                1,
                "crate is missing `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
        // Token-level backstop across every file of the crate.
        let src_prefix = if crate_dir == "." {
            "src/".to_string()
        } else {
            format!("{crate_dir}/src/")
        };
        for f in ws.files.iter().filter(|f| f.rel.starts_with(&src_prefix)) {
            for t in f.toks.iter().filter(|t| t.is_ident("unsafe")) {
                if !f.in_test(t.line) {
                    out.push(Finding::new(
                        NAME,
                        &f.rel,
                        t.line,
                        "`unsafe` in a forbid(unsafe_code) crate".to_string(),
                    ));
                }
            }
        }
    }
}

/// Does the file declare `#![forbid(unsafe_code)]` (possibly among other
/// lints in the same attribute)?
fn has_crate_forbid(f: &crate::source::SourceFile) -> bool {
    let toks = &f.toks;
    let mut i = 0;
    while i + 3 < toks.len() {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('[') {
            let mut depth = 0i32;
            let mut saw_forbid = false;
            let mut saw_unsafe_code = false;
            for t in &toks[i + 2..] {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("forbid") {
                    saw_forbid = true;
                } else if t.is_ident("unsafe_code") {
                    saw_unsafe_code = true;
                }
            }
            if saw_forbid && saw_unsafe_code {
                return true;
            }
        }
        i += 1;
    }
    false
}
