//! `hot-alloc`: no allocating idioms in hot modules.
//!
//! PR 3 made the simulator's steady-state loop allocation-free and pinned
//! it with `tests/zero_alloc.rs` — but that test proves exactly one
//! configuration on one workload. This rule turns the property into an
//! all-paths static check: the modules the hot loop lives in may not
//! mention `vec!`, `Vec::new`, `Box::new`, `format!`, `.to_string()`,
//! `.clone()`, or `.collect()` outside test code. Cold construction paths
//! (table/ring builders) that legitimately allocate carry an item-level
//! `// lint:allow(hot-alloc) <reason>`.

use super::{macro_lines, method_lines, path_lines};
use crate::{Finding, Workspace};

/// Rule name (allow grammar and baseline key).
pub const NAME: &str = "hot-alloc";

/// Directory prefixes (workspace-relative) whose files are "hot modules".
pub const HOT_DIRS: &[&str] = &[
    "crates/core/src/pipeline/",
    "crates/predictors/src/value/",
    "crates/mem/src/",
];

/// True when `rel` lives in a hot module.
pub fn is_hot(rel: &str) -> bool {
    HOT_DIRS.iter().any(|d| rel.starts_with(d))
}

/// Runs the rule.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in ws.files.iter().filter(|f| is_hot(&f.rel)) {
        let mut hit = |line: u32, what: &str| {
            if !f.in_test(line) {
                out.push(Finding::new(
                    NAME,
                    &f.rel,
                    line,
                    format!("{what} in a hot module (allocation-free hot loop, PERF.md)"),
                ));
            }
        };
        for l in macro_lines(f, "vec").collect::<Vec<_>>() {
            hit(l, "`vec!` allocates");
        }
        for l in macro_lines(f, "format").collect::<Vec<_>>() {
            hit(l, "`format!` allocates");
        }
        for l in path_lines(f, "Vec", "new").collect::<Vec<_>>() {
            hit(l, "`Vec::new`");
        }
        for l in path_lines(f, "Box", "new").collect::<Vec<_>>() {
            hit(l, "`Box::new` allocates");
        }
        for l in method_lines(f, "to_string").collect::<Vec<_>>() {
            hit(l, "`.to_string()` allocates");
        }
        for l in method_lines(f, "clone").collect::<Vec<_>>() {
            hit(l, "`.clone()` (possible hidden allocation)");
        }
        for l in method_lines(f, "collect").collect::<Vec<_>>() {
            hit(l, "`.collect()` allocates");
        }
    }
}
