//! `digest-coverage`: every configuration field participates in the
//! canonical digest.
//!
//! PR 4's result cache keys runs by `CoreConfig::digest()`, an FNV-1a
//! over `canonical_bytes`. The digest is only trustworthy if it is
//! *injective over the configuration space* — a field that exists on a
//! config struct but is never written in `canon.rs` means two different
//! configurations share a cache key and the store silently serves wrong
//! results. This rule parses the field list of every `*Config` struct in
//! the config sources and proves each field name is accessed (`.field`)
//! somewhere in `canon.rs` non-test code.
//!
//! It also pins the serialization-format marker: exactly one
//! `"eole-core-config/vN"` string literal may exist in `canon.rs` — a
//! second marker would mean two format versions silently coexisting.

use std::collections::BTreeSet;

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Finding, Workspace};

/// Rule name.
pub const NAME: &str = "digest-coverage";

/// Files whose `*Config` structs must be digest-covered.
pub const CONFIG_FILES: &[&str] = &[
    "crates/core/src/config.rs",
    "crates/mem/src/hierarchy.rs",
    "crates/mem/src/cache.rs",
    "crates/mem/src/dram.rs",
    "crates/mem/src/prefetch.rs",
];

/// The file that must write every field.
pub const CANON_FILE: &str = "crates/core/src/canon.rs";

/// The serialization-format marker prefix.
pub const MARKER_PREFIX: &str = "eole-core-config/v";

/// Runs the rule.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(canon) = ws.files.iter().find(|f| f.rel == CANON_FILE) else {
        // Only meaningful against the real tree (or a fixture that
        // includes one); a missing canon file IS the worst violation.
        if ws.files.iter().any(|f| CONFIG_FILES.contains(&f.rel.as_str())) {
            out.push(Finding::new(
                NAME,
                CANON_FILE,
                1,
                "canonical serialization file missing".to_string(),
            ));
        }
        return;
    };

    // Every identifier accessed as `.ident` in canon.rs non-test code.
    let mut written: BTreeSet<&str> = BTreeSet::new();
    for w in canon.toks.windows(2) {
        if w[0].is_punct('.') && w[1].kind == TokKind::Ident && !canon.in_test(w[1].line) {
            written.insert(w[1].text.as_str());
        }
    }

    // Format marker: defined exactly once.
    let markers: Vec<u32> = canon
        .toks
        .iter()
        .filter(|t| {
            t.kind == TokKind::Str && t.text.starts_with(MARKER_PREFIX) && !canon.in_test(t.line)
        })
        .map(|t| t.line)
        .collect();
    if markers.is_empty() {
        out.push(Finding::new(
            NAME,
            CANON_FILE,
            1,
            format!("no `{MARKER_PREFIX}N` format marker defined"),
        ));
    }
    for &line in markers.iter().skip(1) {
        out.push(Finding::new(
            NAME,
            CANON_FILE,
            line,
            format!(
                "`{MARKER_PREFIX}N` format marker defined more than once \
                 (first at line {})",
                markers[0]
            ),
        ));
    }

    for f in ws.files.iter().filter(|f| CONFIG_FILES.contains(&f.rel.as_str())) {
        for (struct_name, field, line) in config_fields(f) {
            if !written.contains(field.as_str()) {
                out.push(Finding::new(
                    NAME,
                    &f.rel,
                    line,
                    format!(
                        "field `{field}` of `{struct_name}` is never written in \
                         canonical_bytes ({CANON_FILE}) — distinct configs would \
                         share a cache key"
                    ),
                ));
            }
        }
    }
}

/// Yields `(struct_name, field_name, field_line)` for every named field of
/// every non-test `struct *Config` in `f`.
fn config_fields(f: &SourceFile) -> Vec<(String, String, u32)> {
    let toks = &f.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if !(toks[i].is_ident("struct")
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 1].text.ends_with("Config")
            && toks[i + 2].is_punct('{')
            && !f.in_test(toks[i].line))
        {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let mut depth = 0i32; // () and [] nesting inside the body
        let mut j = i + 2;
        let open = j;
        let mut brace = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if brace == 1
                && depth == 0
                && j > open
                && t.kind == TokKind::Ident
                && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
                && toks
                    .get(j - 1)
                    .is_some_and(|p| p.is_punct('{') || p.is_punct(',') || p.is_ident("pub"))
            {
                out.push((name.clone(), t.text.clone(), t.line));
            }
            j += 1;
        }
        i = j;
    }
    out
}
