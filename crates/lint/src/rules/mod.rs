//! Rule registry and the shared token-pattern helpers.
//!
//! Each rule is its own module with a single `check(&Workspace, &mut
//! Vec<Finding>)` entry point. Rules emit findings for *non-test* code
//! only; `lint:allow` suppression is applied centrally afterwards (so the
//! suppressed count can be reported).

pub mod cold_faults;
pub mod digest;
pub mod error_typing;
pub mod forbid_unsafe;
pub mod hot_alloc;
pub mod lock_hygiene;

use crate::source::SourceFile;
use crate::{Finding, Workspace};

/// Every rule name, as accepted by `lint:allow(<rule>)`.
pub const RULE_NAMES: &[&str] = &[
    hot_alloc::NAME,
    digest::NAME,
    lock_hygiene::NAME,
    error_typing::NAME,
    cold_faults::NAME,
    forbid_unsafe::NAME,
];

/// Runs every rule over the workspace.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    hot_alloc::check(ws, &mut out);
    digest::check(ws, &mut out);
    lock_hygiene::check(ws, &mut out);
    error_typing::check(ws, &mut out);
    cold_faults::check(ws, &mut out);
    forbid_unsafe::check(ws, &mut out);
    out.sort_by(|a, b| {
        (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule))
    });
    out
}

/// Lines of `.<name>` method-shaped accesses (`x.lock()`, `it.collect::<_>()`).
pub fn method_lines<'a>(
    f: &'a SourceFile,
    name: &'a str,
) -> impl Iterator<Item = u32> + 'a {
    f.toks.windows(2).filter_map(move |w| {
        (w[0].is_punct('.') && w[1].is_ident(name)).then_some(w[1].line)
    })
}

/// Lines of `<name>!` macro invocations.
pub fn macro_lines<'a>(
    f: &'a SourceFile,
    name: &'a str,
) -> impl Iterator<Item = u32> + 'a {
    f.toks.windows(2).filter_map(move |w| {
        (w[0].is_ident(name) && w[1].is_punct('!')).then_some(w[0].line)
    })
}

/// Lines of `<a>::<b>` path expressions (`Vec::new`, `Box::new`).
pub fn path_lines<'a>(
    f: &'a SourceFile,
    a: &'a str,
    b: &'a str,
) -> impl Iterator<Item = u32> + 'a {
    f.toks.windows(4).filter_map(move |w| {
        (w[0].is_ident(a) && w[1].is_punct(':') && w[2].is_punct(':') && w[3].is_ident(b))
            .then_some(w[0].line)
    })
}
