//! `cold-path-faults`: fault-site hooks stay out of hot modules.
//!
//! PR 8's fault-injection engine guarantees "disabled = one relaxed
//! atomic load per *cold-path* hook, zero hooks in the hot loop" — a
//! throughput contract PERF.md leans on. This rule pins it: no
//! `faults::…` call site may appear in a hot module.

use super::hot_alloc::is_hot;
use crate::{Finding, Workspace};

/// Rule name.
pub const NAME: &str = "cold-path-faults";

/// Runs the rule.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in ws.files.iter().filter(|f| is_hot(&f.rel)) {
        for w in f.toks.windows(3) {
            if w[0].is_ident("faults") && w[1].is_punct(':') && w[2].is_punct(':') {
                let line = w[0].line;
                if !f.in_test(line) {
                    out.push(Finding::new(
                        NAME,
                        &f.rel,
                        line,
                        "fault-site hook in a hot module (fault hooks are cold-path \
                         only; PERF.md's faults-off contract)"
                            .to_string(),
                    ));
                }
            }
        }
    }
}
