//! A counting global allocator for zero-allocation tests.
//!
//! The build environment has no crates.io access, so this is the
//! workspace's offline stand-in for crates like `allocation-counter`: a
//! [`CountingAllocator`] that wraps the system allocator and counts every
//! allocation and reallocation **per thread**, so `#[test]` functions
//! running concurrently in one binary never see each other's traffic.
//!
//! ```
//! use alloc_counter::count_allocations;
//!
//! // (In a test binary: `#[global_allocator] static A: CountingAllocator
//! //  = CountingAllocator;` — done once per crate.)
//! let (allocs, _bytes) = count_allocations(|| {
//!     let v: Vec<u64> = Vec::with_capacity(64);
//!     drop(v);
//! });
//! // With the shim installed this observes exactly one allocation.
//! let _ = allocs;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Wraps [`System`], counting `alloc`/`realloc` calls on the current
/// thread. Deallocation is free of charge: a zero-allocation region may
/// drop buffers it was handed, it just may not create or grow any.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counters are plain
// thread-local cells and allocate nothing themselves.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + new_size as u64));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// Allocations performed by the current thread so far (monotonic).
pub fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// Bytes requested by the current thread so far (monotonic).
pub fn allocated_bytes() -> u64 {
    BYTES.with(Cell::get)
}

/// Runs `f` and returns `(allocations, bytes)` it performed on this
/// thread. Only meaningful when [`CountingAllocator`] is installed as the
/// `#[global_allocator]` of the running binary; returns `(0, 0)` deltas
/// otherwise.
pub fn count_allocations<F: FnOnce()>(f: F) -> (u64, u64) {
    let a0 = allocations();
    let b0 = allocated_bytes();
    f();
    (allocations() - a0, allocated_bytes() - b0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The shim is installed for this crate's own test binary, so the
    // counters observe real traffic here.
    #[global_allocator]
    static A: CountingAllocator = CountingAllocator;

    #[test]
    fn counts_allocations_on_this_thread() {
        let (allocs, bytes) = count_allocations(|| {
            let v: Vec<u64> = Vec::with_capacity(32);
            std::hint::black_box(&v);
        });
        assert_eq!(allocs, 1);
        assert!(bytes >= 32 * 8, "bytes = {bytes}");
    }

    #[test]
    fn pure_computation_is_free() {
        let mut acc = 0u64;
        let (allocs, _) = count_allocations(|| {
            for i in 0..10_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
        });
        assert_eq!(allocs, 0);
    }

    #[test]
    fn growth_is_counted_but_drop_is_free() {
        let v: Vec<u8> = Vec::with_capacity(1024);
        let (allocs, _) = count_allocations(move || drop(v));
        assert_eq!(allocs, 0, "deallocation is free of charge");
        let (allocs, _) = count_allocations(|| {
            let mut v: Vec<u8> = Vec::new();
            for i in 0..100 {
                v.push(i); // several growth reallocations
            }
            std::hint::black_box(&v);
        });
        assert!(allocs >= 2, "growth must be visible: {allocs}");
    }

    #[test]
    fn threads_do_not_share_counters() {
        // `spawn`/`join` allocate a handful of small control structures on
        // THIS thread; the property under test is that the spawned
        // thread's big buffer is not attributed here.
        let (_, bytes) = count_allocations(|| {
            std::thread::spawn(|| {
                let v: Vec<u64> = Vec::with_capacity(1 << 20);
                std::hint::black_box(&v);
            })
            .join()
            .unwrap();
        });
        assert!(
            bytes < (1 << 20) / 2,
            "other threads' traffic must be invisible: {bytes} bytes attributed"
        );
    }
}
