//! A minimal, dependency-free stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness, providing the subset of the API this workspace uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build environment has no crates.io access, so the real harness cannot
//! be fetched; this shim keeps every `benches/` target compiling and running
//! (`cargo bench`) with wall-clock mean/min reporting instead of criterion's
//! full statistical machinery. Swap it out by pointing the workspace
//! `criterion` dependency back at crates.io.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Per-sample iteration budget: enough to smooth scheduler noise without
/// making a 14-bench suite take minutes.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(100);

/// Opaque value barrier — stops the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup { _c: self, name, sample_size: self.default_sample_size }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    _c: &'c Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each `bench_function` takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: a warmup sample, then `sample_size` timed samples.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibration sample: discover iterations/sample and warm up.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters_per_sample =
            (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut b);
            let per = b.elapsed / iters_per_sample as u32;
            best = best.min(per);
            total += per;
        }
        let mean = total / self.sample_size as u32;
        println!(
            "  {}/{}: mean {} min {} ({} samples x {} iters)",
            self.name,
            id,
            fmt_duration(mean),
            fmt_duration(best),
            self.sample_size,
            iters_per_sample,
        );
        self
    }

    /// Ends the group (report-flush point in real criterion; a no-op here).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark-group function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` / `cargo bench` pass harness flags (`--bench`,
            // `--test`); a plain-function harness has nothing to do for them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
