//! Collection strategies (subset: [`vec`]).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
