//! A minimal, dependency-free stand-in for the
//! [proptest](https://crates.io/crates/proptest) property-testing framework,
//! providing the subset of the API this workspace uses: the [`Strategy`]
//! trait with [`Strategy::prop_map`], integer-range and tuple strategies,
//! [`collection::vec`], [`Arbitrary`]/[`any`], [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! The build environment has no crates.io access, so the real framework
//! cannot be fetched. Differences from real proptest: inputs are drawn from
//! a fixed-seed deterministic RNG (no persisted failure corpus) and failing
//! cases are **not shrunk** — on failure the runner prints the case index
//! (re-runnable via [`TestRng::for_case`]) so a failure is still
//! reproducible. Swap it out by pointing the workspace `proptest`
//! dependency back at crates.io.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;

/// Everything a `proptest!`-based test file usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Test-runner settings (subset: just the case count).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Marker returned by `prop_assume!` when a drawn case is rejected.
#[derive(Clone, Copy, Debug)]
pub struct CaseRejected;

/// Drop guard that reports the failing case index when a property body
/// panics, so the case can be re-run via [`TestRng::for_case`].
#[doc(hidden)]
pub struct CaseGuard(pub u64);

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest stand-in: property failed on case index {} \
                 (reproduce with TestRng::for_case({}))",
                self.0, self.0
            );
        }
    }
}

/// Deterministic splitmix64 RNG: every case index maps to one input stream,
/// so failures reproduce without a persisted corpus.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    const GOLDEN_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

    /// The RNG for one numbered test case.
    pub fn for_case(case: u64) -> Self {
        TestRng { state: case.wrapping_mul(0xff51_afd7_ed55_8ccd) ^ Self::GOLDEN_SEED }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A recipe for generating random values of an output type.
///
/// Real proptest separates value *trees* (for shrinking) from strategies;
/// this stand-in generates values directly and does not shrink.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % width) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64; // span + 1 overflows for full-width ranges
                    let draw = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.next_u64() % (span + 1)
                    };
                    lo + draw as $t
                }
            }
        )*
    };
}

int_range_inclusive_strategy!(u8, u16, u32, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Widen to i64 before subtracting/adding: narrow-type
                    // wrapping arithmetic would corrupt widths larger than
                    // the type's positive max (e.g. -100i8..100).
                    let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add((rng.next_u64() % width) as i64) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "draw any value" strategy (subset of real
/// proptest's `Arbitrary`: primitives only).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for a type: any value at all.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Defines property tests: each `#[test] fn name(inputs) { body }` runs the
/// body over many generated inputs. Inputs are either `pattern in strategy`
/// or `name: Type` (drawn via [`Arbitrary`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while passed < cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(case);
                    let __guard = $crate::CaseGuard(case);
                    let outcome: ::std::result::Result<(), $crate::CaseRejected> =
                        (|| {
                            $crate::__proptest_bind!(__rng; $($params)*);
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    ::std::mem::forget(__guard);
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::CaseRejected) => {
                            rejected += 1;
                            assert!(
                                rejected < 4096,
                                "prop_assume! rejected {rejected} cases — strategy too narrow"
                            );
                        }
                    }
                    case += 1;
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $i:ident : $t:ty, $($rest:tt)*) => {
        let $i: $t = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $i:ident : $t:ty) => {
        let $i: $t = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $p:pat in $s:expr) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
    };
}

/// Asserts a property holds for the current case (panics on failure; this
/// stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+); };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_eq!($a, $b, $($fmt)+); };
}

/// Asserts two expressions are unequal for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::std::assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { ::std::assert_ne!($a, $b, $($fmt)+); };
}

/// Rejects the current case (drawn inputs don't satisfy a precondition);
/// the runner draws a replacement case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::CaseRejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let s = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&s));
            // Width wider than the type's positive max must still respect
            // the declared bounds.
            let w = Strategy::generate(&(-100i8..100), &mut rng);
            assert!((-100..100).contains(&w));
            let f = Strategy::generate(&(i64::MIN..i64::MAX), &mut rng);
            assert!(f < i64::MAX);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = (0u8..200, 1usize..50).prop_map(|(a, b)| a as usize + b);
        let a = Strategy::generate(&strat, &mut TestRng::for_case(3));
        let b = Strategy::generate(&strat, &mut TestRng::for_case(3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_strategies_and_arbitraries(xs in crate::collection::vec(0u8..10, 2..6), flag: bool) {
            prop_assume!(!xs.is_empty());
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|x| *x < 10));
            let _ = flag;
        }
    }
}
