//! Sampling strategies (subset: [`select`]).

use crate::{Strategy, TestRng};

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Picks one of the given options uniformly at random.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
    }
}
