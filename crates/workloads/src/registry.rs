//! The benchmark registry: one synthetic kernel per program in the paper's
//! Table 3, in the paper's order.
//!
//! Each kernel is *named after* and *tuned to qualitatively resemble* the
//! SPEC program the paper evaluates (see each kernel module's header for
//! the traits being reproduced); none is a re-implementation of SPEC code.
//! The suite's purpose is to span the same behavioural axes the paper's
//! figures exercise: value predictability, branch predictability, memory-
//! boundedness, ILP, and the fraction of single-cycle ALU µ-ops EOLE can
//! offload.

use eole_isa::{generate_trace, IsaError, Program, Trace};

use crate::kernels;

/// SPEC suite of the namesake program (Table 3 top/bottom split).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// CPU2000.
    Cpu2000,
    /// CPU2006.
    Cpu2006,
}

/// Integer or floating-point program (Table 3's INT/FP tags).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Integer benchmark.
    Int,
    /// Floating-point benchmark.
    Fp,
}

/// One entry of the benchmark suite.
#[derive(Clone)]
pub struct Workload {
    /// Short name (the SPEC program it mimics, e.g. `"gzip"`).
    pub name: &'static str,
    /// Source suite of the namesake.
    pub suite: Suite,
    /// INT or FP.
    pub kind: Kind,
    /// One-line description of the behaviour being reproduced.
    pub description: &'static str,
    build: fn() -> Program,
}

impl Workload {
    /// Builds the kernel's program (deterministic).
    pub fn program(&self) -> Program {
        (self.build)()
    }

    /// Generates up to `max_insts` retired µ-ops of trace.
    ///
    /// # Errors
    ///
    /// Propagates functional-execution errors (none are expected from the
    /// shipped kernels; a failure indicates a kernel bug).
    pub fn trace(&self, max_insts: u64) -> Result<Trace, IsaError> {
        generate_trace(&self.program(), max_insts)
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("kind", &self.kind)
            .finish()
    }
}

/// All 19 workloads in the paper's Table 3 order.
pub fn all_workloads() -> Vec<Workload> {
    use Kind::*;
    use Suite::*;
    vec![
        Workload {
            name: "gzip",
            suite: Cpu2000,
            kind: Int,
            description: "LZ-style hashing + match loops over compressible text",
            build: kernels::gzip::program,
        },
        Workload {
            name: "wupwise",
            suite: Cpu2000,
            kind: Fp,
            description: "complex-arithmetic sweeps behind a VP-breakable index chain",
            build: kernels::wupwise::program,
        },
        Workload {
            name: "applu",
            suite: Cpu2000,
            kind: Fp,
            description: "2-D stencil sweeps with constant coefficients",
            build: kernels::applu::program,
        },
        Workload {
            name: "vpr",
            suite: Cpu2000,
            kind: Int,
            description: "placement cost evaluation with data-dependent accepts",
            build: kernels::vpr::program,
        },
        Workload {
            name: "art",
            suite: Cpu2000,
            kind: Fp,
            description: "neural-net scan dominated by predictable index arithmetic",
            build: kernels::art::program,
        },
        Workload {
            name: "crafty",
            suite: Cpu2000,
            kind: Int,
            description: "bitboard logic chains rich in immediates (EE-friendly)",
            build: kernels::crafty::program,
        },
        Workload {
            name: "parser",
            suite: Cpu2000,
            kind: Int,
            description: "randomized dictionary pointer chases, low ILP",
            build: kernels::parser::program,
        },
        Workload {
            name: "vortex",
            suite: Cpu2000,
            kind: Int,
            description: "call-heavy object store with biased type checks",
            build: kernels::vortex::program,
        },
        Workload {
            name: "bzip2",
            suite: Cpu2006,
            kind: Int,
            description: "run-length walking with a VP-breakable position chain",
            build: kernels::bzip2::program,
        },
        Workload {
            name: "gcc",
            suite: Cpu2006,
            kind: Int,
            description: "indirect-dispatch interpreter over an IR buffer",
            build: kernels::gcc::program,
        },
        Workload {
            name: "gamess",
            suite: Cpu2006,
            kind: Fp,
            description: "dense FP tiles with strided integer addressing",
            build: kernels::gamess::program,
        },
        Workload {
            name: "mcf",
            suite: Cpu2006,
            kind: Int,
            description: "DRAM-bound random pointer chase over a 32 MB arena",
            build: kernels::mcf::program,
        },
        Workload {
            name: "milc",
            suite: Cpu2006,
            kind: Fp,
            description: "memory-bound streaming complex multiplies",
            build: kernels::milc::program,
        },
        Workload {
            name: "namd",
            suite: Cpu2006,
            kind: Fp,
            description: "pair-list force loop dominated by predictable ALU work",
            build: kernels::namd::program,
        },
        Workload {
            name: "gobmk",
            suite: Cpu2006,
            kind: Int,
            description: "board-pattern scans with hard-to-predict branches",
            build: kernels::gobmk::program,
        },
        Workload {
            name: "hmmer",
            suite: Cpu2006,
            kind: Int,
            description: "wide branchless Viterbi row with data-dependent values",
            build: kernels::hmmer::program,
        },
        Workload {
            name: "sjeng",
            suite: Cpu2006,
            kind: Int,
            description: "recursive search with noisy evaluation branches",
            build: kernels::sjeng::program,
        },
        Workload {
            name: "h264",
            suite: Cpu2006,
            kind: Int,
            description: "SAD block matching with branchless absolute differences",
            build: kernels::h264::program,
        },
        Workload {
            name: "lbm",
            suite: Cpu2006,
            kind: Fp,
            description: "long-stride streaming stencil, memory bound",
            build: kernels::lbm::program,
        },
    ]
}

/// Looks a workload up by name.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_workloads_in_paper_order() {
        let all = all_workloads();
        assert_eq!(all.len(), 19);
        assert_eq!(all[0].name, "gzip");
        assert_eq!(all[18].name, "lbm");
        let ints = all.iter().filter(|w| w.kind == Kind::Int).count();
        let fps = all.iter().filter(|w| w.kind == Kind::Fp).count();
        assert_eq!((ints, fps), (12, 7), "Table 3: 12 INT + 7 FP");
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("namd").is_some());
        assert!(workload_by_name("nonexistent").is_none());
    }

    #[test]
    fn every_kernel_assembles_and_traces() {
        for w in all_workloads() {
            let t = w.trace(20_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(t.len() >= 10_000, "{}: trace too short ({})", w.name, t.len());
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for w in all_workloads().into_iter().take(4) {
            let a = w.trace(5_000).unwrap();
            let b = w.trace(5_000).unwrap();
            assert_eq!(a.insts.len(), b.insts.len());
            assert_eq!(a.branch_outcomes, b.branch_outcomes, "{}", w.name);
        }
    }
}
