//! `namd`-like kernel (CPU2006 444.namd, FP; paper IPC ≈ 1.86).
//!
//! Reproduced traits: the paper's best case — §3.4 reports *up to 60 %* of
//! namd's retired µ-ops can bypass the OoO engine, and Fig. 7 shows it
//! gaining >10 % from extra issue width. The pair-list force loop here is
//! dominated by perfectly strided integer work (list index, packed-index
//! decode, address generation — all value-predictable → Late Execution;
//! immediates and predicted operands → Early Execution), plus biased
//! cutoff branches (high-confidence) and a sprinkle of FP.

use eole_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const PAIRS: usize = 65536;
const ATOMS: usize = 4096;

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let f = FpReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x4a3d);

    // Pair list: consecutive packed indices — the list is sorted, as real
    // neighbour lists largely are, so the loaded value strides by one and
    // the whole decode chain below is value-predictable.
    let pairs: Vec<u64> = (0..PAIRS as u64).collect();
    let plist = b.add_data_u64(&pairs);
    let _ = &mut rng;
    let xs = b.add_data_f64(&gen::random_f64(&mut rng, ATOMS, 0.0, 64.0));
    let forces = b.alloc_zeroed((ATOMS * 8) as u64);

    let (pb, xb, fo, k, packed, ai, aj, t1, t2, near) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9), r(10));
    let (klim, epoch) = (r(11), r(12));
    let (xi, xj, d, fcut) = (f(1), f(2), f(3), f(4));

    b.movi(pb, plist as i64);
    b.movi(xb, xs as i64);
    b.movi(fo, forces as i64);
    b.movi(klim, PAIRS as i64);
    b.movi(near, 0);
    b.movi(epoch, 0);
    // Cutoff constant: the signed difference of two positions in a 0..64
    // box falls below -52 only ~9 % of the time, so the interaction branch
    // is strongly biased (high-confidence material).
    b.movi(t1, (-52.0f64).to_bits() as i64);
    b.st(pb, -8, t1);
    b.fld(fcut, pb, -8);
    let epoch_top = b.label();
    b.bind(epoch_top);
    b.movi(k, 0);
    let top = b.label();
    b.bind(top);
    // Strided list walk + packed-index decode: all value-predictable
    // single-cycle ALU work (LE/EE fodder).
    b.ld_idx(packed, pb, k, 3, 0);
    b.shli(ai, packed, 1);
    b.add(ai, ai, packed); // ai = 3·packed: strides by 3
    b.andi(ai, ai, (ATOMS - 1) as i64);
    b.addi(aj, packed, 17);
    b.andi(aj, aj, (ATOMS - 1) as i64);
    b.lea(t1, xb, ai, 3, 0);
    b.fld(xi, t1, 0);
    b.lea(t2, xb, aj, 3, 0);
    b.fld(xj, t2, 0);
    b.fsub(d, xi, xj);
    // Cutoff test: |d| < 8 is rare over a 0..64 box (biased → HC branch).
    let skip = b.label();
    b.fcmplt(t1, d, fcut);
    b.beq_imm(t1, 0, skip);
    b.fadd(d, d, fcut);
    b.lea(t2, fo, ai, 3, 0);
    b.fst(t2, 0, d);
    b.addi(near, near, 1);
    b.bind(skip);
    b.addi(k, k, 1);
    b.blt(k, klim, top);
    b.addi(epoch, epoch, 1);
    b.blt_imm(epoch, 1_000_000, epoch_top);
    b.halt();
    b.build().expect("namd kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn integer_alu_share_is_high() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let alu = t.insts.iter().filter(|d| d.class() == InstClass::IntAlu).count();
        let frac = alu as f64 / t.len() as f64;
        assert!(frac > 0.45, "namd ALU share {frac:.2}");
    }

    #[test]
    fn cutoff_branch_is_biased() {
        let t = generate_trace(&program(), 60_000).unwrap();
        // The skip branch is mostly taken; loop branch taken; exits rare.
        let taken = t.branch_outcomes.iter().filter(|x| **x).count();
        assert!(taken as f64 / t.branch_outcomes.len() as f64 > 0.8);
    }

    #[test]
    fn list_walk_is_strided() {
        let t = generate_trace(&program(), 20_000).unwrap();
        let addrs: Vec<u64> = t
            .insts
            .iter()
            .filter(|d| d.inst.op == eole_isa::Opcode::LdIdx)
            .map(|d| d.addr)
            .collect();
        let strided = addrs.windows(2).filter(|w| w[1] == w[0] + 8).count();
        assert!(strided as f64 / addrs.len() as f64 > 0.95);
    }
}
