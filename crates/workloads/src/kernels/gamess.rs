//! `gamess`-like kernel (CPU2006 416.gamess, FP; paper IPC ≈ 1.93).
//!
//! Reproduced traits: quantum-chemistry style dense FP sweeps — four
//! independent multiply-accumulate chains per iteration (high FP ILP and
//! IPC) over one long flattened tile (trip count 16K, so the strided
//! integer addressing saturates the value predictor's confidence).
//! Fig. 13 finds gamess sensitive to removing *Early* Execution: the
//! address arithmetic here is exactly the EE-harvestable kind.

use eole_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const N2: usize = 128 * 128; // one 128×128 f64 tile per operand

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let f = FpReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x6a3e);

    let am = b.add_data_f64(&gen::random_f64(&mut rng, N2, -1.0, 1.0));
    let bm = b.add_data_f64(&gen::random_f64(&mut rng, N2, -1.0, 1.0));
    let cm = b.alloc_zeroed((N2 * 8) as u64);

    let (ab, bb, cb, idx, lim, t1, t2, t3, tile) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));
    let (a0, a1, b0, b1) = (f(1), f(2), f(3), f(4));
    let (s0, s1, s2, s3) = (f(5), f(6), f(7), f(8));

    b.movi(ab, am as i64);
    b.movi(bb, bm as i64);
    b.movi(cb, cm as i64);
    b.movi(lim, (N2 - 2) as i64);
    b.movi(tile, 0);
    let tile_top = b.label();
    b.bind(tile_top);
    b.movi(idx, 0);
    let top = b.label();
    b.bind(top);
    // Strided addressing: every integer value advances by 2 per iteration.
    b.lea(t1, ab, idx, 3, 0);
    b.fld(a0, t1, 0);
    b.fld(a1, t1, 8);
    b.lea(t2, bb, idx, 3, 0);
    b.fld(b0, t2, 0);
    b.fld(b1, t2, 8);
    // Four independent FP chains.
    b.fmul(a0, a0, b0);
    b.fmul(a1, a1, b1);
    b.fadd(s0, s0, a0);
    b.fadd(s1, s1, a1);
    b.fmul(b0, b0, b0);
    b.fmul(b1, b1, b1);
    b.fadd(s2, s2, b0);
    b.fadd(s3, s3, b1);
    b.fadd(a0, s0, s1);
    b.lea(t3, cb, idx, 3, 0);
    b.fst(t3, 0, a0);
    b.addi(idx, idx, 2);
    b.blt(idx, lim, top);
    b.addi(tile, tile, 1);
    b.blt_imm(tile, 1_000_000, tile_top);
    b.halt();
    b.build().expect("gamess kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn fp_and_int_split_is_balanced() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let fp = t
            .insts
            .iter()
            .filter(|d| matches!(d.class(), InstClass::FpAlu | InstClass::FpMul))
            .count();
        let frac = fp as f64 / t.len() as f64;
        assert!((0.3..0.65).contains(&frac), "FP fraction {frac:.2}");
    }

    #[test]
    fn loops_are_fully_predictable() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let taken = t.branch_outcomes.iter().filter(|x| **x).count();
        assert!(taken as f64 / t.branch_outcomes.len() as f64 > 0.98);
    }

    #[test]
    fn addressing_strides_steadily() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let leas: Vec<u64> = t
            .insts
            .iter()
            .filter(|d| d.inst.op == eole_isa::Opcode::Lea)
            .map(|d| d.result)
            .collect();
        assert!(leas.len() > 1000);
        let mut strided = 0;
        for w in leas.windows(4) {
            if w[3].wrapping_sub(w[0]) == 16 {
                strided += 1;
            }
        }
        assert!(strided as f64 / leas.len() as f64 > 0.9);
    }
}
