//! The 19 synthetic kernels, one per program of the paper's Table 3.
//!
//! Each module's header documents the SPEC program it stands in for and
//! the behavioural traits the kernel reproduces (value predictability,
//! branch behaviour, memory-boundedness, ILP, EOLE offload potential).

pub mod applu;
pub mod art;
pub mod bzip2;
pub mod crafty;
pub mod gamess;
pub mod gcc;
pub mod gobmk;
pub mod gzip;
pub mod h264;
pub mod hmmer;
pub mod lbm;
pub mod mcf;
pub mod milc;
pub mod namd;
pub mod parser;
pub mod sjeng;
pub mod vortex;
pub mod vpr;
pub mod wupwise;
