//! `mcf`-like kernel (CPU2006 429.mcf, INT; paper IPC ≈ 0.105 — the
//! slowest program in Table 3).
//!
//! Reproduced traits: network-simplex arc scanning — a serial *random*
//! pointer chase over a 32 MB arena (far beyond the 2 MB L2, so nearly
//! every hop pays DRAM latency), with a little cost arithmetic per node.
//! Nothing is value-predictable and the chase cannot overlap, so IPC
//! collapses to the memory latency floor.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const NODES: usize = 1 << 21; // 2M nodes × 16 B = 32 MB

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x3cf0);

    // Node i: [next_index, cost]; one giant random cycle.
    let next = gen::pointer_cycle(&mut rng, NODES);
    let mut nodes = Vec::with_capacity(NODES * 2);
    for n in next {
        nodes.push(n);
        nodes.push(rng.below(1 << 20));
    }
    let base = b.add_data_u64(&nodes);

    let (nb, p, cost, best, t, steps) = (r(1), r(2), r(3), r(4), r(5), r(6));

    b.movi(nb, base as i64);
    b.movi(p, 0);
    b.movi(best, 0);
    b.movi(steps, 0);
    let top = b.label();
    b.bind(top);
    // DRAM-bound serial hop.
    b.ld_idx(p, nb, p, 4, 0);
    b.lea(t, nb, p, 4, 8);
    b.ld(cost, t, 0);
    // Reduced-cost bookkeeping (data dependent, branchless).
    b.sub(t, cost, best);
    b.sari(t, t, 63);
    b.and(t, t, cost);
    b.or(best, best, t);
    b.addi(steps, steps, 1);
    b.blt_imm(steps, 2_000_000_000, top);
    b.halt();
    b.build().expect("mcf kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, Opcode};

    #[test]
    fn working_set_spans_tens_of_megabytes() {
        let t = generate_trace(&program(), 50_000).unwrap();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for d in t.insts.iter().filter(|d| d.is_load()) {
            lo = lo.min(d.addr);
            hi = hi.max(d.addr);
        }
        assert!(hi - lo > 16 << 20, "span = {} MB", (hi - lo) >> 20);
    }

    #[test]
    fn chase_is_unpredictable() {
        let t = generate_trace(&program(), 30_000).unwrap();
        let hops: Vec<u64> = t
            .insts
            .iter()
            .filter(|d| d.inst.op == Opcode::LdIdx)
            .map(|d| d.result)
            .collect();
        let mut repeats = 0;
        for w in hops.windows(3) {
            if w[1].wrapping_sub(w[0]) == w[2].wrapping_sub(w[1]) {
                repeats += 1;
            }
        }
        assert!((repeats as f64) < hops.len() as f64 * 0.02);
    }
}
