//! `bzip2`-like kernel (CPU2006 401.bzip2, INT; paper IPC ≈ 0.89).
//!
//! Reproduced traits: run-length walking over a block — the position
//! advances by a loaded run length that is *almost always* the same value,
//! so the serial `pos += runlen[pos]` chain is value-predictable (bzip2 is
//! one of Fig. 6's clear VP winners) with rare deviations that exercise
//! the value-misprediction squash path. A byte histogram adds data-
//! dependent store traffic.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const RUNS: usize = 65536;
const BLOCK: usize = 64 * 1024;

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0xb212);

    // Run lengths: constant 4, deviating to 12 once every ~4K entries —
    // rare enough that the FPC still saturates, so each deviation lands as
    // a genuine (expensive) value misprediction.
    let runs: Vec<u64> = (0..RUNS)
        .map(|_| if rng.below(4096) == 0 { 12 } else { 4 })
        .collect();
    let runs_base = b.add_data_u64(&runs);
    let block = b.add_data(gen::random_bytes(&mut rng, BLOCK));
    let counts = b.alloc_zeroed(256 * 8);

    let (rb, blk, cb, pos, run, idx, byte, t, cnt, iter) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9), r(10));

    b.movi(rb, runs_base as i64);
    b.movi(blk, block as i64);
    b.movi(cb, counts as i64);
    b.movi(pos, 0);
    b.movi(iter, 0);
    let top = b.label();
    b.bind(top);
    // Serial, value-predictable run walk.
    b.andi(idx, pos, (RUNS - 1) as i64);
    b.ld_idx(run, rb, idx, 3, 0);
    b.add(pos, pos, run);
    // Histogram the byte under the cursor.
    b.andi(t, pos, (BLOCK - 1) as i64);
    b.add(t, t, blk);
    b.ld8(byte, t, 0);
    b.lea(t, cb, byte, 3, 0);
    b.ld(cnt, t, 0);
    b.addi(cnt, cnt, 1);
    b.st(t, 0, cnt);
    b.addi(iter, iter, 1);
    b.blt_imm(iter, 2_000_000_000, top);
    b.halt();
    b.build().expect("bzip2 kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, Opcode};

    #[test]
    fn run_lengths_are_almost_constant_with_rare_deviations() {
        let t = generate_trace(&program(), 500_000).unwrap();
        let runs: Vec<u64> = t
            .insts
            .iter()
            .filter(|d| d.inst.op == Opcode::LdIdx)
            .map(|d| d.result)
            .collect();
        let fours = runs.iter().filter(|v| **v == 4).count();
        assert!(runs.len() > 10_000);
        let frac = fours as f64 / runs.len() as f64;
        assert!(frac > 0.99, "constant-run fraction {frac:.4}");
        assert!(fours < runs.len(), "deviations must exist");
    }

    #[test]
    fn histogram_stores_to_data_dependent_slots() {
        let t = generate_trace(&program(), 60_000).unwrap();
        let mut slots = std::collections::HashSet::new();
        for d in t.insts.iter().filter(|d| d.is_store()) {
            slots.insert(d.addr);
        }
        assert!(slots.len() > 50, "many distinct histogram slots: {}", slots.len());
    }
}
