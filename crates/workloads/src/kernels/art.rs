//! `art`-like kernel (CPU2000 179.art, FP; paper IPC ≈ 1.21).
//!
//! Reproduced traits: the paper's §3.4 singles out art as having >50 % of
//! retired µ-ops offloadable by EOLE. The kernel is an ART F1-layer scan:
//! the FP multiply-accumulate itself is a small fraction of the work, and
//! the dominant integer loop/index arithmetic strides perfectly (value-
//! predictable → Late Execution) while the fixed-trip inner loops make the
//! branches high-confidence.

use eole_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const NEURONS: i64 = 32;
const INPUTS: i64 = 1024;

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let f = FpReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0xa127);

    let n = (NEURONS * INPUTS) as usize;
    let weights = b.add_data_f64(&gen::random_f64(&mut rng, n, 0.0, 1.0));
    let inputs = b.add_data_f64(&gen::random_f64(&mut rng, INPUTS as usize, 0.0, 1.0));
    let acts = b.alloc_zeroed(NEURONS as u64 * 8);

    let (wb, inb, ab, i, j, idx, t1, t2, rowoff) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));
    let (ilim, jlim, epoch) = (r(10), r(11), r(12));
    let (w, x, p, acc) = (f(1), f(2), f(3), f(4));

    b.movi(wb, weights as i64);
    b.movi(inb, inputs as i64);
    b.movi(ab, acts as i64);
    b.movi(ilim, INPUTS);
    b.movi(jlim, NEURONS);
    b.movi(epoch, 0);
    let epoch_top = b.label();
    b.bind(epoch_top);
    b.movi(j, 0);
    let neuron_top = b.label();
    b.bind(neuron_top);
    // rowoff = j * INPUTS * 8 — strided per neuron.
    b.shli(rowoff, j, 13);
    b.add(rowoff, rowoff, wb);
    b.movi(i, 0);
    b.xor(idx, idx, idx);
    let inner = b.label();
    b.bind(inner);
    // Integer-dominant body: index arithmetic strides, all predictable.
    b.shli(idx, i, 3);
    b.add(t1, rowoff, idx);
    b.fld(w, t1, 0);
    b.add(t2, inb, idx);
    b.fld(x, t2, 0);
    b.fmul(p, w, x);
    b.fadd(acc, acc, p);
    b.addi(i, i, 2); // stride 2: trip count 512 > FPC saturation horizon
    b.blt(i, ilim, inner);
    b.lea(t1, ab, j, 3, 0);
    b.fst(t1, 0, acc);
    b.addi(j, j, 1);
    b.blt(j, jlim, neuron_top);
    b.addi(epoch, epoch, 1);
    b.blt_imm(epoch, 1_000_000, epoch_top);
    b.halt();
    b.build().expect("art kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn integer_alu_dominates() {
        let t = generate_trace(&program(), 30_000).unwrap();
        let int_alu = t.insts.iter().filter(|d| d.class() == InstClass::IntAlu).count();
        assert!(
            int_alu as f64 / t.len() as f64 > 0.4,
            "int ALU share = {:.2}",
            int_alu as f64 / t.len() as f64
        );
    }

    #[test]
    fn branches_are_high_confidence_material() {
        let t = generate_trace(&program(), 30_000).unwrap();
        let taken = t.branch_outcomes.iter().filter(|x| **x).count();
        assert!(taken as f64 / t.branch_outcomes.len() as f64 > 0.95);
    }
}
