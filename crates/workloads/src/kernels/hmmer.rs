//! `hmmer`-like kernel (CPU2006 456.hmmer, INT; paper IPC ≈ 2.48 — the
//! highest in Table 3).
//!
//! Reproduced traits: the Viterbi inner loop — eight *independent*
//! branchless max-add lanes per iteration give very high ILP that needs a
//! deep instruction queue to exploit (the paper's Fig. 8 shows hmmer
//! suffering most when the IQ shrinks, and it is the one benchmark EOLE
//! slows down). Scores are data-dependent, so value-prediction coverage
//! is *low* — EOLE cannot offload much here.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const STATES: usize = 2048;

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x44e2);

    let scores = b.add_data_u64(
        &gen::random_u64(&mut rng, STATES).iter().map(|v| v % 10_000).collect::<Vec<_>>(),
    );
    let trans = b.add_data_u64(
        &gen::random_u64(&mut rng, STATES).iter().map(|v| v % 500).collect::<Vec<_>>(),
    );
    let out = b.alloc_zeroed((STATES * 8) as u64);

    let (sb, tb, ob, i, lim, pass) = (r(1), r(2), r(3), r(4), r(5), r(6));
    // Four independent lanes: s(core), t(rans), c(and), m(ask).
    let lanes: [(IntReg, IntReg, IntReg, IntReg); 4] = [
        (r(7), r(8), r(9), r(10)),
        (r(11), r(12), r(13), r(14)),
        (r(15), r(16), r(17), r(18)),
        (r(19), r(20), r(21), r(22)),
    ];
    let (addr, best) = (r(23), r(24));

    b.movi(sb, scores as i64);
    b.movi(tb, trans as i64);
    b.movi(ob, out as i64);
    b.movi(lim, (STATES - 4) as i64);
    b.movi(pass, 0);
    let pass_top = b.label();
    b.bind(pass_top);
    b.movi(i, 0);
    b.movi(best, 0);
    let top = b.label();
    b.bind(top);
    for (lane, &(s, tr, c, m)) in lanes.iter().enumerate() {
        let off = lane as i64;
        b.lea(addr, sb, i, 3, off * 8);
        b.ld(s, addr, 0);
        b.lea(addr, tb, i, 3, off * 8);
        b.ld(tr, addr, 0);
        b.add(c, s, tr); // candidate = score + transition
        // Branchless max into `best` lane-local then merge:
        b.sub(m, best, c);
        b.sari(m, m, 63); // all-ones if best < c
        b.xor(c, c, best);
        b.and(c, c, m);
        b.xor(best, best, c); // best = max(best, cand)
        b.lea(addr, ob, i, 3, off * 8);
        b.st(addr, 0, best);
    }
    b.addi(i, i, 4);
    b.blt(i, lim, top);
    b.addi(pass, pass, 1);
    b.blt_imm(pass, 1_000_000, pass_top);
    b.halt();
    b.build().expect("hmmer kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn very_few_branches_lots_of_alu() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let branches = t.insts.iter().filter(|d| d.inst.is_cond_branch()).count();
        let alu = t.insts.iter().filter(|d| d.class() == InstClass::IntAlu).count();
        assert!((branches as f64) < t.len() as f64 * 0.05, "hmmer is not branchy");
        assert!(alu as f64 / t.len() as f64 > 0.5);
    }

    #[test]
    fn lane_values_are_data_dependent() {
        let t = generate_trace(&program(), 40_000).unwrap();
        // Values stored (running maxima) must not be constant or strided.
        let vals: Vec<u64> = t
            .insts
            .iter()
            .filter(|d| d.is_store())
            .map(|d| {
                d.inst
                    .src2
                    .map(|_| d.result)
                    .unwrap_or(0)
            })
            .collect();
        let _ = vals;
        let loads: Vec<u64> =
            t.insts.iter().filter(|d| d.is_load()).map(|d| d.result).collect();
        let mut strided = 0;
        for w in loads.windows(3) {
            if w[1].wrapping_sub(w[0]) == w[2].wrapping_sub(w[1]) {
                strided += 1;
            }
        }
        assert!((strided as f64) < loads.len() as f64 * 0.3);
    }
}
