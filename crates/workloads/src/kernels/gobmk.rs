//! `gobmk`-like kernel (CPU2006 445.gobmk, INT; paper IPC ≈ 0.77).
//!
//! Reproduced traits: Go board-pattern matching — scans a board with
//! data-dependent neighbour tests whose outcomes are close to coin flips,
//! giving a high branch-misprediction rate and little for the value
//! predictor. IPC is throttled by squash/refill cycles, as in the real
//! program.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::DataRng;

const BOARD: i64 = 512; // 512×512 cells, one byte each (256 KB)

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x60b8);

    // Random tri-state board (empty/black/white).
    let cells: Vec<u8> = (0..(BOARD * BOARD) as usize)
        .map(|_| (rng.below(3)) as u8)
        .collect();
    let board = b.add_data(cells);

    let (bb, pos, cell, nbr, t, liberties, captures, iter) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let seed = r(9);

    b.movi(bb, board as i64);
    b.movi(seed, 0x1234_5678);
    b.movi(iter, 0);
    let top = b.label();
    b.bind(top);
    // Pseudo-random probe position.
    b.shli(t, seed, 13);
    b.xor(seed, seed, t);
    b.shri(t, seed, 7);
    b.xor(seed, seed, t);
    b.shli(t, seed, 17);
    b.xor(seed, seed, t);
    b.andi(pos, seed, BOARD * BOARD - 1);
    b.add(t, bb, pos);
    b.ld8(cell, t, 0);
    // Neighbour tests: empty → liberty, same colour → group, else capture
    // candidate. Each branch is near-random.
    let not_empty = b.label();
    let done_n = b.label();
    b.ld8(nbr, t, 1);
    b.beq_imm(nbr, 0, not_empty);
    b.addi(liberties, liberties, 1);
    b.jmp(done_n);
    b.bind(not_empty);
    b.bne(nbr, cell, done_n);
    b.addi(captures, captures, 1);
    b.bind(done_n);
    let not_empty2 = b.label();
    let done_s = b.label();
    b.ld8(nbr, t, BOARD);
    b.beq_imm(nbr, 0, not_empty2);
    b.addi(liberties, liberties, 1);
    b.jmp(done_s);
    b.bind(not_empty2);
    b.bne(nbr, cell, done_s);
    b.addi(captures, captures, 1);
    b.bind(done_s);
    b.addi(iter, iter, 1);
    b.blt_imm(iter, 2_000_000_000, top);
    b.halt();
    b.build().expect("gobmk kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::generate_trace;

    #[test]
    fn branches_are_noisy() {
        let t = generate_trace(&program(), 60_000).unwrap();
        let taken = t.branch_outcomes.iter().filter(|x| **x).count();
        let frac = taken as f64 / t.branch_outcomes.len() as f64;
        // A mix of near-random pattern tests and taken loop branches.
        assert!((0.3..0.85).contains(&frac), "taken fraction {frac:.2}");
    }

    #[test]
    fn pattern_outcomes_do_not_repeat_periodically() {
        let t = generate_trace(&program(), 60_000).unwrap();
        let o = &t.branch_outcomes;
        // Compare the stream against itself shifted by a few periods; a
        // predictable pattern would match almost everywhere.
        for shift in [7usize, 13, 29] {
            let same = o
                .iter()
                .zip(o.iter().skip(shift))
                .filter(|(a, b)| a == b)
                .count();
            let frac = same as f64 / (o.len() - shift) as f64;
            assert!(frac < 0.8, "shift {shift}: self-similarity {frac:.2}");
        }
    }
}
