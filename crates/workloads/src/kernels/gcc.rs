//! `gcc`-like kernel (CPU2006 403.gcc, INT; paper IPC ≈ 1.06).
//!
//! Reproduced traits: compiler-style IR walking — an interpreter loop that
//! dispatches through an *indirect jump* on an opcode stream with bursty
//! (run-correlated) opcodes, small irregular handlers, and moderate value
//! predictability. Indirect-target mispredictions (BTB last-target) and
//! mixed branch behaviour keep the IPC near 1.
//!
//! The program is laid out twice: the first pass learns the handler
//! instruction indices, the second embeds them in the in-memory jump
//! table the dispatcher loads from.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::DataRng;

const IR_LEN: usize = 65536;
const NUM_OPS: usize = 8;

/// Builds the kernel.
pub fn program() -> Program {
    let (_, pcs) = layout(&[0; NUM_OPS]);
    layout(&pcs).0
}

/// Emits the kernel with the given jump-table contents; returns the
/// program and the actual handler pcs.
fn layout(table_contents: &[u64; NUM_OPS]) -> (Program, [u64; NUM_OPS]) {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x6cc1);

    // Bursty opcode stream: 75 % chance to repeat the previous opcode.
    let mut ops = Vec::with_capacity(IR_LEN);
    let mut cur = 0u64;
    for _ in 0..IR_LEN {
        if rng.below(4) == 0 {
            cur = rng.below(NUM_OPS as u64);
        }
        ops.push(cur);
    }
    let ir = b.add_data_u64(&ops);
    let table = b.add_data_u64(table_contents);

    let (irb, tb, pc_ir, opc, h, acc, t) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));

    let top = b.label();

    b.movi(irb, ir as i64);
    b.movi(tb, table as i64);
    b.movi(pc_ir, 0);
    b.movi(acc, 1);
    b.bind(top);
    b.andi(pc_ir, pc_ir, (IR_LEN - 1) as i64);
    b.ld_idx(opc, irb, pc_ir, 3, 0);
    b.ld_idx(h, tb, opc, 3, 0);
    b.addi(pc_ir, pc_ir, 1);
    b.jmp_r(h);

    // Eight small handlers of varying shape; each jumps back to `top`.
    let mut pcs = [0u64; NUM_OPS];
    for (k, pc_slot) in pcs.iter_mut().enumerate() {
        *pc_slot = b.here() as u64;
        match k % 4 {
            0 => {
                b.addi(acc, acc, 3);
                b.shli(t, acc, 1);
                b.xor(acc, acc, t);
            }
            1 => {
                b.andi(t, acc, 0xff);
                b.add(acc, acc, t);
                b.andi(t, t, (IR_LEN - 1) as i64);
                b.ld_idx(t, irb, t, 3, 0);
                b.add(acc, acc, t);
            }
            2 => {
                b.shri(t, acc, 3);
                b.sub(acc, acc, t);
                b.ori(acc, acc, 1);
            }
            _ => {
                b.mul(t, acc, acc);
                b.shri(t, t, 32);
                b.xor(acc, acc, t);
            }
        }
        b.jmp(top);
    }
    b.halt(); // unreachable; the run is bounded by the trace budget

    (b.build().expect("gcc kernel assembles"), pcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn indirect_jumps_drive_dispatch() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let ind = t
            .insts
            .iter()
            .filter(|d| d.class() == InstClass::JumpIndirect)
            .count();
        assert!(ind > 1000, "indirect dispatches = {ind}");
    }

    #[test]
    fn dispatch_targets_are_bursty_but_varied() {
        let t = generate_trace(&program(), 60_000).unwrap();
        let targets: Vec<u32> = t
            .insts
            .iter()
            .filter(|d| d.class() == InstClass::JumpIndirect)
            .map(|d| d.next_pc)
            .collect();
        let distinct: std::collections::HashSet<_> = targets.iter().collect();
        assert!(distinct.len() >= 4, "several handlers visited");
        let repeats = targets.windows(2).filter(|w| w[0] == w[1]).count();
        let frac = repeats as f64 / (targets.len() - 1) as f64;
        assert!((0.4..0.95).contains(&frac), "burstiness {frac:.2}");
    }

    #[test]
    fn two_pass_layout_is_stable() {
        // The second layout must place handlers at the same indices the
        // table advertises (otherwise jmp_r would wander).
        let (_, pcs1) = layout(&[0; NUM_OPS]);
        let (_, pcs2) = layout(&pcs1);
        assert_eq!(pcs1, pcs2);
    }
}
