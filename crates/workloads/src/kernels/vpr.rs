//! `vpr`-like kernel (CPU2000 175.vpr, INT; paper IPC ≈ 1.33).
//!
//! Reproduced traits: simulated-annealing placement — pick two pseudo-
//! random cells, evaluate a bounding-box cost, conditionally swap. The
//! in-program xorshift makes cell indices (and therefore load addresses
//! and the accept/reject branch) data-dependent; cost arithmetic is
//! branchless absolute-value code. Moderate ILP, moderate value
//! predictability, noticeable branch misprediction rate.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::DataRng;

const CELLS: i64 = 16384;

/// Emits `dst ^= dst << a; dst ^= dst >> b; dst ^= dst << c` (xorshift).
fn emit_xorshift(b: &mut ProgramBuilder, x: IntReg, t: IntReg) {
    b.shli(t, x, 13);
    b.xor(x, x, t);
    b.shri(t, x, 7);
    b.xor(x, x, t);
    b.shli(t, x, 17);
    b.xor(x, x, t);
}

/// Emits branchless `dst = |a - b|` (clobbers `t`).
fn emit_absdiff(b: &mut ProgramBuilder, dst: IntReg, a: IntReg, c: IntReg, t: IntReg) {
    b.sub(dst, a, c);
    b.sari(t, dst, 63);
    b.xor(dst, dst, t);
    b.sub(dst, dst, t);
}

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x09e2);

    let xs: Vec<u64> = (0..CELLS).map(|_| rng.below(4096)).collect();
    let ys: Vec<u64> = (0..CELLS).map(|_| rng.below(4096)).collect();
    let xb = b.add_data_u64(&xs);
    let yb = b.add_data_u64(&ys);

    let (xbase, ybase, seed, t, n1, n2) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let (x1, y1, x2, y2, dx, dy, cost, iter) = (r(7), r(8), r(9), r(10), r(11), r(12), r(13), r(14));
    let (a1, a2) = (r(15), r(16));

    b.movi(xbase, xb as i64);
    b.movi(ybase, yb as i64);
    b.movi(seed, 0x2545_f491);
    b.movi(iter, 0);
    let top = b.label();
    b.bind(top);
    emit_xorshift(&mut b, seed, t);
    b.andi(n1, seed, CELLS - 1);
    emit_xorshift(&mut b, seed, t);
    b.andi(n2, seed, CELLS - 1);
    b.ld_idx(x1, xbase, n1, 3, 0);
    b.ld_idx(y1, ybase, n1, 3, 0);
    b.ld_idx(x2, xbase, n2, 3, 0);
    b.ld_idx(y2, ybase, n2, 3, 0);
    emit_absdiff(&mut b, dx, x1, x2, t);
    emit_absdiff(&mut b, dy, y1, y2, t);
    b.add(cost, dx, dy);
    // Accept (swap) when the cost has its low bits clear: ~25 % taken,
    // data dependent — vpr's annealing accept branch.
    let reject = b.label();
    b.andi(t, cost, 3);
    b.bne_imm(t, 0, reject);
    b.lea(a1, xbase, n1, 3, 0);
    b.lea(a2, xbase, n2, 3, 0);
    b.st(a1, 0, x2);
    b.st(a2, 0, x1);
    b.lea(a1, ybase, n1, 3, 0);
    b.lea(a2, ybase, n2, 3, 0);
    b.st(a1, 0, y2);
    b.st(a2, 0, y1);
    b.bind(reject);
    b.addi(iter, iter, 1);
    b.blt_imm(iter, 2_000_000_000, top);
    b.halt();
    b.build().expect("vpr kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::generate_trace;

    #[test]
    fn accept_branch_is_noisy() {
        let t = generate_trace(&program(), 60_000).unwrap();
        // Outcomes mix loop back-edges (taken) with accepts; there must be
        // a meaningful minority of each.
        let taken = t.branch_outcomes.iter().filter(|x| **x).count();
        let frac = taken as f64 / t.branch_outcomes.len() as f64;
        assert!((0.5..0.98).contains(&frac), "taken fraction {frac:.2}");
    }

    #[test]
    fn swap_stores_happen_sometimes() {
        let t = generate_trace(&program(), 60_000).unwrap();
        let stores = t.insts.iter().filter(|d| d.is_store()).count();
        assert!(stores > 100, "accepted swaps must store: {stores}");
    }
}
