//! `h264`-like kernel (CPU2006 464.h264ref, INT; paper IPC ≈ 1.31).
//!
//! Reproduced traits: motion-estimation SAD (sum of absolute differences)
//! over 16×16 blocks — unrolled byte loads, branchless absolute
//! differences, strided block offsets (value-predictable address
//! arithmetic: Fig. 6 shows h264 gaining noticeably from VP), and an
//! early-exit threshold branch that is strongly biased.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const FRAME_W: i64 = 1024;
const FRAME_BYTES: usize = (FRAME_W * FRAME_W) as usize;

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x4264);

    let cur = b.add_data(gen::random_bytes(&mut rng, FRAME_BYTES));
    // Reference frame: the current frame plus mild noise (so SADs are
    // small and the early-exit branch is biased).
    let mut reff = gen::random_bytes(&mut rng, FRAME_BYTES);
    {
        let mut r2 = DataRng::new(0x4264);
        for byte in reff.iter_mut() {
            *byte = (r2.next_u64() as u8).wrapping_add((rng.below(4)) as u8);
        }
    }
    let ref_base = b.add_data(reff);

    let (cb, rb, bx, sad, row, t, ca, ra) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let (pa, pb_, d, m, blocks, best, frame_off) =
        (r(9), r(10), r(11), r(12), r(13), r(14), r(15));

    b.movi(cb, cur as i64);
    b.movi(rb, ref_base as i64);
    b.movi(bx, 0);
    b.movi(frame_off, 0);
    b.movi(blocks, 0);
    b.movi(best, 1 << 20);
    let block_top = b.label();
    b.bind(block_top);
    b.movi(sad, 0);
    b.movi(row, 0);
    let row_top = b.label();
    b.bind(row_top);
    // Row base addresses: strided (predictable), descending through the
    // frame block-row by block-row so the working set exceeds the L1.
    b.shli(t, row, 10);
    b.add(t, t, frame_off);
    b.add(ca, cb, t);
    b.add(ca, ca, bx);
    b.add(ra, rb, t);
    b.add(ra, ra, bx);
    // 8 unrolled byte SADs per row visit.
    for kx in 0..8i64 {
        b.ld8(pa, ca, kx);
        b.ld8(pb_, ra, kx);
        b.sub(d, pa, pb_);
        b.sari(m, d, 63);
        b.xor(d, d, m);
        b.sub(d, d, m);
        b.add(sad, sad, d);
    }
    b.addi(row, row, 1);
    b.blt_imm(row, 16, row_top);
    // Early-exit compare: biased (noise keeps SADs small).
    let not_better = b.label();
    b.bge(sad, best, not_better);
    b.mov(best, sad);
    b.bind(not_better);
    b.addi(bx, bx, 16);
    b.andi(bx, bx, FRAME_W - 1);
    // After a full stripe of blocks, move 16 rows down the frame.
    let same_stripe = b.label();
    b.bne_imm(bx, 0, same_stripe);
    b.addi(frame_off, frame_off, 16 * FRAME_W);
    b.andi(frame_off, frame_off, FRAME_W * FRAME_W - 1);
    b.bind(same_stripe);
    b.addi(blocks, blocks, 1);
    b.blt_imm(blocks, 2_000_000_000, block_top);
    b.halt();
    b.build().expect("h264 kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn byte_loads_dominate_memory_traffic() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let byte_loads = t
            .insts
            .iter()
            .filter(|d| d.class() == InstClass::Load && d.size == 1)
            .count();
        assert!(byte_loads as f64 / t.len() as f64 > 0.15);
    }

    #[test]
    fn inner_loops_are_predictable() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let taken = t.branch_outcomes.iter().filter(|x| **x).count();
        assert!(taken as f64 / t.branch_outcomes.len() as f64 > 0.8);
    }
}
