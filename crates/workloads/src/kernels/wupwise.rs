//! `wupwise`-like kernel (CPU2000 168.wupwise, FP; paper IPC ≈ 1.55).
//!
//! Reproduced traits: the paper's Fig. 6 shows wupwise among the biggest
//! value-prediction winners. The kernel therefore carries its complex-
//! arithmetic sweep behind a *serial index chain* (`i = next[i]` where
//! `next` is laid out sequentially, so the loaded value strides by 1):
//! without VP the chain serializes every iteration behind a load; the
//! 2-delta stride side of the hybrid predicts it exactly and collapses the
//! critical path. FP work (complex multiply-accumulate) is otherwise
//! well-pipelined.

use eole_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const N: usize = 4096;

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let f = FpReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x3713);

    // Sequential "linked" index array: next[i] = (i + 1) mod N.
    let next: Vec<u64> = (0..N as u64).map(|i| (i + 1) % N as u64).collect();
    let next_base = b.add_data_u64(&next);
    let re_base = b.add_data_f64(&gen::random_f64(&mut rng, N, -1.0, 1.0));
    let im_base = b.add_data_f64(&gen::random_f64(&mut rng, N, -1.0, 1.0));
    let coef = b.add_data_f64(&[0.7548776662, 0.6559780438]);

    let (i, nb, rb, ib, t1, t2, iter, bound) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let (cre, cim) = (f(1), f(2));
    let (xre, xim) = (f(3), f(4));
    let (p1, p2, p3, p4) = (f(5), f(6), f(7), f(8));
    let (acc_re, acc_im) = (f(9), f(10));

    b.movi(nb, next_base as i64);
    b.movi(rb, re_base as i64);
    b.movi(ib, im_base as i64);
    b.movi(t1, coef as i64);
    b.fld(cre, t1, 0);
    b.fld(cim, t1, 8);
    b.movi(i, 0);
    b.movi(iter, 0);
    b.movi(bound, 2_000_000_000);
    let top = b.label();
    b.bind(top);
    // Serial chain: i = next[i] — value-predictable (stride 1).
    b.ld_idx(i, nb, i, 3, 0);
    // Complex MAC: acc += (re[i] + j·im[i]) · (cre + j·cim).
    b.lea(t1, rb, i, 3, 0);
    b.fld(xre, t1, 0);
    b.lea(t2, ib, i, 3, 0);
    b.fld(xim, t2, 0);
    b.fmul(p1, xre, cre);
    b.fmul(p2, xim, cim);
    b.fmul(p3, xre, cim);
    b.fmul(p4, xim, cre);
    b.fsub(p1, p1, p2);
    b.fadd(p3, p3, p4);
    b.fadd(acc_re, acc_re, p1);
    b.fadd(acc_im, acc_im, p3);
    b.addi(iter, iter, 1);
    b.bne(iter, bound, top);
    b.halt();
    b.build().expect("wupwise kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass, Opcode};

    #[test]
    fn index_chain_values_stride_by_one() {
        let t = generate_trace(&program(), 20_000).unwrap();
        let chain: Vec<u64> = t
            .insts
            .iter()
            .filter(|d| d.inst.op == Opcode::LdIdx)
            .map(|d| d.result)
            .collect();
        assert!(chain.len() > 500);
        let strided = chain.windows(2).filter(|w| w[1] == (w[0] + 1) % N as u64).count();
        assert!(
            strided as f64 / (chain.len() - 1) as f64 > 0.99,
            "chain must stride: {strided}/{}",
            chain.len()
        );
    }

    #[test]
    fn fp_fraction_is_substantial() {
        let t = generate_trace(&program(), 20_000).unwrap();
        let fp = t
            .insts
            .iter()
            .filter(|d| matches!(d.class(), InstClass::FpAlu | InstClass::FpMul | InstClass::FpDiv))
            .count();
        assert!(fp * 2 > t.len() / 2, "FP < 25%: {fp}/{}", t.len());
    }
}
