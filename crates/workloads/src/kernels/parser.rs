//! `parser`-like kernel (CPU2000 197.parser, INT; paper IPC ≈ 0.54).
//!
//! Reproduced traits: linkage-grammar dictionary walking — a *randomized*
//! pointer chase (nothing for the value predictor to grab), key loads with
//! data-dependent accept branches, and a working set sized to miss the L1
//! on nearly every hop. The serial chase caps ILP and keeps the IPC near
//! the paper's 0.5.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const NODES: usize = 32 * 1024; // 32K nodes × 16 B = 512 KB (L2-resident)

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x9a25);

    // Node i: [next_index, key], interleaved in one array.
    let next = gen::pointer_cycle(&mut rng, NODES);
    let mut nodes = Vec::with_capacity(NODES * 2);
    for n in next {
        nodes.push(n);
        nodes.push(rng.next_u64());
    }
    let base = b.add_data_u64(&nodes);

    let (nb, p, key, hits, steps, t) = (r(1), r(2), r(3), r(4), r(5), r(6));

    b.movi(nb, base as i64);
    b.movi(p, 0);
    b.movi(hits, 0);
    b.movi(steps, 0);
    let top = b.label();
    b.bind(top);
    // Serial random chase: p = nodes[p].next (scale 4 → 16-byte nodes).
    b.ld_idx(p, nb, p, 4, 0);
    b.lea(t, nb, p, 4, 8);
    b.ld(key, t, 0);
    // Data-dependent accept (≈ 1/8 taken).
    let miss = b.label();
    b.andi(t, key, 7);
    b.bne_imm(t, 0, miss);
    b.addi(hits, hits, 1);
    b.bind(miss);
    b.addi(steps, steps, 1);
    b.blt_imm(steps, 2_000_000_000, top);
    b.halt();
    b.build().expect("parser kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, Opcode};

    #[test]
    fn chase_addresses_look_random() {
        let t = generate_trace(&program(), 30_000).unwrap();
        let hops: Vec<u64> = t
            .insts
            .iter()
            .filter(|d| d.inst.op == Opcode::LdIdx)
            .map(|d| d.result)
            .collect();
        assert!(hops.len() > 1000);
        // No dominant stride: consecutive deltas should rarely repeat.
        let mut repeats = 0;
        for w in hops.windows(3) {
            if w[1].wrapping_sub(w[0]) == w[2].wrapping_sub(w[1]) {
                repeats += 1;
            }
        }
        assert!(
            (repeats as f64) < hops.len() as f64 * 0.05,
            "chase must be stride-free: {repeats}/{}",
            hops.len()
        );
    }

    #[test]
    fn accept_branch_fires_about_one_in_eight() {
        let t = generate_trace(&program(), 80_000).unwrap();
        // Branch stream: accept-miss (bne, taken ≈ 7/8) + loop (taken).
        let not_taken = t.branch_outcomes.iter().filter(|x| !**x).count();
        let frac = not_taken as f64 / t.branch_outcomes.len() as f64;
        assert!((0.02..0.15).contains(&frac), "not-taken fraction {frac:.3}");
    }
}
