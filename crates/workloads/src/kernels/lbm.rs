//! `lbm`-like kernel (CPU2006 470.lbm, FP; paper IPC ≈ 0.75).
//!
//! Reproduced traits: lattice-Boltzmann streaming — reads several
//! distribution functions at long strides from a 20 MB domain, a short
//! collision computation, and a streaming store. Bandwidth/DRAM-latency
//! bound with a prefetch-friendly access pattern; §3.4 puts lbm in the
//! lowest EOLE-offload group (<10 %).

use eole_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const CELLS: usize = 1 << 18; // 256K cells
const DIRS: i64 = 8;          // 8 distribution planes → 16 MB total

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let f = FpReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x1b30);

    let n = CELLS * DIRS as usize;
    let dist = b.add_data_f64(&gen::random_f64(&mut rng, n, 0.0, 1.0));
    let out = b.alloc_zeroed((CELLS * 8) as u64);

    let (db, ob, i, t, plane, lim) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let (acc, v, omega) = (f(1), f(2), f(3));

    b.movi(db, dist as i64);
    b.movi(ob, out as i64);
    b.movi(lim, CELLS as i64);
    b.movi(t, (0.6f64).to_bits() as i64);
    b.st(db, -8, t);
    b.fld(omega, db, -8);
    let pass_top = b.label();
    b.bind(pass_top);
    b.movi(i, 0);
    let top = b.label();
    b.bind(top);
    // Gather one value from each plane: stride = CELLS*8 bytes (2 MB),
    // guaranteeing DRAM pressure across planes.
    b.xor(plane, plane, plane);
    b.fsub(acc, acc, acc); // acc = 0
    b.shli(t, i, 3);
    b.add(t, t, db);
    for p in 0..DIRS {
        b.fld(v, t, p * (CELLS as i64) * 8);
        b.fadd(acc, acc, v);
    }
    b.fmul(acc, acc, omega);
    b.shli(t, i, 3);
    b.add(t, t, ob);
    b.fst(t, 0, acc);
    b.addi(i, i, 64); // long unit-of-64 stride: defeats the L1, feeds the prefetcher
    b.blt(i, lim, top);
    b.jmp(pass_top);
    b.halt();
    b.build().expect("lbm kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn loads_span_many_megabytes() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for d in t.insts.iter().filter(|d| d.is_load()) {
            lo = lo.min(d.addr);
            hi = hi.max(d.addr);
        }
        assert!(hi - lo > 8 << 20, "span = {} MB", (hi - lo) >> 20);
    }

    #[test]
    fn fp_plus_memory_dominate() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let fpmem = t
            .insts
            .iter()
            .filter(|d| {
                matches!(d.class(), InstClass::FpAlu | InstClass::FpMul)
                    || d.class().is_mem()
            })
            .count();
        assert!(fpmem as f64 / t.len() as f64 > 0.55);
    }
}
