//! `crafty`-like kernel (CPU2000 186.crafty, INT; paper IPC ≈ 1.77).
//!
//! Reproduced traits: chess bitboard manipulation — long runs of single-
//! cycle logic ops rich in *immediate* operands (SWAR popcount masks,
//! file/rank masks), a strided board index, and biased evaluation
//! branches. The paper's Fig. 13 finds crafty notably sensitive to
//! removing Early Execution; the immediate-seeded mask generation and
//! predictable index chains are what EE harvests here.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0xc4af);

    let boards = b.add_data_u64(&gen::random_u64(&mut rng, 8192));

    let (bb, k, bbv, t, t2, v, score, bonus) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let (m1, m2, m3, kff, atk, a, c, iter) = (r(9), r(10), r(11), r(12), r(13), r(14), r(15), r(16));
    let notfile = r(17);

    b.movi(bb, boards as i64);
    b.movi(k, 0);
    b.movi(iter, 0);
    b.movi(notfile, 0x7e7e_7e7e_7e7e_7e7eu64 as i64);
    let top = b.label();
    b.bind(top);
    // Strided board index (value-predictable; 8K-entry wrap keeps the
    // stride stable long enough for the FPC to saturate).
    b.addi(k, k, 1);
    b.andi(k, k, 8191);
    b.ld_idx(bbv, bb, k, 3, 0);
    // Immediate-seeded masks: pure EE fodder.
    b.movi(m1, 0x5555_5555_5555_5555u64 as i64);
    b.movi(m2, 0x3333_3333_3333_3333u64 as i64);
    b.movi(m3, 0x0f0f_0f0f_0f0f_0f0fu64 as i64);
    b.movi(kff, 0x0101_0101_0101_0101u64 as i64);
    // SWAR popcount of the board.
    b.shri(t, bbv, 1);
    b.and(t, t, m1);
    b.sub(v, bbv, t);
    b.and(t2, v, m2);
    b.shri(v, v, 2);
    b.and(v, v, m2);
    b.add(v, v, t2);
    b.shri(t, v, 4);
    b.add(v, v, t);
    b.and(v, v, m3);
    b.mul(v, v, kff);
    b.shri(v, v, 56);
    b.add(score, score, v);
    // Attack spread (shift-and-mask logic).
    b.shli(a, bbv, 8);
    b.shri(c, bbv, 8);
    b.or(atk, a, c);
    b.and(atk, atk, notfile);
    b.or(score, score, atk);
    // Biased evaluation branch: dense boards are rare.
    let skip = b.label();
    b.blt_imm(v, 40, skip);
    b.addi(bonus, bonus, 1);
    b.bind(skip);
    b.addi(iter, iter, 1);
    b.blt_imm(iter, 2_000_000_000, top);
    b.halt();
    b.build().expect("crafty kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass, Opcode};

    #[test]
    fn logic_heavy_integer_mix() {
        let t = generate_trace(&program(), 30_000).unwrap();
        let alu = t.insts.iter().filter(|d| d.class() == InstClass::IntAlu).count();
        assert!(alu as f64 / t.len() as f64 > 0.6, "crafty must be ALU-dominated");
    }

    #[test]
    fn many_immediate_seeded_ops() {
        let t = generate_trace(&program(), 30_000).unwrap();
        let movi = t.insts.iter().filter(|d| d.inst.op == Opcode::MovI).count();
        assert!(movi as f64 / t.len() as f64 > 0.08, "mask immediates feed EE");
    }
}
