//! `milc`-like kernel (CPU2006 433.milc, FP; paper IPC ≈ 0.46).
//!
//! Reproduced traits: lattice-QCD streaming — SU(3)-flavoured complex
//! multiplies marching through a 24 MB field with unit stride. The
//! prefetcher helps but bandwidth and DRAM latency dominate; §3.4 lists
//! milc among the lowest EOLE offload fractions (<10 %), so the kernel
//! keeps integer overhead minimal and FP/memory work dominant.

use eole_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const SITES: usize = 1 << 18; // 256K sites × 6 f64 = 12 MB per field

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let f = FpReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x317c);

    let field = b.add_data_f64(&gen::random_f64(&mut rng, SITES * 6, -1.0, 1.0));
    let out = b.alloc_zeroed((SITES * 2 * 8) as u64);

    let (fb, ob, i, t1, t2, lim) = (r(1), r(2), r(3), r(4), r(5), r(6));
    let (u0, u1, u2, v0, v1, v2) = (f(1), f(2), f(3), f(4), f(5), f(6));
    let (p0, p1, sre, sim) = (f(7), f(8), f(9), f(10));

    b.movi(fb, field as i64);
    b.movi(ob, out as i64);
    b.movi(lim, SITES as i64);
    let pass_top = b.label();
    b.bind(pass_top);
    b.movi(i, 0);
    let top = b.label();
    b.bind(top);
    // One site = 6 doubles (3 complex): stream them in.
    b.shli(t1, i, 3 + 2); // i * 48 via *32 + *16
    b.shli(t2, i, 3 + 1);
    b.add(t1, t1, t2);
    b.add(t1, t1, fb);
    b.fld(u0, t1, 0);
    b.fld(u1, t1, 8);
    b.fld(u2, t1, 16);
    b.fld(v0, t1, 24);
    b.fld(v1, t1, 32);
    b.fld(v2, t1, 40);
    // Complex dot-ish reduction.
    b.fmul(p0, u0, v0);
    b.fmul(p1, u1, v1);
    b.fadd(sre, p0, p1);
    b.fmul(p0, u2, v2);
    b.fadd(sre, sre, p0);
    b.fmul(p1, u0, v1);
    b.fsub(sim, p1, p0);
    b.shli(t2, i, 4);
    b.add(t2, t2, ob);
    b.fst(t2, 0, sre);
    b.fst(t2, 8, sim);
    b.addi(i, i, 1);
    b.blt(i, lim, top);
    b.jmp(pass_top);
    b.halt();
    b.build().expect("milc kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::generate_trace;

    #[test]
    fn memory_traffic_dominates() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let mem = t.insts.iter().filter(|d| d.class().is_mem()).count();
        let frac = mem as f64 / t.len() as f64;
        assert!(frac > 0.3, "memory fraction {frac:.2}");
    }

    #[test]
    fn streaming_addresses_are_unit_stride() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let addrs: Vec<u64> = t
            .insts
            .iter()
            .filter(|d| d.is_load() && d.size == 8)
            .map(|d| d.addr)
            .collect();
        // Within a site the six loads are 8 B apart; across sites 48 B.
        let mut small = 0;
        for w in addrs.windows(2) {
            if w[1].wrapping_sub(w[0]) <= 48 {
                small += 1;
            }
        }
        assert!(small as f64 / addrs.len() as f64 > 0.9);
    }
}
