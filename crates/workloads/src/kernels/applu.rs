//! `applu`-like kernel (CPU2000 173.applu, FP; paper IPC ≈ 1.59).
//!
//! Reproduced traits: SSOR-style 5-point stencil sweeps with constant
//! coefficients. The sweep is flattened into one long interior loop
//! (trip count ≈ 16K) so the strided index arithmetic stays stable far
//! beyond the FPC saturation horizon — applu is one of Fig. 6's clear VP
//! winners and loses >5 % at 4-issue without EOLE (Fig. 7). The 128×128
//! grid (128 KB + output) is L2-resident and prefetch-friendly.

use eole_isa::{FpReg, IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const DIM: i64 = 128;

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let f = FpReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0xa991);

    let n = (DIM * DIM) as usize;
    let grid = b.add_data_f64(&gen::random_f64(&mut rng, n, 0.0, 1.0));
    let out = b.alloc_zeroed((n * 8) as u64);

    let (gi, go, idx, lim, t1, t2, sweep) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
    let (c0, c1) = (f(1), f(2));
    let (cc, nn, ss, ee, ww, s1, s2) = (f(3), f(4), f(5), f(6), f(7), f(8), f(9));

    b.movi(gi, grid as i64);
    b.movi(go, out as i64);
    b.movi(lim, DIM * DIM - DIM - 1);
    // Constant coefficients parked just below the grid.
    b.movi(t1, (0.5f64).to_bits() as i64);
    b.st(gi, -16, t1);
    b.fld(c0, gi, -16);
    b.movi(t1, (0.125f64).to_bits() as i64);
    b.st(gi, -8, t1);
    b.fld(c1, gi, -8);
    b.movi(sweep, 0);
    let sweep_top = b.label();
    b.bind(sweep_top);
    b.movi(idx, DIM + 1);
    let top = b.label();
    b.bind(top);
    // Flattened interior walk: every integer value here strides by 1.
    b.lea(t1, gi, idx, 3, 0);
    b.fld(cc, t1, 0);
    b.fld(nn, t1, -(DIM * 8));
    b.fld(ss, t1, DIM * 8);
    b.fld(ww, t1, -8);
    b.fld(ee, t1, 8);
    b.fmul(s1, cc, c0);
    b.fadd(s2, nn, ss);
    b.fadd(ee, ee, ww);
    b.fadd(s2, s2, ee);
    b.fmul(s2, s2, c1);
    b.fadd(s1, s1, s2);
    b.lea(t2, go, idx, 3, 0);
    b.fst(t2, 0, s1);
    b.addi(idx, idx, 1);
    b.blt(idx, lim, top);
    b.addi(sweep, sweep, 1);
    b.blt_imm(sweep, 1_000_000, sweep_top);
    b.halt();
    b.build().expect("applu kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn branches_are_overwhelmingly_taken_loops() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let taken = t.branch_outcomes.iter().filter(|x| **x).count();
        assert!(
            taken as f64 / t.branch_outcomes.len() as f64 > 0.98,
            "one long flat loop: almost every branch is a taken back-edge"
        );
    }

    #[test]
    fn stencil_reads_five_points_per_store() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let loads = t.insts.iter().filter(|d| d.class() == InstClass::Load).count();
        let stores = t.insts.iter().filter(|d| d.class() == InstClass::Store).count();
        assert!(stores > 100);
        let ratio = loads as f64 / stores as f64;
        assert!((4.0..6.5).contains(&ratio), "load/store ratio = {ratio:.2}");
    }

    #[test]
    fn index_values_stride_for_thousands_of_instances() {
        let t = generate_trace(&program(), 40_000).unwrap();
        // Two lea streams interleave (grid and output pointers); each
        // strides by 8 against its same-parity predecessor.
        let leas: Vec<u64> = t
            .insts
            .iter()
            .filter(|d| d.inst.op == eole_isa::Opcode::Lea)
            .map(|d| d.result)
            .collect();
        let strided = leas.windows(3).filter(|w| w[2].wrapping_sub(w[0]) == 8).count();
        assert!(strided as f64 / leas.len() as f64 > 0.9, "{strided}/{}", leas.len());
    }
}
