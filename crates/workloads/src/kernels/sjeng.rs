//! `sjeng`-like kernel (CPU2006 458.sjeng, INT; paper IPC ≈ 1.32).
//!
//! Reproduced traits: game-tree search — shallow recursion through
//! call/ret, a hash-table probe per node (transposition table), and noisy
//! alpha-beta style pruning branches. Mixed predictability: the recursion
//! and loop structure predict well, the pruning decisions do not.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const TT_ENTRIES: i64 = 32768;

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x53e6);

    let tt = b.add_data_u64(&gen::random_u64(&mut rng, TT_ENTRIES as usize));
    let stack = b.alloc_zeroed(4096);

    let (ttb, seed, t, h, entry, score, depth, iter) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let (alpha, nodes, sp) = (r(9), r(10), r(11));

    let top = b.label();
    let node_fn = b.label();
    let leaf = b.label();
    let no_cut = b.label();

    b.movi(ttb, tt as i64);
    b.movi(sp, stack as i64);
    b.movi(seed, 0xbeef_cafe);
    b.movi(alpha, 5000);
    b.movi(iter, 0);
    b.bind(top);
    b.movi(depth, 3);
    b.call(node_fn);
    b.addi(iter, iter, 1);
    b.blt_imm(iter, 2_000_000_000, top);
    b.halt();

    // fn node(depth): probe TT, evaluate, recurse once if not pruned.
    b.bind(node_fn);
    b.addi(nodes, nodes, 1);
    // Advance the position hash.
    b.shli(t, seed, 13);
    b.xor(seed, seed, t);
    b.shri(t, seed, 7);
    b.xor(seed, seed, t);
    b.shli(t, seed, 17);
    b.xor(seed, seed, t);
    b.andi(h, seed, TT_ENTRIES - 1);
    b.ld_idx(entry, ttb, h, 3, 0);
    b.andi(score, entry, 0x3fff);
    // Pruning branch: near-random (score vs alpha).
    b.blt(score, alpha, no_cut);
    b.ret(); // beta cutoff
    b.bind(no_cut);
    b.beq_imm(depth, 0, leaf);
    // Recurse, spilling the link register to a real stack (single-register
    // saves break beyond depth 1).
    b.subi(depth, depth, 1);
    b.st(sp, 0, IntReg::LINK);
    b.addi(sp, sp, 8);
    b.call(node_fn);
    b.subi(sp, sp, 8);
    b.ld(IntReg::LINK, sp, 0);
    b.addi(depth, depth, 1);
    b.ret();
    b.bind(leaf);
    // Leaf evaluation: a little arithmetic.
    b.xor(t, score, seed);
    b.andi(t, t, 0xff);
    b.add(alpha, alpha, t);
    b.subi(alpha, alpha, 128); // keeps alpha wandering around 5000
    b.ret();

    b.build().expect("sjeng kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn recursion_produces_calls_and_returns() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let calls = t.insts.iter().filter(|d| d.class() == InstClass::Call).count();
        let rets = t.insts.iter().filter(|d| d.class() == InstClass::Return).count();
        assert!(calls > 500);
        // Truncation may leave up to one call chain (depth ≤ 4) open.
        assert!(calls >= rets && calls - rets <= 8, "calls {calls} vs rets {rets}");
    }

    #[test]
    fn pruning_branches_are_noisy() {
        let t = generate_trace(&program(), 60_000).unwrap();
        let taken = t.branch_outcomes.iter().filter(|x| **x).count();
        let frac = taken as f64 / t.branch_outcomes.len() as f64;
        assert!((0.25..0.95).contains(&frac), "taken fraction {frac:.2}");
    }
}
