//! `vortex`-like kernel (CPU2000 255.vortex, INT; paper IPC ≈ 1.78).
//!
//! Reproduced traits: an object-oriented in-memory database — method
//! dispatch through calls/returns (exercising the RAS), heavily *biased*
//! type-check branches, field loads/stores at constant offsets, and a
//! strided object scan. High IPC when control flow predicts well, which
//! it mostly does.

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::DataRng;

const OBJECTS: i64 = 8192; // × 32 B = 256 KB

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x0e7e);

    // Object: [type, a, b, pad]; type 0 dominates (82 %).
    let mut objs = Vec::with_capacity(OBJECTS as usize * 4);
    for _ in 0..OBJECTS {
        let ty = match rng.below(100) {
            0..=81 => 0u64,
            82..=91 => 1,
            92..=97 => 2,
            _ => 3,
        };
        objs.push(ty);
        objs.push(rng.below(1000));
        objs.push(rng.below(1000));
        objs.push(0);
    }
    let base = b.add_data_u64(&objs);

    let (ob, oid, addr, ty, fa, fb, iter, total) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));

    let top = b.label();
    let not0 = b.label();
    let not1 = b.label();
    let done = b.label();
    let m_update = b.label();
    let m_sum = b.label();
    let m_scale = b.label();

    b.movi(ob, base as i64);
    b.movi(oid, 0);
    b.movi(iter, 0);
    b.movi(total, 0);

    b.bind(top);
    b.addi(oid, oid, 1);
    b.andi(oid, oid, OBJECTS - 1);
    b.lea(addr, ob, oid, 5, 0);
    b.ld(ty, addr, 0);
    // Type switch: the common case (type 0) falls straight into its call.
    b.bne_imm(ty, 0, not0);
    b.call(m_update);
    b.jmp(done);
    b.bind(not0);
    b.bne_imm(ty, 1, not1);
    b.call(m_sum);
    b.jmp(done);
    b.bind(not1);
    b.call(m_scale);
    b.bind(done);
    b.addi(iter, iter, 1);
    b.blt_imm(iter, 2_000_000_000, top);
    b.halt();

    // Method bodies: field read-modify-write at fixed offsets.
    b.bind(m_update);
    b.ld(fa, addr, 8);
    b.ld(fb, addr, 16);
    b.add(fa, fa, fb);
    b.st(addr, 8, fa);
    b.ret();
    b.bind(m_sum);
    b.ld(fa, addr, 8);
    b.add(total, total, fa);
    b.ret();
    b.bind(m_scale);
    b.ld(fb, addr, 16);
    b.shli(fb, fb, 1);
    b.st(addr, 16, fb);
    b.ret();

    b.build().expect("vortex kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn calls_and_returns_are_frequent() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let calls = t.insts.iter().filter(|d| d.class() == InstClass::Call).count();
        let rets = t.insts.iter().filter(|d| d.class() == InstClass::Return).count();
        assert!(calls > 1000, "calls = {calls}");
        // At most one call may be outstanding at truncation time.
        assert!(calls.abs_diff(rets) <= 1, "calls {calls} vs rets {rets}");
    }

    #[test]
    fn type_checks_are_biased_not_taken() {
        let t = generate_trace(&program(), 40_000).unwrap();
        let not_taken = t.branch_outcomes.iter().filter(|x| !**x).count();
        let frac = not_taken as f64 / t.branch_outcomes.len() as f64;
        // The common type-0 check falls through (not taken); loop branch taken.
        assert!((0.2..0.6).contains(&frac), "not-taken fraction {frac:.2}");
    }
}
