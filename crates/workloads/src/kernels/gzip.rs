//! `gzip`-like kernel (CPU2000 164.gzip, INT; paper baseline IPC ≈ 0.98).
//!
//! Reproduced traits: LZ-style compression front end — rolling 4-byte hash
//! over compressible text, hash-table probe + update, short data-dependent
//! match-extension loops. Branch behaviour is mixed (loop branches
//! predictable, match/no-match data-dependent); value predictability is
//! moderate (the position counter and address arithmetic stride, the hash
//! and text bytes do not).

use eole_isa::{IntReg, Program, ProgramBuilder};

use crate::gen::{self, DataRng};

const TEXT_BYTES: usize = 64 * 1024;
const HASH_ENTRIES: i64 = 8192;

/// Builds the kernel.
pub fn program() -> Program {
    let r = IntReg::new;
    let mut b = ProgramBuilder::new();
    let mut rng = DataRng::new(0x9219);

    let text = b.add_data(gen::pseudo_text(&mut rng, TEXT_BYTES));
    let hash = b.alloc_zeroed(HASH_ENTRIES as u64 * 8);

    let (pos, end, tb, hb) = (r(1), r(2), r(3), r(4));
    let (word, h, prev, t1, t2) = (r(5), r(6), r(7), r(8), r(9));
    let (mlen, ca, cb, matches, kmul) = (r(10), r(11), r(12), r(13), r(14));
    let outer = r(15);

    b.movi(tb, text as i64);
    b.movi(hb, hash as i64);
    b.movi(matches, 0);
    b.movi(outer, 0);
    b.movi(kmul, 0x9e3779b1);
    let outer_top = b.label();
    b.bind(outer_top);
    b.movi(pos, 0);
    b.movi(end, (TEXT_BYTES - 64) as i64);
    let top = b.label();
    b.bind(top);
    // Rolling hash of the 4 bytes at `pos`.
    b.add(t1, tb, pos);
    b.ld32(word, t1, 0);
    b.mul(h, word, kmul);
    b.shri(h, h, 16);
    b.andi(h, h, HASH_ENTRIES - 1);
    // Probe and update the chain head.
    b.ld_idx(prev, hb, h, 3, 0);
    b.lea(t2, hb, h, 3, 0);
    b.st(t2, 0, pos);
    let no_match = b.label();
    b.beq_imm(prev, 0, no_match);
    // Extend the candidate match up to 8 bytes (data dependent).
    b.movi(mlen, 0);
    let mtop = b.label();
    let mdone = b.label();
    b.bind(mtop);
    b.add(t1, tb, prev);
    b.add(t1, t1, mlen);
    b.ld8(ca, t1, 0);
    b.add(t2, tb, pos);
    b.add(t2, t2, mlen);
    b.ld8(cb, t2, 0);
    b.bne(ca, cb, mdone);
    b.addi(mlen, mlen, 1);
    b.blt_imm(mlen, 8, mtop);
    b.bind(mdone);
    b.add(matches, matches, mlen);
    b.bind(no_match);
    b.addi(pos, pos, 1);
    b.blt(pos, end, top);
    b.addi(outer, outer, 1);
    b.blt_imm(outer, 1_000_000, outer_top);
    b.halt();
    b.build().expect("gzip kernel assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_isa::{generate_trace, InstClass};

    #[test]
    fn mix_has_loads_stores_and_branches() {
        let t = generate_trace(&program(), 30_000).unwrap();
        let loads = t.insts.iter().filter(|d| d.class() == InstClass::Load).count();
        let stores = t.insts.iter().filter(|d| d.class() == InstClass::Store).count();
        let branches = t.insts.iter().filter(|d| d.inst.is_cond_branch()).count();
        assert!(loads * 10 > t.len(), "loads < 10%");
        assert!(stores > 0);
        assert!(branches * 3 > t.len() / 10, "branches < 3%");
    }

    #[test]
    fn match_branches_are_data_dependent() {
        let t = generate_trace(&program(), 50_000).unwrap();
        // The bne at the match comparison must go both ways.
        let outcomes: Vec<bool> = t.branch_outcomes.clone();
        let taken = outcomes.iter().filter(|t| **t).count();
        assert!(taken > 0 && taken < outcomes.len());
    }
}
