//! # eole-workloads
//!
//! A 19-program synthetic benchmark suite mirroring the paper's Table 3
//! (12 INT + 7 FP, named after their SPEC CPU2000/2006 counterparts).
//! SPEC sources and reference inputs are not redistributable, so each
//! kernel reproduces the *behavioural profile* the paper reports for its
//! namesake — see `DESIGN.md` §1 for the substitution argument and each
//! kernel module for its specific targets.
//!
//! ## Example
//!
//! ```
//! use eole_workloads::{all_workloads, workload_by_name};
//!
//! assert_eq!(all_workloads().len(), 19);
//! let namd = workload_by_name("namd").expect("namd exists");
//! let trace = namd.trace(10_000).expect("kernel runs");
//! assert!(trace.len() >= 9_999);
//! ```

#![forbid(unsafe_code)]

pub mod gen;
pub mod kernels;
mod registry;

pub use registry::{all_workloads, workload_by_name, Kind, Suite, Workload};
