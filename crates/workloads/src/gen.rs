//! Deterministic data generation for workload kernels.
//!
//! All kernels build their input data from this seeded xorshift so traces
//! are bit-reproducible run to run.

/// Seeded xorshift64* generator for kernel input data.
#[derive(Clone, Debug)]
pub struct DataRng {
    state: u64,
}

impl DataRng {
    /// Creates a generator (zero maps to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        DataRng { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// `n` random u64 words.
pub fn random_u64(rng: &mut DataRng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.next_u64()).collect()
}

/// `n` random bytes.
pub fn random_bytes(rng: &mut DataRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

/// `n` random f64 values in `[lo, hi)`.
pub fn random_f64(rng: &mut DataRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| lo + rng.next_f64() * (hi - lo)).collect()
}

/// A random permutation cycle over `n` slots: `perm[i]` holds the index of
/// the next element, forming one cycle that visits every slot — the
/// canonical pointer-chase working set (mcf/parser-style).
pub fn pointer_cycle(rng: &mut DataRng, n: usize) -> Vec<u64> {
    let mut order: Vec<u64> = (0..n as u64).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    let mut next = vec![0u64; n];
    for w in 0..n {
        next[order[w] as usize] = order[(w + 1) % n];
    }
    next
}

/// Compressible pseudo-text: repeated small vocabulary with noise.
pub fn pseudo_text(rng: &mut DataRng, n: usize) -> Vec<u8> {
    let words: Vec<&[u8]> = vec![
        b"the ", b"of ", b"and ", b"value ", b"predict ", b"pipeline ", b"register ",
        b"cache ", b"issue ", b"commit ",
    ];
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if rng.below(8) == 0 {
            out.push(rng.next_u64() as u8); // noise byte
        } else {
            out.extend_from_slice(words[rng.below(words.len() as u64) as usize]);
        }
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = DataRng::new(5);
        let mut b = DataRng::new(5);
        assert_eq!(random_u64(&mut a, 16), random_u64(&mut b, 16));
    }

    #[test]
    fn pointer_cycle_visits_everything() {
        let mut rng = DataRng::new(9);
        let n = 64;
        let next = pointer_cycle(&mut rng, n);
        let mut seen = vec![false; n];
        let mut p = 0u64;
        for _ in 0..n {
            assert!(!seen[p as usize], "revisited {p} early");
            seen[p as usize] = true;
            p = next[p as usize];
        }
        assert_eq!(p, 0, "must return to start after n hops");
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn pseudo_text_is_mostly_ascii() {
        let mut rng = DataRng::new(1);
        let text = pseudo_text(&mut rng, 1000);
        let ascii = text.iter().filter(|b| b.is_ascii_lowercase() || **b == b' ').count();
        assert!(ascii > 700, "ascii fraction too low: {ascii}");
    }

    #[test]
    fn random_f64_in_range() {
        let mut rng = DataRng::new(2);
        for v in random_f64(&mut rng, 100, 1.0, 2.0) {
            assert!((1.0..2.0).contains(&v));
        }
    }
}
