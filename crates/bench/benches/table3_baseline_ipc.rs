//! Criterion bench regenerating Table 3 — baseline IPC per workload
//! at reduced scale (two representative workloads, short windows); the
//! full-suite numbers come from the `experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use eole_bench::experiments::ExperimentSet;
use eole_bench::Runner;

fn bench(c: &mut Criterion) {
    let set = ExperimentSet::with_workloads(Runner::quick(), &["gzip", "namd"]);
    let mut g = c.benchmark_group("table3_baseline_ipc");
    g.sample_size(10);
    g.bench_function("regenerate", |b| b.iter(|| set.table3()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
