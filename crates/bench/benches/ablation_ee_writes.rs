//! Ablation from §6.3's "further possible hardware optimizations": cap the
//! number of Early-Execution/prediction PRF writes per bank per dispatch
//! group (the paper suggests ~4 writes per group of 8 suffices).
//!
//! Measures the simulated IPC impact of caps 1, 2 and ∞ on a high-offload
//! workload, and Criterion-times the runs.

use criterion::{criterion_group, criterion_main, Criterion};
use eole_bench::Runner;
use eole_core::config::CoreConfig;
use eole_workloads::workload_by_name;

fn config_with_cap(cap: Option<usize>) -> CoreConfig {
    let mut c = CoreConfig::eole_4_64_banked(4);
    c.eole.ee_writes_per_bank = cap;
    if let Some(k) = cap {
        c.name = format!("EOLE_4_64_4banks_eewr{k}");
    }
    c
}

fn bench(c: &mut Criterion) {
    let runner = Runner::quick();
    let w = workload_by_name("namd").expect("namd exists");
    let trace = runner.prepare(&w);

    // Report the ablation result once (visible in bench output).
    for cap in [Some(1), Some(2), None] {
        let s = runner.run(&trace, config_with_cap(cap));
        println!(
            "ee_writes_per_bank={:?}: IPC {:.3}, dispatch-group cuts {}",
            cap, s.ipc(), s.ee_write_stalls
        );
    }

    let mut g = c.benchmark_group("ablation_ee_writes");
    g.sample_size(10);
    for cap in [Some(1), Some(2), None] {
        let label = match cap {
            Some(k) => format!("cap{k}"),
            None => "uncapped".to_string(),
        };
        g.bench_function(&label, |b| b.iter(|| runner.run(&trace, config_with_cap(cap))));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
