//! Component micro-benchmarks: throughput of the individual structures the
//! pipeline calls every cycle (TAGE, VTAGE-2DStride, caches, DRAM). Useful
//! for tracking simulator performance regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use eole_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use eole_predictors::branch::{DirectionPredictor, Tage};
use eole_predictors::history::BranchHistory;
use eole_predictors::value::{ValuePredictor, VtageTwoDeltaStride};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");

    g.bench_function("tage_predict_update", |b| {
        let mut tage = Tage::paper(1);
        let mut hist = BranchHistory::new();
        for i in 0..1024 {
            hist.push(i % 7 != 0);
        }
        let mut i = 0u64;
        b.iter(|| {
            let pc = 0x40 + (i % 32) * 4;
            let view = hist.view(1024);
            let p = tage.predict(pc, view);
            tage.update(pc, view, p.taken ^ i.is_multiple_of(13));
            i += 1;
        })
    });

    g.bench_function("vtage_2dstride_predict", |b| {
        let mut vp = VtageTwoDeltaStride::paper(2);
        let hist = BranchHistory::from_outcomes(&vec![true; 700]);
        let mut i = 0u64;
        b.iter(|| {
            let pc = (i % 128) * 4;
            let view = hist.view(700);
            let _ = vp.predict(pc, view);
            vp.train(pc, view, i);
            i += 1;
        })
    });

    g.bench_function("l1_hit_path", |b| {
        let mut mem = MemoryHierarchy::new(&HierarchyConfig::paper());
        // Warm one line.
        let t0 = mem.load(0x10, 0x4000, 0);
        let mut cycle = t0;
        b.iter(|| {
            cycle = mem.load(0x10, 0x4000, cycle);
        })
    });

    g.bench_function("dram_streaming", |b| {
        let mut mem = MemoryHierarchy::new(&HierarchyConfig::paper());
        let mut addr = 0x100_0000u64;
        let mut cycle = 0u64;
        b.iter(|| {
            cycle = mem.load(0x20, addr, cycle);
            addr += 4096; // new line, new page: misses all the way down
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
