//! Criterion bench for Table 2: predictor construction and storage
//! accounting, plus steady-state predict/train throughput of the paper's
//! hybrid (the structure whose lookup bandwidth the front end depends on).

use criterion::{criterion_group, criterion_main, Criterion};
use eole_bench::experiments::ExperimentSet;
use eole_bench::Runner;
use eole_predictors::history::BranchHistory;
use eole_predictors::value::{ValuePredictor, VtageTwoDeltaStride};

fn bench(c: &mut Criterion) {
    let set = ExperimentSet::with_workloads(Runner::quick(), &["gzip"]);
    let mut g = c.benchmark_group("table2_predictor_layout");
    g.bench_function("render", |b| b.iter(|| set.table2()));
    g.bench_function("hybrid_predict_train", |b| {
        let mut vp = VtageTwoDeltaStride::paper(7);
        let hist = BranchHistory::from_outcomes(&vec![true; 256]);
        let mut i = 0u64;
        b.iter(|| {
            let pc = 0x100 + (i % 64) * 4;
            let view = hist.view(256);
            let _ = vp.predict(pc, view);
            vp.train(pc, view, i * 8);
            i += 1;
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
