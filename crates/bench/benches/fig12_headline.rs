//! Criterion bench regenerating Fig. 12 — headline summary
//! at reduced scale (two representative workloads, short windows); the
//! full-suite numbers come from the `experiments` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use eole_bench::experiments::ExperimentSet;
use eole_bench::Runner;

fn bench(c: &mut Criterion) {
    let set = ExperimentSet::with_workloads(Runner::quick(), &["gzip", "namd"]);
    let mut g = c.benchmark_group("fig12_headline");
    g.sample_size(10);
    g.bench_function("regenerate", |b| b.iter(|| set.fig12()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
