//! Criterion bench for Table 1: configuration construction + validation
//! (static, so this measures harness overheads rather than simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use eole_bench::experiments::ExperimentSet;
use eole_bench::Runner;
use eole_core::config::CoreConfig;

fn bench(c: &mut Criterion) {
    let set = ExperimentSet::with_workloads(Runner::quick(), &["gzip"]);
    let mut g = c.benchmark_group("table1_config");
    g.bench_function("render", |b| b.iter(|| set.table1()));
    g.bench_function("validate_all_presets", |b| {
        b.iter(|| {
            for cfg in [
                CoreConfig::baseline_6_64(),
                CoreConfig::baseline_vp_6_64(),
                CoreConfig::eole_4_64(),
                CoreConfig::eole_4_64_ports(4, 4),
            ] {
                cfg.validate().unwrap();
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
