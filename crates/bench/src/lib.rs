//! # eole-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5–§6) over the synthetic Table 3 suite.
//!
//! The harness is split into three layers, mirroring how trace-driven
//! simulators separate "describe a run", "execute many runs", and
//! "report results":
//!
//! * **Spec** ([`spec`]) — [`RunSpec`] describes one run (configuration ×
//!   workload × methodology × seed) and [`Grid`] enumerates the
//!   cross-product, in workload-major order.
//! * **Executor** ([`exec`]) — [`Executor`] schedules individual runs
//!   across a work-stealing thread pool, shares prepared traces through a
//!   keyed [`TraceCache`] (one generation per (workload, length)), and
//!   returns `Result<SimStats, RunError>` per run instead of panicking.
//! * **Report** — every experiment in [`experiments::ExperimentSet`]
//!   returns an [`eole_stats::report::ExperimentReport`], which renders
//!   to text/Markdown and serializes to JSON/CSV (`EXPERIMENTS.md`
//!   documents the JSON schema).
//!
//! Around those sit the run-identity layers added by the canonical-run
//! redesign:
//!
//! * **Store** ([`store`]) — [`RunKey`] is the content-addressed
//!   identity of a run (config digest × workload × methodology × seed ×
//!   [`eole_core::canon::SIM_FINGERPRINT_VERSION`]); a [`ResultStore`]
//!   ([`MemStore`] in memory, [`DirStore`] on disk) remembers completed
//!   runs so unchanged cells are never re-simulated.
//! * **Plan** ([`plan`]) — [`Shard`]/[`Plan`] partition a grid across
//!   processes deterministically (ownership is a pure function of the
//!   run key) and merge shard outputs back into grid order.
//! * **Session** ([`session`]) — the single driver (store + trace cache +
//!   executor + report emitters) behind the `experiments`,
//!   `sim-throughput`, and `fingerprints` bins.
//!
//! The `experiments` CLI drives it all:
//! `cargo run --release -p eole-bench --bin experiments -- all --format json`.
//!
//! ## Example
//!
//! ```no_run
//! use eole_bench::{Executor, Grid, Runner};
//! use eole_core::config::CoreConfig;
//!
//! let grid = Grid::new()
//!     .runner(Runner::quick())
//!     .configs([CoreConfig::baseline_vp_6_64(), CoreConfig::eole_4_64()])
//!     .workload_names(&["gzip", "namd"]);
//! let results = Executor::new().run(&grid);
//! for r in &results {
//!     match &r.outcome {
//!         Ok(stats) => println!("{}: IPC {:.3}", r.spec.label(), stats.ipc()),
//!         Err(e) => eprintln!("{}: {e}", r.spec.label()),
//!     }
//! }
//! ```

#![forbid(unsafe_code)]

pub mod compare;
pub mod exec;
pub mod experiments;
pub mod faults;
pub mod plan;
pub mod remote;
pub mod session;
pub mod spec;
pub mod store;

pub use compare::Comparison;
pub use exec::{Executor, RunError, RunPhase, RunResult, TraceCache};
pub use faults::FaultPlan;
pub use plan::{Plan, Shard};
pub use remote::RemoteStore;
pub use session::{Format, Session, SessionBuilder, StoreSummary, TimedIntervals, TimedRun};
pub use spec::{Grid, RunSpec};
pub use store::{DirStore, MemStore, ResultStore, RunKey, StoreError, WarmKey, WARM_STEM_PREFIX};
pub use eole_core::pipeline::{WarmState, WARMSTATE_FORMAT};

use eole_core::config::CoreConfig;
use eole_core::pipeline::{PreparedTrace, Simulator};
use eole_core::stats::SimStats;
use eole_stats::report::json_string;
use eole_workloads::Workload;

/// The VP-eligible µ-op stream of a prepared trace, as
/// `(pc, history position, actual value)` triples — the input shape of
/// `eole_predictors::value::evaluate_stream`. One definition shared by
/// the `dvtage_budget` experiment and the `sim-throughput` predictor
/// microbench, so offline evaluations can never disagree on eligibility
/// or address formation.
pub fn vp_stream(trace: &PreparedTrace) -> Vec<(u64, u32, u64)> {
    trace
        .insts()
        .iter()
        .filter(|di| di.inst.is_vp_eligible())
        .map(|di| (eole_isa::Program::inst_addr(di.pc), di.bhist_pos, di.result))
        .collect()
}

/// Interval-parallel execution policy: split one run's measurement
/// region into `k` deterministic intervals, warm each with a
/// functional-warmup prefix of `warmup` µ-ops, simulate them
/// independently, and stitch the per-interval [`SimStats`] into one
/// result (see `PERF.md`, "Interval-parallel simulation").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntervalPolicy {
    /// Number of intervals (`<= 1` means serial execution).
    pub k: u32,
    /// Predictor/cache warmup window simulated before each interval's
    /// measurement region (µ-ops).
    pub warmup: u64,
}

impl IntervalPolicy {
    /// A policy of `k` intervals with the methodology's default warmup
    /// window ([`Runner::default_interval_warmup`]).
    pub fn of(k: u32, runner: &Runner) -> Self {
        IntervalPolicy { k, warmup: runner.default_interval_warmup() }
    }

    /// True when this policy actually splits the run.
    pub fn is_split(&self) -> bool {
        self.k > 1
    }
}

/// Relative cycle-error budget of a stitched run against the
/// exact-boundary serial run (0.5%): the `EOLE_INTERVAL_PARANOID=1` mode
/// and the golden stitched-vs-serial table both pin it.
pub const INTERVAL_CYCLE_BUDGET: f64 = 0.005;

/// How a checkpoint reached the chained sweep's sink: served by the
/// fetch hook (a store hit, validated against the live configuration)
/// or built by functional replay (worth publishing to the store).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmOrigin {
    /// Fetched from a cache and validated.
    Loaded,
    /// Built by the sweep's functional replay.
    Built,
}

/// Accounting of one chained checkpoint sweep
/// ([`Runner::try_sweep_warm_states`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmSweepStats {
    /// µ-ops functionally replayed by the sweep. The O(trace) contract:
    /// with no cached checkpoints this is exactly the last checkpoint
    /// position (one trace prefix); with a fully warm cache it is zero.
    pub swept: u64,
    /// Checkpoints served by the fetch hook (store hits).
    pub loaded: usize,
    /// Checkpoints built by functional replay (published via the sink).
    pub built: usize,
}

impl WarmSweepStats {
    /// Folds another sweep's accounting into this one (executor-level
    /// totals across runs).
    pub fn merge(&mut self, other: &WarmSweepStats) {
        self.swept += other.swept;
        self.loaded += other.loaded;
        self.built += other.built;
    }
}

/// True when `EOLE_INTERVAL_PARANOID=1`-style validation is requested:
/// every stitched run also executes the serial comparator, reports the
/// delta on stderr, and panics if committed/squashed counts diverge or
/// the cycle error exceeds [`INTERVAL_CYCLE_BUDGET`]. Read once (the
/// executor consults this per stitched run).
pub fn interval_paranoid() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("EOLE_INTERVAL_PARANOID").is_some())
}

/// Warmup/measurement methodology for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    /// µ-ops simulated before counters reset (caches/predictors warm up).
    pub warmup: u64,
    /// µ-ops measured after the reset.
    pub measure: u64,
}

impl Default for Runner {
    fn default() -> Self {
        Runner { warmup: 100_000, measure: 200_000 }
    }
}

impl Runner {
    /// A fast configuration for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        Runner { warmup: 10_000, measure: 25_000 }
    }

    /// Total trace length needed.
    pub fn trace_len(&self) -> u64 {
        self.warmup + self.measure + 16
    }

    /// Generates the workload's trace once (shareable across configs).
    ///
    /// # Errors
    ///
    /// [`RunError::Kernel`] if the kernel fails to execute.
    pub fn try_prepare(&self, workload: &Workload) -> Result<PreparedTrace, RunError> {
        let trace = workload.trace(self.trace_len()).map_err(|e| RunError::Kernel {
            workload: workload.name.to_string(),
            reason: e.to_string(),
        })?;
        Ok(PreparedTrace::new(trace))
    }

    /// Runs one configuration over a prepared trace: warm up, reset
    /// counters, measure.
    ///
    /// # Errors
    ///
    /// [`RunError::Sim`] on configuration rejection or simulator deadlock,
    /// tagged with the phase that failed. (The workload field is filled by
    /// the [`Executor`]; direct callers get `"-"`.)
    pub fn try_run(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
    ) -> Result<SimStats, RunError> {
        self.try_run_timed(trace, config).map(|(stats, _)| stats)
    }

    /// [`Runner::try_run`] plus the wall-clock seconds the measurement
    /// window took — the one definition of the build/warmup/measure
    /// sequence, so the throughput harness times exactly the execution
    /// the experiment harness reports.
    ///
    /// # Errors
    ///
    /// As [`Runner::try_run`].
    pub fn try_run_timed(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
    ) -> Result<(SimStats, f64), RunError> {
        let name = config.name.clone();
        let err = |phase: RunPhase, source| RunError::Sim {
            config: name.clone(),
            workload: "-".to_string(),
            phase,
            source,
        };
        let mut sim =
            Simulator::new(trace, config).map_err(|e| err(RunPhase::Build, e))?;
        sim.run(self.warmup).map_err(|e| err(RunPhase::Warmup, e))?;
        sim.begin_measurement();
        let start = std::time::Instant::now();
        sim.run(self.measure).map_err(|e| err(RunPhase::Measure, e))?;
        let seconds = start.elapsed().as_secs_f64();
        Ok((sim.stats(), seconds))
    }

    /// Default per-interval functional-warmup window: half the
    /// methodology's own warmup (floored at 1 000 µ-ops). Enough to warm
    /// caches and predictor tables on the Table 3 kernels while keeping
    /// the total redundant work (`k × warmup`) well under the measured
    /// region for the quick suite.
    pub fn default_interval_warmup(&self) -> u64 {
        (self.warmup / 2).max(1_000)
    }

    /// The measurement-region boundaries of a `k`-way interval split, as
    /// half-open `[start, end)` windows in committed-µ-op positions.
    /// Commit order is trace order, so these are also trace indices: the
    /// windows partition `[warmup, warmup + measure)` exactly, with the
    /// remainder spread across intervals (`start_i = warmup +
    /// ⌊i·measure/k⌋`).
    pub fn interval_bounds(&self, k: u32) -> Vec<(u64, u64)> {
        let k = u64::from(k).max(1);
        (0..k)
            .map(|i| {
                (
                    self.warmup + i * self.measure / k,
                    self.warmup + (i + 1) * self.measure / k,
                )
            })
            .collect()
    }

    /// One interval piece: builds a simulator at `start - warmup_window`
    /// (clamped at the trace head), warms it to `start` with exact
    /// commit boundaries, resets counters, and measures `[start, end)`
    /// exactly. The serial comparator is the single piece
    /// `[warmup, warmup + measure)` with `warmup_window = warmup` —
    /// i.e. [`Runner::try_run_serial_exact`].
    ///
    /// # Errors
    ///
    /// [`RunError::Sim`] tagged with the failing phase, as
    /// [`Runner::try_run`] (workload attributed by the executor).
    pub fn try_run_piece(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
        start: u64,
        end: u64,
        warmup_window: u64,
    ) -> Result<SimStats, RunError> {
        let name = config.name.clone();
        let err = |phase: RunPhase, source| RunError::Sim {
            config: name.clone(),
            workload: "-".to_string(),
            phase,
            source,
        };
        let warm_from = start.saturating_sub(warmup_window);
        let mut sim = Simulator::new_at(trace, config, warm_from as usize)
            .map_err(|e| err(RunPhase::Build, e))?;
        sim.run_exact(start - warm_from).map_err(|e| err(RunPhase::Warmup, e))?;
        sim.begin_measurement();
        sim.run_exact(end.saturating_sub(start)).map_err(|e| err(RunPhase::Measure, e))?;
        Ok(sim.stats())
    }

    /// The exact-boundary serial run: identical methodology to
    /// [`Runner::try_run`] except that the warmup and measurement windows
    /// are cut at exactly `warmup` and `measure` commits instead of
    /// overshooting into the next commit group. This is the comparator
    /// every stitched run is validated against — a 1-interval stitched
    /// run *is* this run, bit for bit.
    ///
    /// # Errors
    ///
    /// As [`Runner::try_run`].
    pub fn try_run_serial_exact(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
    ) -> Result<SimStats, RunError> {
        self.try_run_piece(trace, config, self.warmup, self.warmup + self.measure, self.warmup)
    }

    /// Interval-parallel methodology, sequentially: simulates each of the
    /// policy's `k` intervals in turn and stitches the per-interval stats
    /// with [`SimStats::merge`]. The committed count is exactly `measure`
    /// by construction. (The executor parallelizes the same pieces across
    /// its worker pool; this entry point is the single-threaded
    /// reference, and the one the compat-proptests drive.)
    ///
    /// # Errors
    ///
    /// The first failing piece's [`RunError`].
    pub fn try_run_intervals(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
        policy: IntervalPolicy,
    ) -> Result<SimStats, RunError> {
        let mut stitched = SimStats::default();
        for (start, end) in self.interval_bounds(policy.k) {
            let piece = self.try_run_piece(trace, config.clone(), start, end, policy.warmup)?;
            stitched.merge(&piece);
        }
        if interval_paranoid() {
            let serial = self.try_run_serial_exact(trace, config.clone())?;
            check_stitched_against_serial(&config.name, policy, &stitched, &serial);
        }
        Ok(stitched)
    }

    /// The warm-state checkpoint positions of a `k`-way split: piece `i`'s
    /// checkpoint sits at `start_i − warmup` (clamped at the trace head) —
    /// exactly where [`Runner::try_run_piece`] would land after its
    /// functional replay, just before the detailed warmup window begins.
    /// Non-decreasing by construction (starts increase, the window is
    /// constant), which is what lets one chained sweep emit all of them
    /// in a single O(trace) forward pass.
    pub fn warm_positions(&self, policy: IntervalPolicy) -> Vec<u64> {
        self.interval_bounds(policy.k)
            .iter()
            .map(|(start, _)| start.saturating_sub(policy.warmup))
            .collect()
    }

    /// One chained producer sweep: a single functional pass over the
    /// trace that emits the [`WarmState`] checkpoint at every requested
    /// position, in order. Total functional work is O(max position) —
    /// one trace prefix — instead of the Σ O(prefix_i) ≈ k·T/2 the
    /// independent per-piece replays of [`Runner::try_run_intervals`]
    /// cost.
    ///
    /// `fetch(i, pos)` may supply a cached checkpoint (a store lookup);
    /// a hit is *validated* (position match + clean restore into the
    /// sweep simulator) before it is trusted — damaged bytes degrade to
    /// a rebuild: the sweep simulator is reconstructed from the last
    /// known-good checkpoint and replays forward. When every fetch hits,
    /// the sweep performs zero functional work.
    ///
    /// `sink(i, pos, state, origin)` observes every checkpoint the
    /// moment it is final (validated-loaded or freshly built), in
    /// position order — the executor uses it to unblock waiting piece
    /// jobs and to publish built checkpoints to the store.
    ///
    /// # Errors
    ///
    /// [`RunError::Sim`] if the configuration is rejected at
    /// construction (functional warming itself is infallible).
    pub fn try_sweep_warm_states(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
        positions: &[u64],
        mut fetch: impl FnMut(usize, u64) -> Option<WarmState>,
        mut sink: impl FnMut(usize, u64, &WarmState, WarmOrigin),
    ) -> Result<(Vec<WarmState>, WarmSweepStats), RunError> {
        let name = config.name.clone();
        let build_err = |source| RunError::Sim {
            config: name.clone(),
            workload: "-".to_string(),
            phase: RunPhase::Build,
            source,
        };
        let mut sim = Simulator::new(trace, config.clone()).map_err(&build_err)?;
        let mut out: Vec<WarmState> = Vec::with_capacity(positions.len());
        let mut stats = WarmSweepStats::default();
        for (i, &pos) in positions.iter().enumerate() {
            if let Some(cached) = fetch(i, pos) {
                let valid = cached.position().map(|p| p == pos).unwrap_or(false)
                    && sim.restore_warm(&cached).is_ok();
                if valid {
                    stats.loaded += 1;
                    sink(i, pos, &cached, WarmOrigin::Loaded);
                    out.push(cached);
                    continue;
                }
                // The fetched bytes were damaged or mis-shaped; a failed
                // restore may have left the sweep simulator partially
                // overwritten, so rebuild it — fresh construction, then
                // the last known-good checkpoint (if any) so only the
                // tail since the previous position is replayed.
                sim = Simulator::new(trace, config.clone()).map_err(&build_err)?;
                if let Some(prev) = out.last() {
                    if sim.restore_warm(prev).is_err() {
                        sim = Simulator::new(trace, config.clone()).map_err(&build_err)?;
                    }
                }
            }
            // Positions are non-decreasing on every caller's path, but a
            // hand-built out-of-order list must not silently checkpoint
            // the wrong prefix: restart the sweep from the trace head.
            if sim.cursor() as u64 > pos {
                sim = Simulator::new(trace, config.clone()).map_err(&build_err)?;
            }
            stats.swept += pos - sim.cursor() as u64;
            sim.functional_warm(pos as usize);
            let state = sim.capture_warm();
            stats.built += 1;
            sink(i, pos, &state, WarmOrigin::Built);
            out.push(state);
        }
        Ok((out, stats))
    }

    /// One interval piece from a warm-state checkpoint: builds a fresh
    /// simulator, restores `warm` (captured at `start − warmup_window`),
    /// then runs the identical detailed-warmup + measurement windows as
    /// [`Runner::try_run_piece`]. Restore is bit-identical to the
    /// functional replay of the same prefix (the [`WarmState`] contract,
    /// pinned by the `checkpoint_restore_equals_prefix_replay` proptest),
    /// so the piece statistics are too. A checkpoint that fails to
    /// restore — truncated bytes, wrong position, foreign shape — or an
    /// absent one degrades to the replay path instead of erroring: the
    /// checkpoint layer is a cache, never a correctness dependency.
    ///
    /// Under `EOLE_INTERVAL_PARANOID=1` a restored piece additionally
    /// replays the prefix from zero and asserts the two simulators agree
    /// byte for byte before the detailed window starts.
    ///
    /// # Errors
    ///
    /// [`RunError::Sim`] tagged with the failing phase, as
    /// [`Runner::try_run_piece`].
    ///
    /// # Panics
    ///
    /// Under `EOLE_INTERVAL_PARANOID=1`, if a restored checkpoint is not
    /// byte-identical to the replayed prefix (a codec bug — the paranoid
    /// mode's failure signal).
    pub fn try_run_piece_warm(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
        warm: Option<&WarmState>,
        start: u64,
        end: u64,
        warmup_window: u64,
    ) -> Result<SimStats, RunError> {
        let name = config.name.clone();
        let err = |phase: RunPhase, source| RunError::Sim {
            config: name.clone(),
            workload: "-".to_string(),
            phase,
            source,
        };
        let warm_from = start.saturating_sub(warmup_window);
        let restored = match warm {
            Some(state) if state.position().map(|p| p == warm_from).unwrap_or(false) => {
                let mut sim =
                    Simulator::new(trace, config.clone()).map_err(|e| err(RunPhase::Build, e))?;
                match sim.restore_warm(state) {
                    Ok(()) => Some(sim),
                    Err(_) => None, // damaged checkpoint: fall through to replay
                }
            }
            _ => None,
        };
        let mut sim = match restored {
            Some(sim) => {
                if interval_paranoid() {
                    let replayed =
                        Simulator::new_at(trace, config.clone(), warm_from as usize)
                            .map_err(|e| err(RunPhase::Build, e))?;
                    assert_eq!(
                        sim.capture_warm().as_bytes(),
                        replayed.capture_warm().as_bytes(),
                        "{name}: restored checkpoint at {warm_from} diverges from replay"
                    );
                }
                sim
            }
            None => Simulator::new_at(trace, config, warm_from as usize)
                .map_err(|e| err(RunPhase::Build, e))?,
        };
        sim.run_exact(start - warm_from).map_err(|e| err(RunPhase::Warmup, e))?;
        sim.begin_measurement();
        sim.run_exact(end.saturating_sub(start)).map_err(|e| err(RunPhase::Measure, e))?;
        Ok(sim.stats())
    }

    /// Interval-parallel methodology via one chained checkpoint sweep:
    /// the single-threaded reference for the executor's checkpointed
    /// path. A producer sweep emits every piece's checkpoint in one
    /// O(trace) functional pass ([`Runner::try_sweep_warm_states`]),
    /// then each piece restores its checkpoint and runs its detailed
    /// window ([`Runner::try_run_piece_warm`]). Bit-identical to
    /// [`Runner::try_run_intervals`] — restore equals replay — which the
    /// `chained_sweep_is_bit_identical_to_replay_stitch` golden test
    /// pins.
    ///
    /// # Errors
    ///
    /// The first failing stage's [`RunError`].
    pub fn try_run_intervals_chained(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
        policy: IntervalPolicy,
    ) -> Result<(SimStats, WarmSweepStats), RunError> {
        let positions = self.warm_positions(policy);
        let (states, sweep) = self.try_sweep_warm_states(
            trace,
            config.clone(),
            &positions,
            |_, _| None,
            |_, _, _, _| {},
        )?;
        let mut stitched = SimStats::default();
        for ((start, end), state) in self.interval_bounds(policy.k).into_iter().zip(&states) {
            let piece = self.try_run_piece_warm(
                trace,
                config.clone(),
                Some(state),
                start,
                end,
                policy.warmup,
            )?;
            stitched.merge(&piece);
        }
        if interval_paranoid() {
            let serial = self.try_run_serial_exact(trace, config.clone())?;
            check_stitched_against_serial(&config.name, policy, &stitched, &serial);
        }
        Ok((stitched, sweep))
    }

    /// Probes a sufficient per-interval warmup window (`--interval-warmup
    /// auto`): simulates the first split interval under each candidate
    /// window — a quarter of the methodology warmup, then the default
    /// half, then the full warmup — and compares its cycle count against
    /// the same interval warmed from the trace head (the zero-seam
    /// reference). The first candidate whose relative cycle error stays
    /// within half the stitched-run budget ([`INTERVAL_CYCLE_BUDGET`])
    /// wins; the full methodology warmup is the safe ceiling (its last
    /// candidate replays the identical prefix, so the probe always
    /// terminates with a valid window). Cost: a handful of detailed
    /// windows over one interval — far cheaper than a paranoid serial
    /// cross-check of a whole grid.
    ///
    /// # Errors
    ///
    /// As [`Runner::try_run_piece`].
    pub fn try_probe_interval_warmup(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
        k: u32,
    ) -> Result<u64, RunError> {
        let (start, end) = self.interval_bounds(k.max(2))[0];
        let reference = self.try_run_piece(trace, config.clone(), start, end, start)?;
        let candidates = [
            (self.warmup / 4).max(1_000),
            self.default_interval_warmup(),
            self.warmup,
        ];
        for window in candidates {
            let probe = self.try_run_piece(trace, config.clone(), start, end, window)?;
            let err = if reference.cycles == 0 {
                0.0
            } else {
                (probe.cycles as f64 - reference.cycles as f64).abs() / reference.cycles as f64
            };
            if err <= INTERVAL_CYCLE_BUDGET / 2.0 {
                return Ok(window);
            }
        }
        Ok(self.warmup)
    }

    /// Infallible [`Runner::try_prepare`] for benches and examples.
    ///
    /// # Panics
    ///
    /// Panics with the typed [`RunError`] rendered.
    pub fn prepare(&self, workload: &Workload) -> PreparedTrace {
        self.try_prepare(workload).unwrap_or_else(|e| panic!("{e}")) // lint:allow(error-typing) documented `# Panics` convenience wrapper for benches/examples
    }

    /// Infallible [`Runner::try_run`] for benches and examples.
    ///
    /// # Panics
    ///
    /// Panics with the typed [`RunError`] rendered.
    pub fn run(&self, trace: &PreparedTrace, config: CoreConfig) -> SimStats {
        self.try_run(trace, config).unwrap_or_else(|e| panic!("{e}")) // lint:allow(error-typing) documented `# Panics` convenience wrapper for benches/examples
    }
}

/// The `EOLE_INTERVAL_PARANOID` validation: emits the stitched-vs-serial
/// delta as one machine-readable JSON line on stderr (`"event":
/// "interval-paranoid"`, greppable by CI) and panics when the stitch
/// breaks its contract — committed or squashed counts diverging, or the
/// cycle error exceeding [`INTERVAL_CYCLE_BUDGET`].
///
/// # Panics
///
/// On any contract violation (the validation mode's failure signal; the
/// CI smoke step relies on the nonzero exit).
pub fn check_stitched_against_serial(
    label: &str,
    policy: IntervalPolicy,
    stitched: &SimStats,
    serial: &SimStats,
) {
    let err = if serial.cycles == 0 {
        0.0
    } else {
        (stitched.cycles as f64 - serial.cycles as f64).abs() / serial.cycles as f64
    };
    eprintln!(
        "{{\"event\":\"interval-paranoid\",\"label\":{},\"k\":{},\"warmup\":{},\
         \"stitched_cycles\":{},\"serial_cycles\":{},\"cycle_err\":{:.6},\
         \"committed\":{},\"serial_committed\":{},\
         \"squashed\":{},\"serial_squashed\":{},\"within_budget\":{}}}",
        json_string(label),
        policy.k,
        policy.warmup,
        stitched.cycles,
        serial.cycles,
        err,
        stitched.committed,
        serial.committed,
        stitched.squashed,
        serial.squashed,
        err <= INTERVAL_CYCLE_BUDGET
            && stitched.committed == serial.committed
            && stitched.squashed == serial.squashed,
    );
    assert_eq!(
        stitched.committed, serial.committed,
        "{label}: stitched committed count must equal the serial run exactly"
    );
    assert_eq!(
        stitched.squashed, serial.squashed,
        "{label}: stitched squashed count must equal the serial run exactly"
    );
    assert!(
        err <= INTERVAL_CYCLE_BUDGET,
        "{label}: stitched cycle error {:.4}% exceeds the {:.2}% budget (k={}, w={})",
        err * 100.0,
        INTERVAL_CYCLE_BUDGET * 100.0,
        policy.k,
        policy.warmup,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_measures_after_warmup() {
        let runner = Runner { warmup: 5_000, measure: 8_000 };
        let w = eole_workloads::workload_by_name("gzip").unwrap();
        let trace = runner.try_prepare(&w).unwrap();
        let stats = runner.try_run(&trace, CoreConfig::baseline_vp_6_64()).unwrap();
        assert!(stats.committed >= 8_000);
        assert!(stats.committed < 10_000, "window ends near the target");
        assert!(stats.ipc() > 0.1);
    }

    #[test]
    fn try_run_reports_the_failing_phase() {
        let runner = Runner::quick();
        let w = eole_workloads::workload_by_name("gzip").unwrap();
        let trace = runner.try_prepare(&w).unwrap();
        let mut bad = CoreConfig::baseline_6_64();
        bad.prf_banks = 3;
        match runner.try_run(&trace, bad) {
            Err(RunError::Sim { phase: RunPhase::Build, .. }) => {}
            other => panic!("expected a Build failure, got {other:?}"),
        }
    }

    #[test]
    fn panicking_wrappers_match_the_fallible_path() {
        let runner = Runner::quick();
        let w = eole_workloads::workload_by_name("namd").unwrap();
        let trace = runner.prepare(&w);
        let a = runner.run(&trace, CoreConfig::baseline_6_64());
        let b = runner.try_run(&trace, CoreConfig::baseline_6_64()).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
    }
}
