//! # eole-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5–§6) over the synthetic Table 3 suite.
//!
//! The harness is split into three layers, mirroring how trace-driven
//! simulators separate "describe a run", "execute many runs", and
//! "report results":
//!
//! * **Spec** ([`spec`]) — [`RunSpec`] describes one run (configuration ×
//!   workload × methodology × seed) and [`Grid`] enumerates the
//!   cross-product, in workload-major order.
//! * **Executor** ([`exec`]) — [`Executor`] schedules individual runs
//!   across a work-stealing thread pool, shares prepared traces through a
//!   keyed [`TraceCache`] (one generation per (workload, length)), and
//!   returns `Result<SimStats, RunError>` per run instead of panicking.
//! * **Report** — every experiment in [`experiments::ExperimentSet`]
//!   returns an [`eole_stats::report::ExperimentReport`], which renders
//!   to text/Markdown and serializes to JSON/CSV (`EXPERIMENTS.md`
//!   documents the JSON schema).
//!
//! Around those sit the run-identity layers added by the canonical-run
//! redesign:
//!
//! * **Store** ([`store`]) — [`RunKey`] is the content-addressed
//!   identity of a run (config digest × workload × methodology × seed ×
//!   [`eole_core::canon::SIM_FINGERPRINT_VERSION`]); a [`ResultStore`]
//!   ([`MemStore`] in memory, [`DirStore`] on disk) remembers completed
//!   runs so unchanged cells are never re-simulated.
//! * **Plan** ([`plan`]) — [`Shard`]/[`Plan`] partition a grid across
//!   processes deterministically (ownership is a pure function of the
//!   run key) and merge shard outputs back into grid order.
//! * **Session** ([`session`]) — the single driver (store + trace cache +
//!   executor + report emitters) behind the `experiments`,
//!   `sim-throughput`, and `fingerprints` bins.
//!
//! The `experiments` CLI drives it all:
//! `cargo run --release -p eole-bench --bin experiments -- all --format json`.
//!
//! ## Example
//!
//! ```no_run
//! use eole_bench::{Executor, Grid, Runner};
//! use eole_core::config::CoreConfig;
//!
//! let grid = Grid::new()
//!     .runner(Runner::quick())
//!     .configs([CoreConfig::baseline_vp_6_64(), CoreConfig::eole_4_64()])
//!     .workload_names(&["gzip", "namd"]);
//! let results = Executor::new().run(&grid);
//! for r in &results {
//!     match &r.outcome {
//!         Ok(stats) => println!("{}: IPC {:.3}", r.spec.label(), stats.ipc()),
//!         Err(e) => eprintln!("{}: {e}", r.spec.label()),
//!     }
//! }
//! ```

#![forbid(unsafe_code)]

pub mod compare;
pub mod exec;
pub mod experiments;
pub mod faults;
pub mod plan;
pub mod remote;
pub mod session;
pub mod spec;
pub mod store;

pub use compare::Comparison;
pub use exec::{Executor, RunError, RunPhase, RunResult, TraceCache};
pub use faults::FaultPlan;
pub use plan::{Plan, Shard};
pub use remote::RemoteStore;
pub use session::{Format, Session, SessionBuilder, StoreSummary, TimedRun};
pub use spec::{Grid, RunSpec};
pub use store::{DirStore, MemStore, ResultStore, RunKey, StoreError};

use eole_core::config::CoreConfig;
use eole_core::pipeline::{PreparedTrace, Simulator};
use eole_core::stats::SimStats;
use eole_workloads::Workload;

/// The VP-eligible µ-op stream of a prepared trace, as
/// `(pc, history position, actual value)` triples — the input shape of
/// `eole_predictors::value::evaluate_stream`. One definition shared by
/// the `dvtage_budget` experiment and the `sim-throughput` predictor
/// microbench, so offline evaluations can never disagree on eligibility
/// or address formation.
pub fn vp_stream(trace: &PreparedTrace) -> Vec<(u64, u32, u64)> {
    trace
        .insts()
        .iter()
        .filter(|di| di.inst.is_vp_eligible())
        .map(|di| (eole_isa::Program::inst_addr(di.pc), di.bhist_pos, di.result))
        .collect()
}

/// Interval-parallel execution policy: split one run's measurement
/// region into `k` deterministic intervals, warm each with a
/// functional-warmup prefix of `warmup` µ-ops, simulate them
/// independently, and stitch the per-interval [`SimStats`] into one
/// result (see `PERF.md`, "Interval-parallel simulation").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntervalPolicy {
    /// Number of intervals (`<= 1` means serial execution).
    pub k: u32,
    /// Predictor/cache warmup window simulated before each interval's
    /// measurement region (µ-ops).
    pub warmup: u64,
}

impl IntervalPolicy {
    /// A policy of `k` intervals with the methodology's default warmup
    /// window ([`Runner::default_interval_warmup`]).
    pub fn of(k: u32, runner: &Runner) -> Self {
        IntervalPolicy { k, warmup: runner.default_interval_warmup() }
    }

    /// True when this policy actually splits the run.
    pub fn is_split(&self) -> bool {
        self.k > 1
    }
}

/// Relative cycle-error budget of a stitched run against the
/// exact-boundary serial run (0.5%): the `EOLE_INTERVAL_PARANOID=1` mode
/// and the golden stitched-vs-serial table both pin it.
pub const INTERVAL_CYCLE_BUDGET: f64 = 0.005;

/// True when `EOLE_INTERVAL_PARANOID=1`-style validation is requested:
/// every stitched run also executes the serial comparator, reports the
/// delta on stderr, and panics if committed/squashed counts diverge or
/// the cycle error exceeds [`INTERVAL_CYCLE_BUDGET`]. Read once (the
/// executor consults this per stitched run).
pub fn interval_paranoid() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("EOLE_INTERVAL_PARANOID").is_some())
}

/// Warmup/measurement methodology for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    /// µ-ops simulated before counters reset (caches/predictors warm up).
    pub warmup: u64,
    /// µ-ops measured after the reset.
    pub measure: u64,
}

impl Default for Runner {
    fn default() -> Self {
        Runner { warmup: 100_000, measure: 200_000 }
    }
}

impl Runner {
    /// A fast configuration for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        Runner { warmup: 10_000, measure: 25_000 }
    }

    /// Total trace length needed.
    pub fn trace_len(&self) -> u64 {
        self.warmup + self.measure + 16
    }

    /// Generates the workload's trace once (shareable across configs).
    ///
    /// # Errors
    ///
    /// [`RunError::Kernel`] if the kernel fails to execute.
    pub fn try_prepare(&self, workload: &Workload) -> Result<PreparedTrace, RunError> {
        let trace = workload.trace(self.trace_len()).map_err(|e| RunError::Kernel {
            workload: workload.name.to_string(),
            reason: e.to_string(),
        })?;
        Ok(PreparedTrace::new(trace))
    }

    /// Runs one configuration over a prepared trace: warm up, reset
    /// counters, measure.
    ///
    /// # Errors
    ///
    /// [`RunError::Sim`] on configuration rejection or simulator deadlock,
    /// tagged with the phase that failed. (The workload field is filled by
    /// the [`Executor`]; direct callers get `"-"`.)
    pub fn try_run(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
    ) -> Result<SimStats, RunError> {
        self.try_run_timed(trace, config).map(|(stats, _)| stats)
    }

    /// [`Runner::try_run`] plus the wall-clock seconds the measurement
    /// window took — the one definition of the build/warmup/measure
    /// sequence, so the throughput harness times exactly the execution
    /// the experiment harness reports.
    ///
    /// # Errors
    ///
    /// As [`Runner::try_run`].
    pub fn try_run_timed(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
    ) -> Result<(SimStats, f64), RunError> {
        let name = config.name.clone();
        let err = |phase: RunPhase, source| RunError::Sim {
            config: name.clone(),
            workload: "-".to_string(),
            phase,
            source,
        };
        let mut sim =
            Simulator::new(trace, config).map_err(|e| err(RunPhase::Build, e))?;
        sim.run(self.warmup).map_err(|e| err(RunPhase::Warmup, e))?;
        sim.begin_measurement();
        let start = std::time::Instant::now();
        sim.run(self.measure).map_err(|e| err(RunPhase::Measure, e))?;
        let seconds = start.elapsed().as_secs_f64();
        Ok((sim.stats(), seconds))
    }

    /// Default per-interval functional-warmup window: half the
    /// methodology's own warmup (floored at 1 000 µ-ops). Enough to warm
    /// caches and predictor tables on the Table 3 kernels while keeping
    /// the total redundant work (`k × warmup`) well under the measured
    /// region for the quick suite.
    pub fn default_interval_warmup(&self) -> u64 {
        (self.warmup / 2).max(1_000)
    }

    /// The measurement-region boundaries of a `k`-way interval split, as
    /// half-open `[start, end)` windows in committed-µ-op positions.
    /// Commit order is trace order, so these are also trace indices: the
    /// windows partition `[warmup, warmup + measure)` exactly, with the
    /// remainder spread across intervals (`start_i = warmup +
    /// ⌊i·measure/k⌋`).
    pub fn interval_bounds(&self, k: u32) -> Vec<(u64, u64)> {
        let k = u64::from(k).max(1);
        (0..k)
            .map(|i| {
                (
                    self.warmup + i * self.measure / k,
                    self.warmup + (i + 1) * self.measure / k,
                )
            })
            .collect()
    }

    /// One interval piece: builds a simulator at `start - warmup_window`
    /// (clamped at the trace head), warms it to `start` with exact
    /// commit boundaries, resets counters, and measures `[start, end)`
    /// exactly. The serial comparator is the single piece
    /// `[warmup, warmup + measure)` with `warmup_window = warmup` —
    /// i.e. [`Runner::try_run_serial_exact`].
    ///
    /// # Errors
    ///
    /// [`RunError::Sim`] tagged with the failing phase, as
    /// [`Runner::try_run`] (workload attributed by the executor).
    pub fn try_run_piece(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
        start: u64,
        end: u64,
        warmup_window: u64,
    ) -> Result<SimStats, RunError> {
        let name = config.name.clone();
        let err = |phase: RunPhase, source| RunError::Sim {
            config: name.clone(),
            workload: "-".to_string(),
            phase,
            source,
        };
        let warm_from = start.saturating_sub(warmup_window);
        let mut sim = Simulator::new_at(trace, config, warm_from as usize)
            .map_err(|e| err(RunPhase::Build, e))?;
        sim.run_exact(start - warm_from).map_err(|e| err(RunPhase::Warmup, e))?;
        sim.begin_measurement();
        sim.run_exact(end.saturating_sub(start)).map_err(|e| err(RunPhase::Measure, e))?;
        Ok(sim.stats())
    }

    /// The exact-boundary serial run: identical methodology to
    /// [`Runner::try_run`] except that the warmup and measurement windows
    /// are cut at exactly `warmup` and `measure` commits instead of
    /// overshooting into the next commit group. This is the comparator
    /// every stitched run is validated against — a 1-interval stitched
    /// run *is* this run, bit for bit.
    ///
    /// # Errors
    ///
    /// As [`Runner::try_run`].
    pub fn try_run_serial_exact(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
    ) -> Result<SimStats, RunError> {
        self.try_run_piece(trace, config, self.warmup, self.warmup + self.measure, self.warmup)
    }

    /// Interval-parallel methodology, sequentially: simulates each of the
    /// policy's `k` intervals in turn and stitches the per-interval stats
    /// with [`SimStats::merge`]. The committed count is exactly `measure`
    /// by construction. (The executor parallelizes the same pieces across
    /// its worker pool; this entry point is the single-threaded
    /// reference, and the one the compat-proptests drive.)
    ///
    /// # Errors
    ///
    /// The first failing piece's [`RunError`].
    pub fn try_run_intervals(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
        policy: IntervalPolicy,
    ) -> Result<SimStats, RunError> {
        let mut stitched = SimStats::default();
        for (start, end) in self.interval_bounds(policy.k) {
            let piece = self.try_run_piece(trace, config.clone(), start, end, policy.warmup)?;
            stitched.merge(&piece);
        }
        if interval_paranoid() {
            let serial = self.try_run_serial_exact(trace, config.clone())?;
            check_stitched_against_serial(&config.name, policy, &stitched, &serial);
        }
        Ok(stitched)
    }

    /// Infallible [`Runner::try_prepare`] for benches and examples.
    ///
    /// # Panics
    ///
    /// Panics with the typed [`RunError`] rendered.
    pub fn prepare(&self, workload: &Workload) -> PreparedTrace {
        self.try_prepare(workload).unwrap_or_else(|e| panic!("{e}")) // lint:allow(error-typing) documented `# Panics` convenience wrapper for benches/examples
    }

    /// Infallible [`Runner::try_run`] for benches and examples.
    ///
    /// # Panics
    ///
    /// Panics with the typed [`RunError`] rendered.
    pub fn run(&self, trace: &PreparedTrace, config: CoreConfig) -> SimStats {
        self.try_run(trace, config).unwrap_or_else(|e| panic!("{e}")) // lint:allow(error-typing) documented `# Panics` convenience wrapper for benches/examples
    }
}

/// The `EOLE_INTERVAL_PARANOID` validation: prints the stitched-vs-serial
/// delta on stderr and panics when the stitch breaks its contract —
/// committed or squashed counts diverging, or the cycle error exceeding
/// [`INTERVAL_CYCLE_BUDGET`].
///
/// # Panics
///
/// On any contract violation (the validation mode's failure signal; the
/// CI smoke step relies on the nonzero exit).
pub fn check_stitched_against_serial(
    label: &str,
    policy: IntervalPolicy,
    stitched: &SimStats,
    serial: &SimStats,
) {
    let err = if serial.cycles == 0 {
        0.0
    } else {
        (stitched.cycles as f64 - serial.cycles as f64).abs() / serial.cycles as f64
    };
    eprintln!(
        "[interval-paranoid] {label} k={} w={}: cycles {} vs serial {} ({:+.4}%), \
         committed {} vs {}, squashed {} vs {}",
        policy.k,
        policy.warmup,
        stitched.cycles,
        serial.cycles,
        (stitched.cycles as f64 - serial.cycles as f64) / serial.cycles.max(1) as f64 * 100.0,
        stitched.committed,
        serial.committed,
        stitched.squashed,
        serial.squashed,
    );
    assert_eq!(
        stitched.committed, serial.committed,
        "{label}: stitched committed count must equal the serial run exactly"
    );
    assert_eq!(
        stitched.squashed, serial.squashed,
        "{label}: stitched squashed count must equal the serial run exactly"
    );
    assert!(
        err <= INTERVAL_CYCLE_BUDGET,
        "{label}: stitched cycle error {:.4}% exceeds the {:.2}% budget (k={}, w={})",
        err * 100.0,
        INTERVAL_CYCLE_BUDGET * 100.0,
        policy.k,
        policy.warmup,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_measures_after_warmup() {
        let runner = Runner { warmup: 5_000, measure: 8_000 };
        let w = eole_workloads::workload_by_name("gzip").unwrap();
        let trace = runner.try_prepare(&w).unwrap();
        let stats = runner.try_run(&trace, CoreConfig::baseline_vp_6_64()).unwrap();
        assert!(stats.committed >= 8_000);
        assert!(stats.committed < 10_000, "window ends near the target");
        assert!(stats.ipc() > 0.1);
    }

    #[test]
    fn try_run_reports_the_failing_phase() {
        let runner = Runner::quick();
        let w = eole_workloads::workload_by_name("gzip").unwrap();
        let trace = runner.try_prepare(&w).unwrap();
        let mut bad = CoreConfig::baseline_6_64();
        bad.prf_banks = 3;
        match runner.try_run(&trace, bad) {
            Err(RunError::Sim { phase: RunPhase::Build, .. }) => {}
            other => panic!("expected a Build failure, got {other:?}"),
        }
    }

    #[test]
    fn panicking_wrappers_match_the_fallible_path() {
        let runner = Runner::quick();
        let w = eole_workloads::workload_by_name("namd").unwrap();
        let trace = runner.prepare(&w);
        let a = runner.run(&trace, CoreConfig::baseline_6_64());
        let b = runner.try_run(&trace, CoreConfig::baseline_6_64()).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
    }
}
