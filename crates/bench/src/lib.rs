//! # eole-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5–§6) over the synthetic Table 3 suite.
//!
//! * [`Runner`] — warmup/measure methodology (the paper warms 50M and
//!   measures 100M instructions of a SimPoint slice; we scale both down
//!   and keep the two-phase structure).
//! * [`experiments::ExperimentSet`] — one method per paper table/figure,
//!   each returning an [`eole_stats::table::Table`]; workloads run in
//!   parallel threads.
//! * `src/bin/experiments.rs` — the CLI that prints them
//!   (`cargo run --release -p eole-bench --bin experiments -- all`).
//! * `benches/` — one Criterion bench per table/figure measuring simulator
//!   throughput on that experiment's configuration set.

pub mod experiments;

use eole_core::config::CoreConfig;
use eole_core::pipeline::{PreparedTrace, Simulator};
use eole_core::stats::SimStats;
use eole_workloads::Workload;

/// Warmup/measurement methodology for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    /// µ-ops simulated before counters reset (caches/predictors warm up).
    pub warmup: u64,
    /// µ-ops measured after the reset.
    pub measure: u64,
}

impl Default for Runner {
    fn default() -> Self {
        Runner { warmup: 100_000, measure: 200_000 }
    }
}

impl Runner {
    /// A fast configuration for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        Runner { warmup: 10_000, measure: 25_000 }
    }

    /// Total trace length needed.
    pub fn trace_len(&self) -> u64 {
        self.warmup + self.measure + 16
    }

    /// Generates the workload's trace once (shareable across configs).
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to execute — a kernel bug by definition.
    pub fn prepare(&self, workload: &Workload) -> PreparedTrace {
        let trace = workload
            .trace(self.trace_len())
            .unwrap_or_else(|e| panic!("{} kernel failed: {e}", workload.name));
        PreparedTrace::new(trace)
    }

    /// Runs one configuration over a prepared trace: warm up, reset
    /// counters, measure.
    ///
    /// # Panics
    ///
    /// Panics on simulator deadlock (an invariant violation, not a
    /// recoverable condition for an experiment).
    pub fn run(&self, trace: &PreparedTrace, config: CoreConfig) -> SimStats {
        let name = config.name.clone();
        let mut sim = Simulator::new(trace, config)
            .unwrap_or_else(|e| panic!("config {name}: {e}"));
        sim.run(self.warmup).unwrap_or_else(|e| panic!("{name} warmup: {e}"));
        sim.begin_measurement();
        sim.run(self.measure).unwrap_or_else(|e| panic!("{name} measure: {e}"));
        sim.stats()
    }
}

/// Runs `f` for every workload in parallel and returns the results in
/// Table 3 order.
pub fn per_workload<R, F>(workloads: &[Workload], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Workload) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut results: Vec<Option<R>> = (0..workloads.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(workloads.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= workloads.len() {
                    break;
                }
                let r = f(&workloads[i]);
                results_mutex.lock().expect("no poisoned threads")[i] = Some(r);
            });
        }
    });
    results.into_iter().map(|r| r.expect("all workloads computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_workloads::all_workloads;

    #[test]
    fn runner_measures_after_warmup() {
        let runner = Runner { warmup: 5_000, measure: 8_000 };
        let w = eole_workloads::workload_by_name("gzip").unwrap();
        let trace = runner.prepare(&w);
        let stats = runner.run(&trace, CoreConfig::baseline_vp_6_64());
        assert!(stats.committed >= 8_000);
        assert!(stats.committed < 10_000, "window ends near the target");
        assert!(stats.ipc() > 0.1);
    }

    #[test]
    fn per_workload_preserves_order() {
        let ws: Vec<_> = all_workloads().into_iter().take(6).collect();
        let names = per_workload(&ws, |w| w.name.to_string());
        let expected: Vec<_> = ws.iter().map(|w| w.name.to_string()).collect();
        assert_eq!(names, expected);
    }
}
