//! # eole-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5–§6) over the synthetic Table 3 suite.
//!
//! The harness is split into three layers, mirroring how trace-driven
//! simulators separate "describe a run", "execute many runs", and
//! "report results":
//!
//! * **Spec** ([`spec`]) — [`RunSpec`] describes one run (configuration ×
//!   workload × methodology × seed) and [`Grid`] enumerates the
//!   cross-product, in workload-major order.
//! * **Executor** ([`exec`]) — [`Executor`] schedules individual runs
//!   across a work-stealing thread pool, shares prepared traces through a
//!   keyed [`TraceCache`] (one generation per (workload, length)), and
//!   returns `Result<SimStats, RunError>` per run instead of panicking.
//! * **Report** — every experiment in [`experiments::ExperimentSet`]
//!   returns an [`eole_stats::report::ExperimentReport`], which renders
//!   to text/Markdown and serializes to JSON/CSV (`EXPERIMENTS.md`
//!   documents the JSON schema).
//!
//! Around those sit the run-identity layers added by the canonical-run
//! redesign:
//!
//! * **Store** ([`store`]) — [`RunKey`] is the content-addressed
//!   identity of a run (config digest × workload × methodology × seed ×
//!   [`eole_core::canon::SIM_FINGERPRINT_VERSION`]); a [`ResultStore`]
//!   ([`MemStore`] in memory, [`DirStore`] on disk) remembers completed
//!   runs so unchanged cells are never re-simulated.
//! * **Plan** ([`plan`]) — [`Shard`]/[`Plan`] partition a grid across
//!   processes deterministically (ownership is a pure function of the
//!   run key) and merge shard outputs back into grid order.
//! * **Session** ([`session`]) — the single driver (store + trace cache +
//!   executor + report emitters) behind the `experiments`,
//!   `sim-throughput`, and `fingerprints` bins.
//!
//! The `experiments` CLI drives it all:
//! `cargo run --release -p eole-bench --bin experiments -- all --format json`.
//!
//! ## Example
//!
//! ```no_run
//! use eole_bench::{Executor, Grid, Runner};
//! use eole_core::config::CoreConfig;
//!
//! let grid = Grid::new()
//!     .runner(Runner::quick())
//!     .configs([CoreConfig::baseline_vp_6_64(), CoreConfig::eole_4_64()])
//!     .workload_names(&["gzip", "namd"]);
//! let results = Executor::new().run(&grid);
//! for r in &results {
//!     match &r.outcome {
//!         Ok(stats) => println!("{}: IPC {:.3}", r.spec.label(), stats.ipc()),
//!         Err(e) => eprintln!("{}: {e}", r.spec.label()),
//!     }
//! }
//! ```

pub mod compare;
pub mod exec;
pub mod experiments;
pub mod plan;
pub mod session;
pub mod spec;
pub mod store;

pub use compare::Comparison;
pub use exec::{Executor, RunError, RunPhase, RunResult, TraceCache};
pub use plan::{Plan, Shard};
pub use session::{Format, Session, SessionBuilder, TimedRun};
pub use spec::{Grid, RunSpec};
pub use store::{DirStore, MemStore, ResultStore, RunKey};

use eole_core::config::CoreConfig;
use eole_core::pipeline::{PreparedTrace, Simulator};
use eole_core::stats::SimStats;
use eole_workloads::Workload;

/// The VP-eligible µ-op stream of a prepared trace, as
/// `(pc, history position, actual value)` triples — the input shape of
/// `eole_predictors::value::evaluate_stream`. One definition shared by
/// the `dvtage_budget` experiment and the `sim-throughput` predictor
/// microbench, so offline evaluations can never disagree on eligibility
/// or address formation.
pub fn vp_stream(trace: &PreparedTrace) -> Vec<(u64, u32, u64)> {
    trace
        .insts()
        .iter()
        .filter(|di| di.inst.is_vp_eligible())
        .map(|di| (eole_isa::Program::inst_addr(di.pc), di.bhist_pos, di.result))
        .collect()
}

/// Warmup/measurement methodology for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    /// µ-ops simulated before counters reset (caches/predictors warm up).
    pub warmup: u64,
    /// µ-ops measured after the reset.
    pub measure: u64,
}

impl Default for Runner {
    fn default() -> Self {
        Runner { warmup: 100_000, measure: 200_000 }
    }
}

impl Runner {
    /// A fast configuration for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        Runner { warmup: 10_000, measure: 25_000 }
    }

    /// Total trace length needed.
    pub fn trace_len(&self) -> u64 {
        self.warmup + self.measure + 16
    }

    /// Generates the workload's trace once (shareable across configs).
    ///
    /// # Errors
    ///
    /// [`RunError::Kernel`] if the kernel fails to execute.
    pub fn try_prepare(&self, workload: &Workload) -> Result<PreparedTrace, RunError> {
        let trace = workload.trace(self.trace_len()).map_err(|e| RunError::Kernel {
            workload: workload.name.to_string(),
            reason: e.to_string(),
        })?;
        Ok(PreparedTrace::new(trace))
    }

    /// Runs one configuration over a prepared trace: warm up, reset
    /// counters, measure.
    ///
    /// # Errors
    ///
    /// [`RunError::Sim`] on configuration rejection or simulator deadlock,
    /// tagged with the phase that failed. (The workload field is filled by
    /// the [`Executor`]; direct callers get `"-"`.)
    pub fn try_run(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
    ) -> Result<SimStats, RunError> {
        self.try_run_timed(trace, config).map(|(stats, _)| stats)
    }

    /// [`Runner::try_run`] plus the wall-clock seconds the measurement
    /// window took — the one definition of the build/warmup/measure
    /// sequence, so the throughput harness times exactly the execution
    /// the experiment harness reports.
    ///
    /// # Errors
    ///
    /// As [`Runner::try_run`].
    pub fn try_run_timed(
        &self,
        trace: &PreparedTrace,
        config: CoreConfig,
    ) -> Result<(SimStats, f64), RunError> {
        let name = config.name.clone();
        let err = |phase: RunPhase, source| RunError::Sim {
            config: name.clone(),
            workload: "-".to_string(),
            phase,
            source,
        };
        let mut sim =
            Simulator::new(trace, config).map_err(|e| err(RunPhase::Build, e))?;
        sim.run(self.warmup).map_err(|e| err(RunPhase::Warmup, e))?;
        sim.begin_measurement();
        let start = std::time::Instant::now();
        sim.run(self.measure).map_err(|e| err(RunPhase::Measure, e))?;
        let seconds = start.elapsed().as_secs_f64();
        Ok((sim.stats(), seconds))
    }

    /// Infallible [`Runner::try_prepare`] for benches and examples where a
    /// kernel failure is a bug by definition.
    ///
    /// # Panics
    ///
    /// Panics with the typed [`RunError`] rendered.
    pub fn prepare(&self, workload: &Workload) -> PreparedTrace {
        self.try_prepare(workload).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`Runner::try_run`] for benches and examples.
    ///
    /// # Panics
    ///
    /// Panics with the typed [`RunError`] rendered.
    pub fn run(&self, trace: &PreparedTrace, config: CoreConfig) -> SimStats {
        self.try_run(trace, config).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_measures_after_warmup() {
        let runner = Runner { warmup: 5_000, measure: 8_000 };
        let w = eole_workloads::workload_by_name("gzip").unwrap();
        let trace = runner.try_prepare(&w).unwrap();
        let stats = runner.try_run(&trace, CoreConfig::baseline_vp_6_64()).unwrap();
        assert!(stats.committed >= 8_000);
        assert!(stats.committed < 10_000, "window ends near the target");
        assert!(stats.ipc() > 0.1);
    }

    #[test]
    fn try_run_reports_the_failing_phase() {
        let runner = Runner::quick();
        let w = eole_workloads::workload_by_name("gzip").unwrap();
        let trace = runner.try_prepare(&w).unwrap();
        let mut bad = CoreConfig::baseline_6_64();
        bad.prf_banks = 3;
        match runner.try_run(&trace, bad) {
            Err(RunError::Sim { phase: RunPhase::Build, .. }) => {}
            other => panic!("expected a Build failure, got {other:?}"),
        }
    }

    #[test]
    fn panicking_wrappers_match_the_fallible_path() {
        let runner = Runner::quick();
        let w = eole_workloads::workload_by_name("namd").unwrap();
        let trace = runner.prepare(&w);
        let a = runner.run(&trace, CoreConfig::baseline_6_64());
        let b = runner.try_run(&trace, CoreConfig::baseline_6_64()).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
    }
}
