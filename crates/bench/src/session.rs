//! The session layer: one entry point over store + trace cache +
//! executor + report emitters.
//!
//! Before this layer existed, the `experiments` CLI, the `sim-throughput`
//! harness, and the `fingerprints` regenerator each hand-rolled their own
//! driver: their own executor wiring, their own trace preparation, their
//! own payload-writing discipline. A [`Session`] owns all of it:
//!
//! * the methodology ([`Runner`]) every run of the session shares;
//! * the [`Executor`] with its [`TraceCache`](crate::TraceCache), an
//!   optional persistent [`ResultStore`], and an optional [`Shard`]
//!   restriction;
//! * the report emitters ([`Format`], [`Session::render`]) and the
//!   temp-file + rename payload-writing discipline
//!   ([`Session::write_payload`]);
//! * wall-clock timing for the throughput harness
//!   ([`Session::time_run`]) — timing is the one path that must *never*
//!   be served from the store.
//!
//! Experiments run through a session via
//! [`ExperimentSet::with_session`](crate::experiments::ExperimentSet::with_session).

use std::sync::Arc;

use eole_core::pipeline::PreparedTrace;
use eole_core::stats::SimStats;
use eole_stats::report::{reports_to_json, ExperimentReport};
use eole_workloads::Workload;

use crate::exec::{Executor, RunError, RunResult};
use crate::plan::Shard;
use crate::remote::RemoteStore;
use crate::spec::{Grid, RunSpec};
use crate::store::{DirStore, ResultStore};
use crate::{IntervalPolicy, Runner};

/// Output format of the report emitters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// GitHub-flavored Markdown tables (the default).
    Markdown,
    /// One `eole-report-set/v1` JSON object (schema in `EXPERIMENTS.md`).
    Json,
    /// One CSV block per report, separated by `# id: title` lines.
    Csv,
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Format, String> {
        match s {
            "md" | "markdown" => Ok(Format::Markdown),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!("unknown format {other} (md|json|csv)")),
        }
    }
}

/// One timed simulation: the statistics plus the wall-clock seconds the
/// measurement window took (the throughput harness's unit of work).
#[derive(Clone, Copy, Debug)]
pub struct TimedRun {
    /// Statistics of the measurement window.
    pub stats: SimStats,
    /// Wall-clock seconds spent inside the measurement window.
    pub seconds: f64,
}

/// One timed interval-parallel stitch, with the checkpointed warmup
/// sweep accounted separately from the concurrent detailed windows —
/// the split `sim-throughput` v3 records, because the sweep is the
/// serial fraction that bounds interval-parallel speedup (Amdahl).
#[derive(Clone, Copy, Debug)]
pub struct TimedIntervals {
    /// Statistics of the stitched measurement window.
    pub stats: SimStats,
    /// Wall-clock seconds of the serial chained checkpoint sweep.
    pub warmup_seconds: f64,
    /// Wall-clock seconds of the concurrent detailed pieces (the whole
    /// parallel phase, not the per-piece sum).
    pub detailed_seconds: f64,
}

impl TimedIntervals {
    /// Total wall-clock seconds (sweep + detailed phase).
    pub fn seconds(&self) -> f64 {
        self.warmup_seconds + self.detailed_seconds
    }
}

/// Builder for a [`Session`].
#[derive(Debug, Default)]
pub struct SessionBuilder {
    runner: Option<Runner>,
    threads: Option<usize>,
    store: Option<Arc<dyn ResultStore>>,
    store_dir: Option<String>,
    shard: Option<Shard>,
    intervals: u32,
    interval_warmup: Option<u64>,
    deadline: Option<std::time::Duration>,
}

impl SessionBuilder {
    /// Sets the warmup/measure methodology (defaults to
    /// [`Runner::default`]).
    #[must_use]
    pub fn runner(mut self, runner: Runner) -> Self {
        self.runner = Some(runner);
        self
    }

    /// Sets an explicit worker count (defaults to the machine size).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attaches an already-built result store.
    #[must_use]
    pub fn store(mut self, store: Arc<dyn ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches a persistent result store by *spec*: `tcp://HOST:PORT`
    /// connects a [`RemoteStore`] to an `eole-stored` daemon; anything
    /// else is a directory path for an on-disk [`DirStore`] (created by
    /// [`SessionBuilder::build`]).
    #[must_use]
    pub fn store_dir(mut self, dir: impl Into<String>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Restricts simulation to one shard of the partition.
    #[must_use]
    pub fn shard(mut self, shard: Shard) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Splits every run into `k` deterministic intervals simulated
    /// concurrently and stitched (`k == 0`, the default, keeps the serial
    /// path). Interval results live under interval-tagged store keys —
    /// see `EXPERIMENTS.md`.
    #[must_use]
    pub fn intervals(mut self, k: u32) -> Self {
        self.intervals = k;
        self
    }

    /// Overrides the per-interval functional-warmup window (µ-ops
    /// simulated before each interval's measurement region); defaults to
    /// [`Runner::default_interval_warmup`].
    #[must_use]
    pub fn interval_warmup(mut self, warmup: Option<u64>) -> Self {
        self.interval_warmup = warmup;
        self
    }

    /// Sets a per-run wall-clock deadline (cooperative watchdog — see
    /// [`Executor::with_deadline`]): a run whose job outlives the budget
    /// fails with a typed [`RunError::Deadline`] instead of silently
    /// stalling the whole suite. `None` (the default) disables it.
    #[must_use]
    pub fn run_deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Builds the session.
    ///
    /// # Errors
    ///
    /// A rendered description if the store directory cannot be created.
    pub fn build(self) -> Result<Session, String> {
        let runner = self.runner.unwrap_or_default();
        let mut executor = match self.threads {
            Some(n) => Executor::with_threads(n),
            None => Executor::new(),
        };
        let store = match (self.store, self.store_dir) {
            (Some(store), _) => Some(store),
            (None, Some(spec)) => Some(match spec.strip_prefix("tcp://") {
                Some(addr) => {
                    let remote = RemoteStore::connect(addr)
                        .map_err(|e| format!("connect result store {spec}: {e}"))?;
                    Arc::new(remote) as Arc<dyn ResultStore>
                }
                None => Arc::new(DirStore::open(spec)?) as Arc<dyn ResultStore>,
            }),
            (None, None) => None,
        };
        if let Some(store) = store {
            executor = executor.with_store(store);
        }
        if let Some(shard) = self.shard {
            executor = executor.with_shard(shard);
        }
        if self.intervals >= 1 {
            let warmup = self.interval_warmup.unwrap_or_else(|| runner.default_interval_warmup());
            executor = executor.with_intervals(IntervalPolicy { k: self.intervals, warmup });
        }
        executor = executor.with_deadline(self.deadline);
        Ok(Session { runner, executor })
    }
}

/// Store accounting for one session: the executor's view of cache
/// traffic plus the backing store's health. Serialized as the flat
/// `store` block of the `eole-report-set/v1` JSON header (flat on
/// purpose — byte-compare tooling strips it with one non-nested-brace
/// pattern; see `EXPERIMENTS.md`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreSummary {
    /// Runs served from the store without simulating.
    pub hits: usize,
    /// Lookups that found no entry.
    pub misses: usize,
    /// Runs actually simulated.
    pub sims: usize,
    /// Runs skipped because another shard owns them.
    pub skips: usize,
    /// Damaged entries quarantined by the backing store (checksum or
    /// parse failures — each triggered a transparent re-simulation; a
    /// [`DirStore`] keeps the damaged file as `<stem>.quarantined`).
    pub quarantined: u64,
    /// Evictions observed at the backing store (budget-limited daemons;
    /// always 0 for local stores).
    pub evictions_observed: u64,
    /// True when a remote store fell back to cache-less operation.
    pub degraded: bool,
}

/// The unified driver: everything a harness front end needs to turn
/// specs into results and results into payloads.
#[derive(Debug)]
pub struct Session {
    runner: Runner,
    executor: Executor,
}

impl Session {
    /// Starts a builder.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// A plain session (no store, no shard, machine-sized executor).
    pub fn new(runner: Runner) -> Session {
        Session { runner, executor: Executor::new() }
    }

    /// The methodology shared by the session's runs.
    pub fn runner(&self) -> Runner {
        self.runner
    }

    /// The executor (counters: trace cache, store hits, simulations).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The interval-parallel policy, if the session splits runs.
    pub fn intervals(&self) -> Option<IntervalPolicy> {
        self.executor.intervals()
    }

    /// Store accounting, if a result store is attached.
    pub fn store_summary(&self) -> Option<StoreSummary> {
        let store = self.executor.store()?;
        Some(StoreSummary {
            hits: self.executor.store_hits(),
            misses: self.executor.store_misses(),
            sims: self.executor.simulated(),
            skips: self.executor.shard_skips(),
            quarantined: store.quarantined(),
            evictions_observed: store.observed_evictions(),
            degraded: store.degraded(),
        })
    }

    /// Runs every spec of a grid (store consulted first, shard respected);
    /// results keep grid order.
    pub fn run(&self, grid: &Grid) -> Vec<RunResult> {
        self.executor.run(grid)
    }

    /// Runs an explicit spec list; results keep the input order.
    pub fn run_specs(&self, specs: Vec<RunSpec>) -> Vec<RunResult> {
        self.executor.run_specs(specs)
    }

    /// The prepared trace for `workload` under the session's methodology,
    /// generated once and shared through the trace cache.
    ///
    /// # Errors
    ///
    /// [`RunError::Kernel`] if the kernel fails to trace.
    pub fn prepare(&self, workload: &Workload) -> Result<Arc<PreparedTrace>, RunError> {
        self.executor.cache().get_or_prepare(workload, &self.runner)
    }

    /// Simulates one spec and times its measurement window (via
    /// [`Runner::try_run_timed`] — the same build/warmup/measure sequence
    /// every cached and reported result takes). Never touches the result
    /// store — a stored result has no meaningful wall-clock — but shares
    /// the trace cache.
    ///
    /// # Errors
    ///
    /// [`RunError`] as from the executor path (kernel / build / warmup /
    /// measure).
    pub fn time_run(&self, spec: &RunSpec) -> Result<TimedRun, RunError> {
        let trace = self.prepare(&spec.workload)?;
        let (stats, seconds) = self
            .runner
            .try_run_timed(&trace, spec.effective_config())
            .map_err(|e| match e {
                // Attribute the workload: `try_run_timed` cannot know it.
                RunError::Sim { config, phase, source, .. } => RunError::Sim {
                    config,
                    workload: spec.workload.name.to_string(),
                    phase,
                    source,
                },
                other => other,
            })?;
        Ok(TimedRun { stats, seconds })
    }

    /// Simulates one spec interval-parallel the checkpointed way: one
    /// serial chained sweep builds every piece's [`WarmState`], then
    /// `policy.k` detailed pieces are pulled from a shared counter by
    /// `threads` scoped workers, each restoring its checkpoint. The two
    /// phases are timed separately (the split the threads scaling
    /// section of `BENCH_throughput.json` v3 records — the sweep is the
    /// serial fraction that bounds the speedup). Like
    /// [`Session::time_run`], never touches the result store.
    ///
    /// [`WarmState`]: eole_core::pipeline::WarmState
    ///
    /// # Errors
    ///
    /// A sweep failure, then the first piece failure in interval order.
    pub fn time_run_intervals(
        &self,
        spec: &RunSpec,
        threads: usize,
        policy: IntervalPolicy,
    ) -> Result<TimedIntervals, RunError> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let trace = self.prepare(&spec.workload)?;
        let bounds = spec.runner.interval_bounds(policy.k);
        let positions = spec.runner.warm_positions(policy);
        let warm_start = std::time::Instant::now();
        let (states, _sweep) = spec
            .runner
            .try_sweep_warm_states(
                &trace,
                spec.effective_config(),
                &positions,
                |_, _| None,
                |_, _, _, _| {},
            )
            .map_err(|e| crate::exec::attribute_workload(e, spec))?;
        let warmup_seconds = warm_start.elapsed().as_secs_f64();
        let slots: Vec<Mutex<Option<Result<SimStats, RunError>>>> =
            bounds.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = threads.clamp(1, bounds.len());
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(s, e)) = bounds.get(i) else { break };
                    let out = spec.runner.try_run_piece_warm(
                        &trace,
                        spec.effective_config(),
                        states.get(i),
                        s,
                        e,
                        policy.warmup,
                    );
                    *crate::exec::lock_clean(&slots[i]) = Some(out);
                });
            }
        });
        let detailed_seconds = start.elapsed().as_secs_f64();
        let mut stats = SimStats::default();
        for slot in slots {
            let piece = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every piece executed") // lint:allow(error-typing) scope join guarantees every slot was filled
                .map_err(|e| crate::exec::attribute_workload(e, spec))?;
            stats.merge(&piece);
        }
        Ok(TimedIntervals { stats, warmup_seconds, detailed_seconds })
    }

    /// Renders a report set in the requested format. The JSON form wraps
    /// the reports with the session's runner metadata
    /// (`eole-report-set/v1`), so payloads from different methodologies
    /// can never be confused.
    pub fn render(&self, reports: &[ExperimentReport], format: Format) -> String {
        match format {
            Format::Markdown => {
                let mut out = String::new();
                for r in reports {
                    out.push_str(&r.render_markdown());
                    out.push('\n');
                }
                out
            }
            Format::Json => {
                // Additive header fields: store-less serial sessions emit
                // the exact v1 payload bytes they always did.
                let intervals = match self.intervals() {
                    Some(p) => format!(",\"intervals\":{{\"k\":{},\"warmup\":{}}}", p.k, p.warmup),
                    None => String::new(),
                };
                // Flat (no nested objects), so byte-compare tooling can
                // strip the run-varying counters with
                // `sed 's/,"store":{[^}]*}//'` — see `EXPERIMENTS.md`.
                let store = match self.store_summary() {
                    Some(s) => format!(
                        ",\"store\":{{\"hits\":{},\"misses\":{},\"sims\":{},\"skips\":{},\"quarantined\":{},\"evictions_observed\":{},\"degraded\":{}}}",
                        s.hits, s.misses, s.sims, s.skips, s.quarantined, s.evictions_observed, s.degraded
                    ),
                    None => String::new(),
                };
                format!(
                    "{{\"schema\":\"eole-report-set/v1\",\"runner\":{{\"warmup\":{},\"measure\":{}}}{}{},\"reports\":{}}}",
                    self.runner.warmup,
                    self.runner.measure,
                    intervals,
                    store,
                    reports_to_json(reports)
                )
            }
            Format::Csv => {
                let mut out = String::new();
                for r in reports {
                    out.push_str(&format!("# {}: {}\n", r.id(), r.title()));
                    out.push_str(&r.to_csv());
                    out.push('\n');
                }
                out
            }
        }
    }

    /// Writes a payload to `path` through a sibling temp file and an
    /// atomic rename, so a mid-write failure never truncates the previous
    /// contents (trend tooling depends on the old payload surviving).
    ///
    /// # Errors
    ///
    /// A rendered description of the I/O failure.
    pub fn write_payload(path: &str, payload: &str) -> Result<(), String> {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, payload).map_err(|e| format!("write {tmp}: {e}"))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("rename {tmp} -> {path}: {e}"))
    }

    /// One-line cache/store accounting for stderr status output (CI
    /// parses `simulated N` out of this line; keep that token stable).
    pub fn accounting(&self) -> String {
        let degraded = if self.executor.store().is_some_and(|s| s.degraded()) {
            ", store DEGRADED (daemon lost; ran without the cache)"
        } else {
            ""
        };
        let warm = if self.intervals().is_some() {
            format!(
                ", warm checkpoints loaded {} built {}",
                self.executor.warm_loaded(),
                self.executor.warm_built(),
            )
        } else {
            String::new()
        };
        format!(
            "store hits {}, simulated {}, shard-skipped {}, traces generated {}{}{}",
            self.executor.store_hits(),
            self.executor.simulated(),
            self.executor.shard_skips(),
            self.executor.cache().generated(),
            warm,
            degraded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use eole_core::config::CoreConfig;
    use eole_workloads::workload_by_name;

    #[test]
    fn format_parses_the_cli_names() {
        assert_eq!("md".parse::<Format>().unwrap(), Format::Markdown);
        assert_eq!("markdown".parse::<Format>().unwrap(), Format::Markdown);
        assert_eq!("json".parse::<Format>().unwrap(), Format::Json);
        assert_eq!("csv".parse::<Format>().unwrap(), Format::Csv);
        assert!("yaml".parse::<Format>().is_err());
    }

    #[test]
    fn session_runs_grids_and_accounts_for_the_store() {
        let store: Arc<dyn ResultStore> = Arc::new(MemStore::new());
        let session = Session::builder()
            .runner(Runner::quick())
            .threads(2)
            .store(Arc::clone(&store))
            .build()
            .unwrap();
        let grid = Grid::new()
            .runner(session.runner())
            .config(CoreConfig::baseline_6_64())
            .workload_names(&["gzip"]);
        let results = session.run(&grid);
        assert_eq!(results.len(), 1);
        assert!(results[0].stats().is_ok());
        assert_eq!(session.executor().simulated(), 1);
        // Second pass: pure store hits.
        let again = session.run(&grid);
        assert!(again[0].stats().is_ok());
        assert_eq!(session.executor().simulated(), 1);
        assert_eq!(session.executor().store_hits(), 1);
        assert!(session.accounting().contains("simulated 1"));
    }

    #[test]
    fn time_run_reports_stats_and_a_positive_wall_clock() {
        let session = Session::builder().runner(Runner::quick()).build().unwrap();
        let spec = RunSpec {
            config: CoreConfig::baseline_6_64(),
            workload: workload_by_name("gzip").unwrap(),
            runner: session.runner(),
            seed: 0,
        };
        let timed = session.time_run(&spec).unwrap();
        assert!(timed.stats.committed >= session.runner().measure);
        assert!(timed.seconds > 0.0);
    }

    #[test]
    fn json_render_carries_the_runner_header() {
        let session = Session::new(Runner { warmup: 11, measure: 22 });
        let payload = session.render(&[], Format::Json);
        assert!(payload.contains("\"runner\":{\"warmup\":11,\"measure\":22}"));
        assert!(payload.contains("\"schema\":\"eole-report-set/v1\""));
    }
}
