//! The executor layer: running many [`RunSpec`]s, fast and fallibly.
//!
//! * [`RunError`] — every way a run can fail, as data instead of a panic.
//! * [`TraceCache`] — prepared traces keyed by (workload, trace length);
//!   each trace is generated exactly once and shared across every
//!   configuration and seed that needs it.
//! * [`Executor`] — a work-stealing thread pool that schedules individual
//!   runs (not whole workloads) and returns results in grid order.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use eole_core::pipeline::{PreparedTrace, SimError, WarmState};
use eole_core::stats::SimStats;
use eole_workloads::Workload;

use crate::faults;
use crate::plan::Shard;
use crate::spec::{Grid, RunSpec};
use crate::store::{ResultStore, RunKey, StoreError, WarmKey};
use crate::{
    check_stitched_against_serial, interval_paranoid, IntervalPolicy, Runner, WarmOrigin,
};

/// Poisoning-proof lock: a panicked worker marks every mutex it held as
/// poisoned, but the protected data here (job deques, piece slots,
/// result vectors) is only ever mutated by complete push/pop/assign
/// operations, so the value is still consistent — recover it instead of
/// cascading the panic into every sibling worker.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a caught panic payload (`&str` and `String` panics carry
/// their message; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with panic isolation: an unwind becomes
/// [`RunError::Panicked`] for this run only, so one crashing simulation
/// can never abort the process or take sibling runs down with it.
fn catch_panic<T>(
    label: &str,
    f: impl FnOnce() -> Result<T, RunError>,
) -> Result<T, RunError> {
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(outcome) => outcome,
        Err(payload) => Err(RunError::Panicked {
            label: label.to_string(),
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Which phase of a run failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunPhase {
    /// Simulator construction (configuration validation).
    Build,
    /// The warmup window.
    Warmup,
    /// The measurement window.
    Measure,
}

impl std::fmt::Display for RunPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunPhase::Build => write!(f, "build"),
            RunPhase::Warmup => write!(f, "warmup"),
            RunPhase::Measure => write!(f, "measure"),
        }
    }
}

/// A failed run, as a value (the redesign of the old `panic!`/`unwrap`
/// paths in the harness).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The workload kernel failed to generate a trace.
    Kernel {
        /// Workload name.
        workload: String,
        /// The functional-execution error, rendered.
        reason: String,
    },
    /// The simulator rejected the configuration or stopped retiring.
    Sim {
        /// Configuration name.
        config: String,
        /// Workload name.
        workload: String,
        /// Phase that failed.
        phase: RunPhase,
        /// Underlying simulator error.
        source: SimError,
    },
    /// An experiment name not in the harness registry (CLI lookups).
    UnknownExperiment(String),
    /// The run belongs to a different shard of a partitioned grid and was
    /// not found in the result store — expected (not a failure) during a
    /// `--shard k/n` populate pass; the merge pass sees no such cells.
    NotInShard {
        /// Human label of the skipped run.
        label: String,
        /// The shard this executor was restricted to.
        shard: Shard,
    },
    /// The result store failed to persist a completed run.
    Store {
        /// Human label of the run whose result was lost.
        label: String,
        /// The typed store failure (match on the class, not the text).
        source: StoreError,
    },
    /// The simulation (or an interval piece of it) panicked; the unwind
    /// was caught at the run boundary, so sibling runs and the worker
    /// pool are unaffected.
    Panicked {
        /// Human label of the crashed run.
        label: String,
        /// The panic message, as far as it could be recovered.
        message: String,
    },
    /// The run finished but blew through the executor's per-run deadline
    /// ([`Executor::with_deadline`]); its result is withheld so a CI
    /// time-budget violation is loud instead of silently slow.
    Deadline {
        /// Human label of the overrunning run.
        label: String,
        /// Observed wall-clock for the run, in milliseconds.
        elapsed_ms: u64,
        /// The configured budget, in milliseconds.
        budget_ms: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Kernel { workload, reason } => {
                write!(f, "{workload}: kernel failed to trace: {reason}")
            }
            RunError::Sim { config, workload, phase, source } => {
                write!(f, "{config}/{workload}: {phase} failed: {source}")
            }
            RunError::UnknownExperiment(name) => write!(f, "unknown experiment {name}"),
            RunError::NotInShard { label, shard } => {
                write!(f, "{label}: owned by another shard (this executor runs {shard})")
            }
            RunError::Store { label, source } => {
                write!(f, "{label}: result store failed: {source}")
            }
            RunError::Panicked { label, message } => {
                write!(f, "{label}: simulation panicked (isolated to this run): {message}")
            }
            RunError::Deadline { label, elapsed_ms, budget_ms } => {
                write!(f, "{label}: run took {elapsed_ms} ms, over the {budget_ms} ms deadline")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// The trace-sharing key: runs agreeing on workload and trace length
/// replay the same trace. Borrowed form — `Workload::name` is `&'static
/// str`, so building (and hashing) a key allocates nothing and a
/// steady-state cache probe stays off the heap (`tests/zero_alloc.rs`
/// enforces this).
pub type TraceKey = (&'static str, u64);

/// Computes the [`TraceKey`] for a (workload, methodology) pair. Single
/// definition — [`RunSpec::trace_key`] delegates here so spec and cache
/// can never disagree.
pub(crate) fn trace_key(workload: &Workload, runner: &Runner) -> TraceKey {
    (workload.name, runner.trace_len())
}
type TraceSlot = Arc<Mutex<Option<Result<Arc<PreparedTrace>, RunError>>>>;

/// A keyed cache of prepared traces.
///
/// The key is `(workload name, trace length)`: every configuration and
/// seed in a grid replays the same trace, so it is generated **exactly
/// once per key** — under concurrency, the first thread to claim a key
/// generates while later threads for the same key block on that slot
/// (other keys proceed in parallel).
#[derive(Debug, Default)]
pub struct TraceCache {
    slots: Mutex<HashMap<TraceKey, TraceSlot>>,
    generated: AtomicUsize,
    hits: AtomicUsize,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the prepared trace for `(workload, runner.trace_len())`,
    /// generating it on first use and sharing it afterwards.
    ///
    /// # Errors
    ///
    /// [`RunError::Kernel`] if the kernel fails to trace; the failure is
    /// cached too (a broken kernel is not retried per config).
    pub fn get_or_prepare(
        &self,
        workload: &Workload,
        runner: &Runner,
    ) -> Result<Arc<PreparedTrace>, RunError> {
        let key = trace_key(workload, runner);
        let slot = {
            let mut slots = lock_clean(&self.slots);
            Arc::clone(slots.entry(key).or_default())
        };
        // A panic mid-generation poisons the slot with nothing cached;
        // recovering the lock lets the next caller regenerate.
        let mut guard = lock_clean(&slot);
        match &*guard {
            Some(cached) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cached.clone()
            }
            None => {
                let result = runner.try_prepare(workload).map(Arc::new);
                if result.is_ok() {
                    self.generated.fetch_add(1, Ordering::Relaxed);
                }
                *guard = Some(result.clone());
                result
            }
        }
    }

    /// Number of traces actually generated (one per distinct key).
    pub fn generated(&self) -> usize {
        self.generated.load(Ordering::Relaxed)
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

/// One completed run: the spec it came from plus its outcome.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The run description.
    pub spec: RunSpec,
    /// Statistics, or the typed failure.
    pub outcome: Result<SimStats, RunError>,
}

impl RunResult {
    /// The statistics of a successful run, or the typed failure — the
    /// non-panicking accessor every `Result`-typed experiment path uses.
    pub fn stats(&self) -> Result<&SimStats, &RunError> {
        self.outcome.as_ref()
    }

    /// The statistics of a successful run.
    ///
    /// # Panics
    ///
    /// Panics with the run label and the typed error if the run failed —
    /// for benches and examples where failure is a bug, not a condition.
    /// `Result`-typed code uses [`RunResult::stats`] instead.
    // lint:allow(error-typing) documented `# Panics` convenience wrapper for benches/examples
    pub fn expect_stats(&self) -> &SimStats {
        match self.stats() {
            Ok(s) => s,
            Err(e) => panic!("{}: {e}", self.spec.label()),
        }
    }
}

/// A work-stealing executor over run grids.
///
/// Individual [`RunSpec`]s — not whole workloads — are the unit of
/// scheduling: each worker owns a deque of runs and, when its own
/// drains, steals from the back of the first other worker's deque that
/// still has work, so a slow workload (e.g. `mcf`'s DRAM-bound chase)
/// never serializes the tail of an experiment. Prepared traces are shared through a
/// [`TraceCache`], which can itself be shared across executors (the
/// `ExperimentSet` shares one across all experiments).
///
/// Two optional layers sit in front of the simulator:
///
/// * a [`ResultStore`] ([`Executor::with_store`]) is consulted by
///   [`RunKey`] before any trace is prepared or cycle simulated, and
///   every fresh result is saved back — a warm store serves a repeated
///   grid with **zero** simulations;
/// * a [`Shard`] ([`Executor::with_shard`]) restricts simulation to the
///   runs this process owns; foreign cells missing from the store come
///   back as [`RunError::NotInShard`] (the populate-pass contract — see
///   `crate::plan`).
#[derive(Debug)]
pub struct Executor {
    threads: usize,
    cache: Arc<TraceCache>,
    store: Option<Arc<dyn ResultStore>>,
    shard: Option<Shard>,
    intervals: Option<IntervalPolicy>,
    deadline: Option<Duration>,
    store_hits: AtomicUsize,
    store_misses: AtomicUsize,
    simulated: AtomicUsize,
    shard_skips: AtomicUsize,
    warm_loaded: AtomicUsize,
    warm_built: AtomicUsize,
}

/// Shared checkpoint slots for one stitched run: the first piece job to
/// claim the set becomes the *producer* (one chained functional sweep,
/// store-backed); every other piece is a *consumer* that blocks until
/// its slot fills. `done` is published unconditionally — even when the
/// producer fails or panics — so consumers always wake; an empty slot
/// then degrades that piece to the replay-from-zero path.
struct WarmSet {
    claimed: AtomicBool,
    slots: Mutex<WarmSlots>,
    ready: Condvar,
}

struct WarmSlots {
    states: Vec<Option<WarmState>>,
    done: bool,
}

impl WarmSet {
    fn new(k: usize) -> Self {
        WarmSet {
            claimed: AtomicBool::new(false),
            slots: Mutex::new(WarmSlots { states: vec![None; k], done: false }),
            ready: Condvar::new(),
        }
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// An executor sized to the machine with a fresh trace cache.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::with_threads(threads)
    }

    /// An executor with an explicit worker count (≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
            cache: Arc::new(TraceCache::new()),
            store: None,
            shard: None,
            intervals: None,
            deadline: None,
            store_hits: AtomicUsize::new(0),
            store_misses: AtomicUsize::new(0),
            simulated: AtomicUsize::new(0),
            shard_skips: AtomicUsize::new(0),
            warm_loaded: AtomicUsize::new(0),
            warm_built: AtomicUsize::new(0),
        }
    }

    /// Replaces the trace cache with a shared one.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<TraceCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Attaches a result store, consulted before every simulation and
    /// written after.
    #[must_use]
    pub fn with_store(mut self, store: Arc<dyn ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Restricts simulation to the runs `shard` owns (a full `1/1` shard
    /// is a no-op and is not recorded).
    #[must_use]
    pub fn with_shard(mut self, shard: Shard) -> Self {
        self.shard = if shard.is_full() { None } else { Some(shard) };
        self
    }

    /// Splits every simulated run into `policy.k` deterministic
    /// intervals, each scheduled as its own job in the work-stealing
    /// deques (intra-run intervals interleave with other grid cells), and
    /// stitches the per-interval statistics back together in interval
    /// order. A `k == 0` policy disables splitting; note that even
    /// `k == 1` runs through the exact-boundary piece path and is stored
    /// under an interval-tagged [`RunKey`], never the serial one.
    #[must_use]
    pub fn with_intervals(mut self, policy: IntervalPolicy) -> Self {
        self.intervals = (policy.k >= 1).then_some(policy);
        self
    }

    /// The interval policy, if interval-parallel execution is active.
    pub fn intervals(&self) -> Option<IntervalPolicy> {
        self.intervals
    }

    /// Arms a per-run wall-clock watchdog: a run (or interval piece)
    /// whose job exceeds `deadline` resolves to [`RunError::Deadline`]
    /// instead of a result. The check is cooperative — it fires when
    /// the job *returns*, so it bounds reported results, not a thread
    /// wedged inside the simulator (the simulator's own no-retirement
    /// deadlock detector covers in-sim hangs). `None` disarms.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The armed per-run deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Applies the watchdog to one finished job: an overrunning success
    /// is demoted to [`RunError::Deadline`] (a real failure keeps its
    /// own, more specific error).
    fn enforce_deadline(
        &self,
        label: &str,
        started: Instant,
        outcome: Result<SimStats, RunError>,
    ) -> Result<SimStats, RunError> {
        let Some(budget) = self.deadline else { return outcome };
        let elapsed = started.elapsed();
        if elapsed <= budget || outcome.is_err() {
            return outcome;
        }
        Err(RunError::Deadline {
            label: label.to_string(),
            elapsed_ms: elapsed.as_millis() as u64,
            budget_ms: budget.as_millis() as u64,
        })
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The trace cache (inspectable: generation/hit counters).
    pub fn cache(&self) -> &TraceCache {
        &self.cache
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&Arc<dyn ResultStore>> {
        self.store.as_ref()
    }

    /// Runs served from the result store without simulating.
    pub fn store_hits(&self) -> usize {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Store lookups that found no entry (each miss is followed by a
    /// simulation, a shard skip, or — on a degraded remote store — a
    /// local fallback simulation).
    pub fn store_misses(&self) -> usize {
        self.store_misses.load(Ordering::Relaxed)
    }

    /// Runs actually simulated (the "zero on a warm store" counter).
    pub fn simulated(&self) -> usize {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Runs skipped because another shard owns them.
    pub fn shard_skips(&self) -> usize {
        self.shard_skips.load(Ordering::Relaxed)
    }

    /// Warm checkpoints served from the result store (no functional
    /// replay paid for those positions).
    pub fn warm_loaded(&self) -> usize {
        self.warm_loaded.load(Ordering::Relaxed)
    }

    /// Warm checkpoints built by a producer sweep (and published to the
    /// store when one is attached). `--assert-warm-cached` pins this to
    /// zero on a warm store.
    pub fn warm_built(&self) -> usize {
        self.warm_built.load(Ordering::Relaxed)
    }

    fn simulate(&self, spec: &RunSpec, idx: usize) -> Result<SimStats, RunError> {
        let trace = self.cache.get_or_prepare(&spec.workload, &spec.runner)?;
        // Chaos hooks, keyed by the run's stable grid index so a plan
        // targets the same cell at any thread count. Cold path only —
        // one atomic load each when no fault plan is installed.
        faults::sleep_if_fired(faults::SIM_DELAY, idx as u64);
        faults::panic_if_fired(faults::SIM_PANIC, idx as u64);
        self.simulated.fetch_add(1, Ordering::Relaxed);
        spec.runner
            .try_run(&trace, spec.effective_config())
            .map_err(|e| attribute_workload(e, spec))
    }

    fn execute(&self, spec: &RunSpec, idx: usize) -> Result<SimStats, RunError> {
        if self.store.is_none() && self.shard.is_none() {
            return catch_panic(&spec.label(), || self.simulate(spec, idx));
        }
        let key = RunKey::of(spec);
        if let Some(store) = &self.store {
            if let Some(stats) = store.load(&key) {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(stats);
            }
            self.store_misses.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(shard) = self.shard {
            if !shard.owns(&key) {
                self.shard_skips.fetch_add(1, Ordering::Relaxed);
                // The miss above may have granted this process the key's
                // single-flight lease; a skipped cell will never publish,
                // so release it for the owning shard's session.
                if let Some(store) = &self.store {
                    store.abandon(&key);
                }
                return Err(RunError::NotInShard { label: spec.label(), shard });
            }
        }
        // Catch panics *here*, not just in the worker loop: the lease
        // release below must still run when the simulation crashes, or
        // single-flight waiters would idle out the TTL.
        let stats = match catch_panic(&spec.label(), || self.simulate(spec, idx)) {
            Ok(stats) => stats,
            Err(e) => {
                // Wake single-flight waiters instead of making them idle
                // out the lease TTL on a simulation that will never land.
                if let Some(store) = &self.store {
                    store.abandon(&key);
                }
                return Err(e);
            }
        };
        if let Some(store) = &self.store {
            store
                .save(&key, &stats)
                .map_err(|source| RunError::Store { label: spec.label(), source })?;
        }
        Ok(stats)
    }

    /// Runs every spec of the grid; `results[i]` corresponds to
    /// `grid.specs()[i]` regardless of scheduling.
    pub fn run(&self, grid: &Grid) -> Vec<RunResult> {
        self.run_specs(grid.specs())
    }

    /// Runs an explicit spec list; results keep the input order.
    pub fn run_specs(&self, specs: Vec<RunSpec>) -> Vec<RunResult> {
        if specs.is_empty() {
            return Vec::new();
        }
        match self.intervals {
            Some(policy) => self.run_specs_stitched(specs, policy),
            None => self.run_specs_serial(specs),
        }
    }

    fn run_specs_serial(&self, specs: Vec<RunSpec>) -> Vec<RunResult> {
        let n = specs.len();
        let workers = self.threads.min(n);
        // Deal indices round-robin so every worker starts with a spread of
        // workloads (specs of one workload are adjacent in grid order).
        let queues: Vec<Mutex<std::collections::VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        let mut results: Vec<Option<RunResult>> = (0..n).map(|_| None).collect();
        let results_mutex = Mutex::new(&mut results);
        std::thread::scope(|scope| {
            for me in 0..workers {
                let queues = &queues;
                let specs = &specs;
                let results_mutex = &results_mutex;
                scope.spawn(move || loop {
                    // Own work first (front), then steal from the back of
                    // the other workers' deques.
                    let job = lock_clean(&queues[me]).pop_front().or_else(|| {
                        (0..queues.len())
                            .filter(|w| *w != me)
                            .find_map(|w| lock_clean(&queues[w]).pop_back())
                    });
                    let Some(i) = job else { break };
                    let label = specs[i].label();
                    let started = Instant::now();
                    // Backstop isolation: `execute` catches simulation
                    // panics itself (it still has lease cleanup to do);
                    // this catch covers everything else in the job.
                    let outcome = catch_panic(&label, || self.execute(&specs[i], i));
                    let outcome = self.enforce_deadline(&label, started, outcome);
                    let result = RunResult { spec: specs[i].clone(), outcome };
                    lock_clean(results_mutex)[i] = Some(result);
                });
            }
        });
        results.into_iter().map(|r| r.expect("all specs executed")).collect() // lint:allow(error-typing) scope join guarantees every slot was filled
    }

    /// Interval-parallel execution: each pending spec fans out into
    /// `policy.k` piece jobs sharing the work-stealing deques, the last
    /// piece to finish stitches the run (in interval order, so the result
    /// is deterministic regardless of scheduling). Store and shard are
    /// consulted up front under the interval-tagged key.
    fn run_specs_stitched(&self, specs: Vec<RunSpec>, policy: IntervalPolicy) -> Vec<RunResult> {
        let n = specs.len();
        let mut results: Vec<Option<RunResult>> = (0..n).map(|_| None).collect();
        let mut open: Vec<usize> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let key = RunKey::of_intervals(spec, policy);
            if let Some(store) = &self.store {
                if let Some(stats) = store.load(&key) {
                    self.store_hits.fetch_add(1, Ordering::Relaxed);
                    results[i] = Some(RunResult { spec: spec.clone(), outcome: Ok(stats) });
                    continue;
                }
                self.store_misses.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(shard) = self.shard {
                if !shard.owns(&key) {
                    self.shard_skips.fetch_add(1, Ordering::Relaxed);
                    if let Some(store) = &self.store {
                        store.abandon(&key);
                    }
                    let outcome = Err(RunError::NotInShard { label: spec.label(), shard });
                    results[i] = Some(RunResult { spec: spec.clone(), outcome });
                    continue;
                }
            }
            open.push(i);
        }
        if open.is_empty() {
            return results.into_iter().map(|r| r.expect("resolved in pre-pass")).collect(); // lint:allow(error-typing) the pre-pass above filled every slot when `open` is empty
        }

        struct PendingRun {
            spec: usize,
            pieces: Mutex<Vec<Option<Result<SimStats, RunError>>>>,
            remaining: AtomicUsize,
            warm: WarmSet,
        }
        let k = policy.k.max(1) as usize;
        let pending: Vec<PendingRun> = open
            .iter()
            .map(|&i| PendingRun {
                spec: i,
                pieces: Mutex::new(vec![None; k]),
                remaining: AtomicUsize::new(k),
                warm: WarmSet::new(k),
            })
            .collect();
        // Job j is piece (j % k) of pending run (j / k); dealt round-robin
        // like serial specs so workers start with a spread of runs.
        let jobs = pending.len() * k;
        let workers = self.threads.min(jobs);
        let queues: Vec<Mutex<std::collections::VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..jobs).step_by(workers).collect()))
            .collect();
        let results_mutex = Mutex::new(&mut results);
        std::thread::scope(|scope| {
            for me in 0..workers {
                let queues = &queues;
                let specs = &specs;
                let pending = &pending;
                let results_mutex = &results_mutex;
                scope.spawn(move || loop {
                    let job = lock_clean(&queues[me]).pop_front().or_else(|| {
                        (0..queues.len())
                            .filter(|w| *w != me)
                            .find_map(|w| lock_clean(&queues[w]).pop_back())
                    });
                    let Some(j) = job else { break };
                    let run = &pending[j / k];
                    let piece = j % k;
                    let spec = &specs[run.spec];
                    let label = spec.label();
                    let started = Instant::now();
                    let outcome = catch_panic(&label, || {
                        self.simulate_piece(spec, policy, piece, run.spec, &run.warm)
                    });
                    let outcome = self.enforce_deadline(&label, started, outcome);
                    lock_clean(&run.pieces)[piece] = Some(outcome);
                    if run.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Last piece in: stitch this run (backstop catch —
                        // `stitch` handles its own lease cleanup on error).
                        let outcome =
                            catch_panic(&label, || self.stitch(spec, policy, &run.pieces));
                        let result = RunResult { spec: spec.clone(), outcome };
                        lock_clean(results_mutex)[run.spec] = Some(result);
                    }
                });
            }
        });
        results.into_iter().map(|r| r.expect("all specs executed")).collect() // lint:allow(error-typing) scope join guarantees every slot was filled
    }

    fn simulate_piece(
        &self,
        spec: &RunSpec,
        policy: IntervalPolicy,
        piece: usize,
        idx: usize,
        warm: &WarmSet,
    ) -> Result<SimStats, RunError> {
        let trace = self.cache.get_or_prepare(&spec.workload, &spec.runner)?;
        // Keyed by the run's grid index (not the piece): `sim.panic@i`
        // fails run i whole, at any k and any thread count.
        faults::sleep_if_fired(faults::SIM_DELAY, idx as u64);
        faults::panic_if_fired(faults::SIM_PANIC, idx as u64);
        let ws = self.obtain_warm(warm, spec, policy, piece);
        let (start, end) = spec.runner.interval_bounds(policy.k)[piece];
        spec.runner
            .try_run_piece_warm(
                &trace,
                spec.effective_config(),
                ws.as_ref(),
                start,
                end,
                policy.warmup,
            )
            .map_err(|e| attribute_workload(e, spec))
    }

    /// Hands a piece its warm checkpoint, electing this job as the
    /// producer when the run's sweep has not started yet. Returns `None`
    /// when the sweep failed or left the slot empty — the piece then
    /// degrades to the O(prefix) replay inside
    /// [`Runner::try_run_piece_warm`], preserving the result.
    fn obtain_warm(
        &self,
        set: &WarmSet,
        spec: &RunSpec,
        policy: IntervalPolicy,
        piece: usize,
    ) -> Option<WarmState> {
        if !set.claimed.swap(true, Ordering::AcqRel) {
            self.produce_warm(set, spec, policy);
        }
        let mut slots = lock_clean(&set.slots);
        loop {
            if let Some(ws) = slots.states[piece].take() {
                return Some(ws);
            }
            if slots.done {
                return None;
            }
            slots = set.ready.wait(slots).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The producer sweep: one chained functional pass over the trace
    /// emitting every piece's checkpoint in position order, fetching
    /// cached checkpoints from the result store and publishing freshly
    /// built ones back (best-effort — a read-only store never fails the
    /// run). Each checkpoint is handed to the waiting consumers the
    /// moment it exists, so detailed windows overlap the sweep's tail.
    fn produce_warm(&self, set: &WarmSet, spec: &RunSpec, policy: IntervalPolicy) {
        let outcome = catch_panic(&spec.label(), || {
            let trace = self.cache.get_or_prepare(&spec.workload, &spec.runner)?;
            let positions = spec.runner.warm_positions(policy);
            let (_, sweep) = spec
                .runner
                .try_sweep_warm_states(
                    &trace,
                    spec.effective_config(),
                    &positions,
                    |_, pos| {
                        let store = self.store.as_ref()?;
                        let bytes = store.load_warm(&WarmKey::of(spec, pos))?;
                        WarmState::from_bytes(bytes).ok()
                    },
                    |i, pos, ws, origin| {
                        if origin == WarmOrigin::Built {
                            if let Some(store) = &self.store {
                                let _ = store.save_warm(&WarmKey::of(spec, pos), ws.as_bytes());
                            }
                        }
                        let mut slots = lock_clean(&set.slots);
                        slots.states[i] = Some(ws.clone());
                        drop(slots);
                        set.ready.notify_all();
                    },
                )
                .map_err(|e| attribute_workload(e, spec))?;
            self.warm_loaded.fetch_add(sweep.loaded, Ordering::Relaxed);
            self.warm_built.fetch_add(sweep.built, Ordering::Relaxed);
            Ok(())
        });
        // A failed or panicked sweep leaves its remaining slots empty;
        // publishing `done` (always, on every path) wakes the consumers,
        // which degrade those pieces to replay instead of deadlocking.
        drop(outcome);
        let mut slots = lock_clean(&set.slots);
        slots.done = true;
        drop(slots);
        set.ready.notify_all();
    }

    /// Merges a completed run's pieces in interval order, applies the
    /// paranoid serial cross-check when requested, and persists the result
    /// under the interval-tagged key.
    fn stitch(
        &self,
        spec: &RunSpec,
        policy: IntervalPolicy,
        pieces: &Mutex<Vec<Option<Result<SimStats, RunError>>>>,
    ) -> Result<SimStats, RunError> {
        self.simulated.fetch_add(1, Ordering::Relaxed);
        let key = RunKey::of_intervals(spec, policy);
        let outcome = (|| -> Result<SimStats, RunError> {
            let mut stitched = SimStats::default();
            let mut pieces = lock_clean(pieces);
            for slot in pieces.iter_mut() {
                let piece = slot.take().expect("remaining hit zero with a piece missing")?; // lint:allow(error-typing) the atomic remaining-counter proves every piece landed
                stitched.merge(&piece);
            }
            if interval_paranoid() {
                let trace = self.cache.get_or_prepare(&spec.workload, &spec.runner)?;
                let serial = spec
                    .runner
                    .try_run_serial_exact(&trace, spec.effective_config())
                    .map_err(|e| attribute_workload(e, spec))?;
                // The paranoid comparator panics by design on a contract
                // violation; catching it here turns that into a typed
                // error *inside* this closure, so the lease release below
                // still runs.
                catch_panic(&spec.label(), || {
                    check_stitched_against_serial(&spec.label(), policy, &stitched, &serial);
                    Ok(())
                })?;
            }
            Ok(stitched)
        })();
        let stitched = match outcome {
            Ok(stitched) => stitched,
            Err(e) => {
                // A failed stitch never publishes; release the lease the
                // pre-pass miss may hold so single-flight waiters move on.
                if let Some(store) = &self.store {
                    store.abandon(&key);
                }
                return Err(e);
            }
        };
        if let Some(store) = &self.store {
            store
                .save(&key, &stitched)
                .map_err(|source| RunError::Store { label: spec.label(), source })?;
        }
        Ok(stitched)
    }
}

/// Fills in the workload name on a [`RunError::Sim`] — the `Runner` run
/// helpers cannot know it.
pub(crate) fn attribute_workload(e: RunError, spec: &RunSpec) -> RunError {
    match e {
        RunError::Sim { config, phase, source, .. } => RunError::Sim {
            config,
            workload: spec.workload.name.to_string(),
            phase,
            source,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eole_core::config::CoreConfig;
    use eole_workloads::workload_by_name;

    #[test]
    fn trace_cache_generates_exactly_once_per_key() {
        let cache = Arc::new(TraceCache::new());
        let runner = Runner::quick();
        let w = workload_by_name("gzip").unwrap();
        let threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cache = Arc::clone(&cache);
                let w = w.clone();
                scope.spawn(move || {
                    let t = cache.get_or_prepare(&w, &runner).unwrap();
                    assert!(!t.is_empty());
                });
            }
        });
        assert_eq!(cache.generated(), 1, "one generation per key, ever");
        assert_eq!(cache.hits(), threads - 1);
        // A different trace length is a different key.
        let longer = Runner { warmup: 20_000, measure: 30_000 };
        cache.get_or_prepare(&w, &longer).unwrap();
        assert_eq!(cache.generated(), 2);
    }

    #[test]
    fn cache_is_shared_across_configs_in_a_grid() {
        let grid = Grid::new()
            .runner(Runner::quick())
            .configs([
                CoreConfig::baseline_6_64(),
                CoreConfig::baseline_vp_6_64(),
                CoreConfig::eole_4_64(),
            ])
            .workload_names(&["gzip", "namd"]);
        let exec = Executor::with_threads(4);
        let results = exec.run(&grid);
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        assert_eq!(exec.cache().generated(), 2, "one trace per workload, not per run");
        assert_eq!(exec.cache().hits(), 4);
    }

    #[test]
    fn results_keep_grid_order_under_concurrency() {
        let grid = Grid::new()
            .runner(Runner::quick())
            .configs([CoreConfig::baseline_6_64(), CoreConfig::eole_4_64()])
            .workload_names(&["gzip", "namd", "hmmer"]);
        let expected: Vec<String> = grid.specs().iter().map(RunSpec::label).collect();
        for threads in [1, 2, 7] {
            let results = Executor::with_threads(threads).run(&grid);
            let got: Vec<String> = results.iter().map(|r| r.spec.label()).collect();
            assert_eq!(got, expected, "order must be stable with {threads} threads");
            for r in &results {
                let stats = r.stats().unwrap_or_else(|e| panic!("{}: {e}", r.spec.label()));
                assert!(stats.ipc() > 0.1, "{}", r.spec.label());
            }
        }
    }

    #[test]
    fn bad_configs_become_typed_errors_not_panics() {
        let mut bad = CoreConfig::baseline_6_64();
        bad.prf_banks = 3; // fails validation inside Simulator::new
        let grid = Grid::new()
            .runner(Runner::quick())
            .configs([bad, CoreConfig::baseline_6_64()])
            .workload_names(&["gzip"]);
        let results = Executor::with_threads(2).run(&grid);
        assert_eq!(results.len(), 2);
        match &results[0].outcome {
            Err(RunError::Sim { phase, source, workload, .. }) => {
                assert_eq!(*phase, RunPhase::Build);
                assert_eq!(workload, "gzip");
                assert!(matches!(source, SimError::BadConfig(_)));
            }
            other => panic!("expected a Build error, got {other:?}"),
        }
        assert!(results[1].outcome.is_ok(), "one bad run must not poison the grid");
    }

    #[test]
    fn warm_store_serves_a_repeat_grid_with_zero_simulations() {
        use crate::store::MemStore;
        let store: Arc<dyn ResultStore> = Arc::new(MemStore::new());
        let grid = Grid::new()
            .runner(Runner::quick())
            .configs([CoreConfig::baseline_6_64(), CoreConfig::eole_4_64()])
            .workload_names(&["gzip", "namd"]);
        let cold = Executor::with_threads(2).with_store(Arc::clone(&store));
        let first = cold.run(&grid);
        assert_eq!(cold.simulated(), 4);
        assert_eq!(cold.store_hits(), 0);
        let warm = Executor::with_threads(2).with_store(Arc::clone(&store));
        let second = warm.run(&grid);
        assert_eq!(warm.simulated(), 0, "every cell must come from the store");
        assert_eq!(warm.store_hits(), 4);
        assert_eq!(warm.cache().generated(), 0, "no trace is prepared on a full hit");
        for (a, b) in first.iter().zip(&second) {
            let (sa, sb) = (a.stats().unwrap(), b.stats().unwrap());
            assert_eq!(sa.cycles, sb.cycles, "{}", a.spec.label());
            assert_eq!(sa.committed, sb.committed);
        }
    }

    #[test]
    fn shard_mode_skips_foreign_cells_with_typed_errors() {
        use crate::plan::Shard;
        let grid = Grid::new()
            .runner(Runner::quick())
            .configs([CoreConfig::baseline_6_64(), CoreConfig::eole_4_64()])
            .workload_names(&["gzip", "namd"]);
        let mut simulated = 0;
        let mut skipped = 0;
        for k in 1..=2 {
            let exec = Executor::with_threads(2).with_shard(Shard::new(k, 2).unwrap());
            for r in exec.run(&grid) {
                match r.stats() {
                    Ok(s) => {
                        simulated += 1;
                        assert!(s.committed > 0);
                    }
                    Err(RunError::NotInShard { shard, .. }) => {
                        skipped += 1;
                        assert_eq!(shard.count(), 2);
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }
            assert_eq!(exec.shard_skips() + exec.simulated(), 4);
        }
        // Across both shards every cell ran exactly once and was skipped
        // exactly once.
        assert_eq!(simulated, 4);
        assert_eq!(skipped, 4);
        // A full shard is a no-op.
        let full = Executor::with_threads(1).with_shard(Shard::full());
        assert!(full.run(&grid).iter().all(|r| r.stats().is_ok()));
    }

    #[test]
    fn executor_runs_seed_replicates() {
        let grid = Grid::new()
            .runner(Runner::quick())
            .config(CoreConfig::baseline_vp_6_64())
            .workload_names(&["gzip"])
            .seeds([0, 1, 2]);
        let exec = Executor::new();
        let results = exec.run(&grid);
        assert_eq!(results.len(), 3);
        assert_eq!(exec.cache().generated(), 1, "replicates share the trace");
        for r in &results {
            assert!(r.stats().expect("replicate failed").committed > 0);
        }
    }
}
