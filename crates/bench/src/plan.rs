//! The plan layer: deterministically partitioning a [`Grid`] across
//! processes, and merging the pieces back.
//!
//! A [`Shard`] names one slice of a partition (`--shard k/n` on the CLI);
//! ownership of a run is a pure function of its [`RunKey`] digest, so
//!
//! * the partition is **deterministic** — independent of thread counts,
//!   scheduling, or which process asks;
//! * the shards are **disjoint** and their union is the whole grid;
//! * a run owned by shard `k` in one experiment's grid is owned by shard
//!   `k` in *every* grid — shared cells (e.g. the `Baseline_VP_6_64`
//!   reference runs that several figures reuse) are simulated by exactly
//!   one shard and served to the rest through the
//!   [`ResultStore`](crate::store::ResultStore).
//!
//! [`Plan`] applies a shard count to a concrete grid: it enumerates each
//! shard's spec list and reassembles per-shard result vectors into grid
//! order, which is all a caller needs to fold a sharded execution into
//! the same `ExperimentReport` an unsharded run produces.

use std::collections::VecDeque;

use crate::exec::RunResult;
use crate::spec::{Grid, RunSpec};
use crate::store::RunKey;

/// One slice of an `n`-way partition (1-based, like the CLI flag).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// Shard `index` of `count` (both 1-based; `index ≤ count`).
    ///
    /// # Errors
    ///
    /// A rendered description when the pair is out of range.
    pub fn new(index: usize, count: usize) -> Result<Shard, String> {
        if count == 0 {
            return Err("shard count must be ≥ 1".into());
        }
        if index == 0 || index > count {
            return Err(format!("shard index {index} out of range 1..={count}"));
        }
        Ok(Shard { index, count })
    }

    /// Parses the CLI form `"k/n"`.
    ///
    /// # Errors
    ///
    /// A rendered description of the malformation.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (k, n) = s.split_once('/').ok_or_else(|| format!("`{s}`: expected K/N"))?;
        let index = k.trim().parse().map_err(|_| format!("`{s}`: bad shard index"))?;
        let count = n.trim().parse().map_err(|_| format!("`{s}`: bad shard count"))?;
        Shard::new(index, count)
    }

    /// The whole grid as a single shard (`1/1`).
    pub fn full() -> Shard {
        Shard { index: 1, count: 1 }
    }

    /// True for the trivial `1/1` partition.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// 1-based slice index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of slices.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether this shard owns the run identified by `key` — a pure
    /// function of the key digest, identical in every process.
    pub fn owns(&self, key: &RunKey) -> bool {
        key.digest64() % self.count as u64 == (self.index - 1) as u64
    }

    /// Whether this shard owns `spec` (derives the key).
    pub fn owns_spec(&self, spec: &RunSpec) -> bool {
        self.owns(&RunKey::of(spec))
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// An `n`-way partition of one grid.
#[derive(Clone, Debug)]
pub struct Plan {
    specs: Vec<RunSpec>,
    count: usize,
}

impl Plan {
    /// Partitions `grid` into `count` shards (`count ≥ 1`).
    pub fn new(grid: &Grid, count: usize) -> Plan {
        Plan { specs: grid.specs(), count: count.max(1) }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.count
    }

    /// Total runs across all shards (the grid size).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the underlying grid is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The specs owned by shard `index` (1-based), in grid order.
    ///
    /// # Panics
    ///
    /// Panics when `index` is outside `1..=num_shards()` — a harness
    /// authoring error, like an out-of-range CLI flag.
    pub fn shard(&self, index: usize) -> Vec<RunSpec> {
        let shard = Shard::new(index, self.count)
            .unwrap_or_else(|e| panic!("plan shard: {e}")); // lint:allow(error-typing) documented `# Panics`: out-of-range shard index is a harness authoring error
        self.specs.iter().filter(|s| shard.owns_spec(s)).cloned().collect()
    }

    /// Every shard's spec list, in shard order.
    pub fn shards(&self) -> Vec<Vec<RunSpec>> {
        (1..=self.count).map(|k| self.shard(k)).collect()
    }

    /// Reassembles per-shard result vectors (as produced by running each
    /// [`Plan::shard`] list in order) into grid order, so the merged
    /// vector is indistinguishable from an unsharded
    /// `Executor::run(&grid)` — ready to fold into one report.
    ///
    /// # Errors
    ///
    /// A rendered description when the shard outputs do not tile the
    /// grid (wrong shard count, missing or reordered results).
    pub fn merge(&self, shard_results: Vec<Vec<RunResult>>) -> Result<Vec<RunResult>, String> {
        if shard_results.len() != self.count {
            return Err(format!(
                "expected {} shard result vectors, got {}",
                self.count,
                shard_results.len()
            ));
        }
        let mut queues: Vec<VecDeque<RunResult>> =
            shard_results.into_iter().map(VecDeque::from).collect();
        let mut merged = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let key = RunKey::of(spec);
            let owner = (key.digest64() % self.count as u64) as usize;
            let next = queues[owner]
                .pop_front()
                .ok_or_else(|| format!("shard {}/{} ran out of results", owner + 1, self.count))?;
            if next.spec.label() != spec.label() {
                return Err(format!(
                    "shard {}/{} out of order: expected {}, got {}",
                    owner + 1,
                    self.count,
                    spec.label(),
                    next.spec.label()
                ));
            }
            merged.push(next);
        }
        if let Some((k, q)) = queues.iter().enumerate().find(|(_, q)| !q.is_empty()) {
            return Err(format!("shard {}/{} has {} surplus results", k + 1, self.count, q.len()));
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;
    use eole_core::config::CoreConfig;

    fn grid() -> Grid {
        Grid::new()
            .runner(Runner::quick())
            .configs([
                CoreConfig::baseline_6_64(),
                CoreConfig::baseline_vp_6_64(),
                CoreConfig::eole_4_64(),
            ])
            .workload_names(&["gzip", "namd", "mcf", "hmmer"])
            .seeds([0, 1])
    }

    #[test]
    fn shard_parse_round_trips_and_rejects_garbage() {
        let s = Shard::parse("2/4").unwrap();
        assert_eq!((s.index(), s.count()), (2, 4));
        assert_eq!(s.to_string(), "2/4");
        assert!(!s.is_full());
        assert!(Shard::parse("1/1").unwrap().is_full());
        for bad in ["", "3", "0/2", "3/2", "a/b", "1/0"] {
            assert!(Shard::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn shards_tile_the_grid_disjointly() {
        let g = grid();
        let labels = |specs: &[RunSpec]| -> Vec<String> {
            specs.iter().map(RunSpec::label).collect()
        };
        let all: Vec<String> = labels(&g.specs());
        for n in [1usize, 2, 3, 5, 7] {
            let plan = Plan::new(&g, n);
            let shards = plan.shards();
            assert_eq!(shards.len(), n);
            let mut union: Vec<String> = shards.iter().flat_map(|s| labels(s)).collect();
            assert_eq!(union.len(), all.len(), "n={n}: union covers the grid exactly once");
            union.sort();
            let mut sorted_all = all.clone();
            sorted_all.sort();
            assert_eq!(union, sorted_all, "n={n}");
        }
    }

    #[test]
    fn partition_is_deterministic_across_plans() {
        let g = grid();
        let a = Plan::new(&g, 3).shards();
        let b = Plan::new(&g, 3).shards();
        for (x, y) in a.iter().zip(&b) {
            let lx: Vec<String> = x.iter().map(RunSpec::label).collect();
            let ly: Vec<String> = y.iter().map(RunSpec::label).collect();
            assert_eq!(lx, ly);
        }
    }

    #[test]
    fn ownership_is_grid_independent() {
        // The same spec must land on the same shard regardless of which
        // grid it appears in — the property that lets shards share cells
        // across experiments through the store.
        let small = Grid::new()
            .runner(Runner::quick())
            .config(CoreConfig::baseline_vp_6_64())
            .workload_names(&["gzip"]);
        let spec = &small.specs()[0];
        for n in [2usize, 3, 4] {
            let owners: Vec<usize> = (1..=n)
                .filter(|&k| Shard::new(k, n).unwrap().owns_spec(spec))
                .collect();
            assert_eq!(owners.len(), 1, "exactly one owner for n={n}");
        }
    }

    #[test]
    fn merge_reassembles_grid_order() {
        let g = grid();
        let plan = Plan::new(&g, 3);
        // Fake results: outcome content does not matter for the merge.
        let fake = |spec: &RunSpec| RunResult {
            spec: spec.clone(),
            outcome: Ok(eole_core::stats::SimStats::default()),
        };
        let shard_results: Vec<Vec<RunResult>> =
            plan.shards().iter().map(|specs| specs.iter().map(fake).collect()).collect();
        let merged = plan.merge(shard_results).unwrap();
        let merged_labels: Vec<String> = merged.iter().map(|r| r.spec.label()).collect();
        let grid_labels: Vec<String> = g.specs().iter().map(RunSpec::label).collect();
        assert_eq!(merged_labels, grid_labels);
    }

    #[test]
    fn merge_rejects_mis_tiled_outputs() {
        let g = grid();
        let plan = Plan::new(&g, 2);
        assert!(plan.merge(vec![Vec::new()]).is_err(), "wrong shard count");
        let mut shards: Vec<Vec<RunResult>> = plan
            .shards()
            .iter()
            .map(|specs| {
                specs
                    .iter()
                    .map(|s| RunResult {
                        spec: s.clone(),
                        outcome: Ok(eole_core::stats::SimStats::default()),
                    })
                    .collect()
            })
            .collect();
        shards[0].pop();
        assert!(plan.merge(shards).is_err(), "missing result");
    }
}
