//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p eole-bench --bin experiments -- all
//! cargo run --release -p eole-bench --bin experiments -- all --format json --out results.json
//! cargo run --release -p eole-bench --bin experiments -- fig7 fig12 --format csv
//! cargo run --release -p eole-bench --bin experiments -- fig6 --warmup 50000 --measure 100000
//! cargo run --release -p eole-bench --bin experiments -- table3 --quick
//! ```
//!
//! Default output is Markdown on stdout; `--format json` emits one
//! `eole-report-set/v1` object covering every selected report (schema in
//! `EXPERIMENTS.md`); `--out FILE` redirects the payload to a file, with
//! a progress line on stderr either way.

use std::io::Write as _;

use eole_bench::experiments::{ExperimentSet, EXPERIMENT_NAMES};
use eole_bench::Runner;
use eole_stats::report::{reports_to_json, ExperimentReport};

const USAGE: &str = "usage: experiments [names...|all] [--quick] [--warmup N] [--measure N] \
[--format md|json|csv] [--out FILE] [--md FILE]
       experiments compare OLD.json NEW.json [--threshold PCT] [--out FILE]
experiments: table1 table2 table3 fig2 fig4 offload fig6 fig7 fig8 fig10 fig11 fig12 fig13 \
vp_ablation ee_writes squash_cost levt_depth_ablation complexity
compare: diff two results.json report sets (Markdown delta table on stdout; exits 1 on \
>PCT% drops in IPC/speedup columns, default 2%)";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Markdown,
    Json,
    Csv,
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(1);
}

fn render(reports: &[ExperimentReport], format: Format, runner: &Runner) -> String {
    match format {
        Format::Markdown => {
            let mut out = String::new();
            for r in reports {
                out.push_str(&r.render_markdown());
                out.push('\n');
            }
            out
        }
        Format::Json => format!(
            "{{\"schema\":\"eole-report-set/v1\",\"runner\":{{\"warmup\":{},\"measure\":{}}},\"reports\":{}}}",
            runner.warmup,
            runner.measure,
            reports_to_json(reports)
        ),
        Format::Csv => {
            // One CSV block per report, separated by `# id: title` comment
            // lines (split on `^#` to recover the individual tables).
            let mut out = String::new();
            for r in reports {
                out.push_str(&format!("# {}: {}\n", r.id(), r.title()));
                out.push_str(&r.to_csv());
                out.push('\n');
            }
            out
        }
    }
}

/// `experiments compare OLD.json NEW.json`: the ROADMAP's trend gate.
fn run_compare(args: &[String]) -> ! {
    let mut threshold = 2.0f64;
    let mut out_path: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--threshold takes a number"));
            }
            "--out" => {
                i += 1;
                out_path =
                    Some(args.get(i).unwrap_or_else(|| fail("--out needs a value")).clone());
            }
            other => files.push(other.to_string()),
        }
        i += 1;
    }
    let [old_path, new_path] = files.as_slice() else {
        fail("compare takes exactly two files: OLD.json NEW.json")
    };
    let read = |path: &String| -> eole_stats::json::Json {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        eole_stats::json::Json::parse(&text)
            .unwrap_or_else(|e| fail(&format!("parse {path}: {e}")))
    };
    let cmp = eole_bench::Comparison::compare(&read(old_path), &read(new_path), threshold)
        .unwrap_or_else(|e| fail(&e));
    let md = cmp.to_markdown();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &md).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            eprintln!("[written to {path}]");
        }
        None => print!("{md}"),
    }
    if cmp.has_regressions() {
        eprintln!(
            "[FAIL: {} regression(s) worse than {threshold}% — see above]",
            cmp.regressions.len()
        );
        std::process::exit(1);
    }
    eprintln!("[no regressions worse than {threshold}%]");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        run_compare(&args[1..]);
    }
    let mut names: Vec<String> = Vec::new();
    let mut runner = Runner::default();
    let mut format = Format::Markdown;
    let mut out_path: Option<String> = None;
    let take = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| fail(&format!("{flag} needs a value"))).clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => runner = Runner::quick(),
            "--warmup" => {
                runner.warmup = take(&args, &mut i, "--warmup")
                    .parse()
                    .unwrap_or_else(|_| fail("--warmup takes a number"));
            }
            "--measure" => {
                runner.measure = take(&args, &mut i, "--measure")
                    .parse()
                    .unwrap_or_else(|_| fail("--measure takes a number"));
            }
            "--format" => {
                format = match take(&args, &mut i, "--format").as_str() {
                    "md" | "markdown" => Format::Markdown,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => fail(&format!("unknown format {other} (md|json|csv)")),
                };
            }
            "--out" => out_path = Some(take(&args, &mut i, "--out")),
            // Back-compat alias from the pre-redesign CLI.
            "--md" => {
                format = Format::Markdown;
                out_path = Some(take(&args, &mut i, "--md"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => names.push(other.to_string()),
        }
        i += 1;
    }
    if names.is_empty() {
        println!("{USAGE}");
        return;
    }

    // Fail fast on an unwritable --out before hours of simulation — but
    // write to a sibling temp file and rename only on success, so a
    // mid-run failure never truncates the previous results (the
    // `compare` trend workflow depends on the old payload surviving).
    let tmp_path = out_path.as_ref().map(|path| format!("{path}.tmp"));
    let mut out_file = tmp_path.as_ref().map(|path| {
        std::fs::File::create(path).unwrap_or_else(|e| fail(&format!("create {path}: {e}")))
    });

    let set = ExperimentSet::new(runner);
    let start = std::time::Instant::now();
    let selected: Vec<String> = if names.iter().any(|n| n == "all") {
        EXPERIMENT_NAMES.iter().map(|n| n.to_string()).collect()
    } else {
        names
    };
    let mut reports = Vec::with_capacity(selected.len());
    for name in &selected {
        match set.by_name(name) {
            Ok(report) => reports.push(report),
            Err(e) => fail(&e.to_string()),
        }
    }

    let payload = render(&reports, format, &runner);
    match (&mut out_file, &out_path, &tmp_path) {
        (Some(f), Some(path), Some(tmp)) => {
            f.write_all(payload.as_bytes())
                .unwrap_or_else(|e| fail(&format!("write {tmp}: {e}")));
            std::fs::rename(tmp, path)
                .unwrap_or_else(|e| fail(&format!("rename {tmp} -> {path}: {e}")));
            eprintln!("[written to {path}]");
        }
        _ => print!("{payload}"),
    }
    eprintln!(
        "[{} report(s), warmup {} + measure {} µ-ops per run, {} trace(s) prepared, {:.1}s]",
        reports.len(),
        runner.warmup,
        runner.measure,
        set.executor().cache().generated(),
        start.elapsed().as_secs_f64()
    );
}
