//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p eole-bench --bin experiments -- all
//! cargo run --release -p eole-bench --bin experiments -- all --format json --out results.json
//! cargo run --release -p eole-bench --bin experiments -- fig7 fig12 --format csv
//! cargo run --release -p eole-bench --bin experiments -- fig6 --warmup 50000 --measure 100000
//! cargo run --release -p eole-bench --bin experiments -- table3 --quick
//! cargo run --release -p eole-bench --bin experiments -- all --quick --store target/eole-results
//! cargo run --release -p eole-bench --bin experiments -- all --quick --store DIR --shard 1/2
//! ```
//!
//! Default output is Markdown on stdout; `--format json` emits one
//! `eole-report-set/v1` object covering every selected report (schema in
//! `EXPERIMENTS.md`); `--out FILE` redirects the payload to a file, with
//! a progress line on stderr either way.
//!
//! `--store DIR` caches every run in a persistent `DirStore`: a repeat
//! invocation serves all cells from disk and simulates nothing
//! (`--assert-cached` turns that into an exit-status gate).
//! `--store tcp://HOST:PORT` shares one cache across machines through an
//! `eole-stored` daemon — concurrent sessions single-flight each key, so
//! a cold grid run by N sessions still simulates each cell exactly once,
//! and a dying daemon degrades to local simulation. `--shard K/N`
//! runs only the grid cells this process owns — a *populate* pass that
//! fills the store and emits no reports; a final unsharded `--store DIR`
//! invocation merges everything into the same payload an unsharded run
//! produces, byte for byte (CI asserts this per push).

use eole_bench::experiments::{ExperimentSet, EXPERIMENT_NAMES};
use eole_bench::{Format, RunError, Runner, Session, Shard};
use eole_core::config::CoreConfig;
use eole_stats::report::ExperimentReport;
use eole_workloads::{all_workloads, workload_by_name};

const USAGE: &str = "usage: experiments [names...|all] [--quick] [--warmup N] [--measure N] \
[--intervals K] [--interval-warmup W|auto] \
[--format md|json|csv] [--out FILE] [--md FILE] [--store DIR|tcp://HOST:PORT] [--shard K/N] \
[--assert-cached] [--assert-warm-cached] [--faults SPEC] [--run-deadline-ms N]
       experiments compare OLD.json NEW.json [--threshold PCT] [--out FILE]
experiments: table1 table2 table3 fig2 fig4 offload fig6 fig7 fig8 fig10 fig11 fig12 fig13 \
vp_ablation ee_writes squash_cost levt_depth_ablation dvtage_budget bebop_block_size complexity
compare: diff two results.json report sets (Markdown delta table on stdout; exits 1 on \
>PCT% drops in IPC/speedup columns, default 2%)
store/shard: --store caches per-run results on disk (eole-result/v2, one file per run key) or, \
with tcp://HOST:PORT, in a shared eole-stored daemon (single-flight dedup across sessions; \
graceful local fallback if the daemon dies); --shard K/N simulates only the cells this process \
owns (populate pass, no reports) — merge by re-running unsharded with the same --store; \
--assert-cached exits 1 if anything simulated
intervals: --intervals K splits every run into K deterministic intervals simulated \
concurrently and stitched (committed counts exact, cycles within the pinned budget; stored \
under interval-tagged keys); --interval-warmup W sets the per-interval warmup window in \
µ-ops (default warmup/2, min 1000), or `auto` to probe the smallest window whose seam \
error clears half the pinned budget; warm checkpoints are cached in the --store under \
eole-warmstate/v1 keys, and --assert-warm-cached exits 1 if any checkpoint was rebuilt \
instead of served; EOLE_INTERVAL_PARANOID=1 cross-checks every stitched run against a \
serial one (machine-readable delta line on stderr)
robustness: --faults SPEC installs a seeded deterministic fault-injection plan (chaos testing; \
also read from EOLE_FAULTS — grammar and site catalog in EXPERIMENTS.md); --run-deadline-ms N \
fails any single run whose job exceeds N ms wall-clock with a typed deadline error instead of \
stalling the suite";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(1);
}

/// `experiments compare OLD.json NEW.json`: the ROADMAP's trend gate.
fn run_compare(args: &[String]) -> ! {
    let mut threshold = 2.0f64;
    let mut out_path: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--threshold takes a number"));
            }
            "--out" => {
                i += 1;
                out_path =
                    Some(args.get(i).unwrap_or_else(|| fail("--out needs a value")).clone());
            }
            other => files.push(other.to_string()),
        }
        i += 1;
    }
    let [old_path, new_path] = files.as_slice() else {
        fail("compare takes exactly two files: OLD.json NEW.json")
    };
    let read = |path: &String| -> eole_stats::json::Json {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        eole_stats::json::Json::parse(&text)
            .unwrap_or_else(|e| fail(&format!("parse {path}: {e}")))
    };
    let cmp = eole_bench::Comparison::compare(&read(old_path), &read(new_path), threshold)
        .unwrap_or_else(|e| fail(&e));
    let md = cmp.to_markdown();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &md).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            eprintln!("[written to {path}]");
        }
        None => print!("{md}"),
    }
    if cmp.has_regressions() {
        eprintln!(
            "[FAIL: {} regression(s) worse than {threshold}% — see above]",
            cmp.regressions.len()
        );
        std::process::exit(1);
    }
    eprintln!("[no regressions worse than {threshold}%]");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        run_compare(&args[1..]);
    }
    let mut names: Vec<String> = Vec::new();
    let mut runner = Runner::default();
    let mut format = Format::Markdown;
    let mut out_path: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut shard: Option<Shard> = None;
    let mut assert_cached = false;
    let mut assert_warm_cached = false;
    let mut intervals = 0u32;
    /// `--interval-warmup` before resolution: a fixed window or `auto`.
    enum WarmupArg {
        Fixed(u64),
        Auto,
    }
    let mut interval_warmup: Option<WarmupArg> = None;
    let mut faults_spec: Option<String> = None;
    let mut run_deadline: Option<std::time::Duration> = None;
    let take = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| fail(&format!("{flag} needs a value"))).clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => runner = Runner::quick(),
            "--warmup" => {
                runner.warmup = take(&args, &mut i, "--warmup")
                    .parse()
                    .unwrap_or_else(|_| fail("--warmup takes a number"));
            }
            "--measure" => {
                runner.measure = take(&args, &mut i, "--measure")
                    .parse()
                    .unwrap_or_else(|_| fail("--measure takes a number"));
            }
            "--format" => {
                format = take(&args, &mut i, "--format")
                    .parse::<Format>()
                    .unwrap_or_else(|e: String| fail(&e));
            }
            "--out" => out_path = Some(take(&args, &mut i, "--out")),
            // Back-compat alias from the pre-redesign CLI.
            "--md" => {
                format = Format::Markdown;
                out_path = Some(take(&args, &mut i, "--md"));
            }
            "--intervals" => {
                intervals = take(&args, &mut i, "--intervals")
                    .parse()
                    .unwrap_or_else(|_| fail("--intervals takes a number"));
            }
            "--interval-warmup" => {
                let v = take(&args, &mut i, "--interval-warmup");
                interval_warmup = Some(if v == "auto" {
                    WarmupArg::Auto
                } else {
                    WarmupArg::Fixed(
                        v.parse()
                            .unwrap_or_else(|_| fail("--interval-warmup takes a number or `auto`")),
                    )
                });
            }
            "--store" => store_dir = Some(take(&args, &mut i, "--store")),
            "--shard" => {
                shard = Some(
                    Shard::parse(&take(&args, &mut i, "--shard")).unwrap_or_else(|e| fail(&e)),
                );
            }
            "--assert-cached" => assert_cached = true,
            "--assert-warm-cached" => assert_warm_cached = true,
            "--faults" => faults_spec = Some(take(&args, &mut i, "--faults")),
            "--run-deadline-ms" => {
                let ms: u64 = take(&args, &mut i, "--run-deadline-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--run-deadline-ms takes a number"));
                run_deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => names.push(other.to_string()),
        }
        i += 1;
    }
    if names.is_empty() {
        println!("{USAGE}");
        return;
    }
    let shard = shard.unwrap_or_else(Shard::full);
    if !shard.is_full() && store_dir.is_none() {
        fail("--shard requires --store (shards meet through the result store)");
    }

    // Fail fast on an unwritable --out before hours of simulation — but
    // never touch `path` itself (the previous payload must survive until
    // the new one is complete; the `compare` trend workflow depends on
    // it), and probe with a process-unique name that is removed at once,
    // so no stray file is left and no concurrent writer's temp file is
    // truncated. Populate passes emit no payload, so they skip the probe.
    if let (Some(path), true) = (&out_path, shard.is_full()) {
        let probe = format!("{path}.probe-{}.tmp", std::process::id());
        std::fs::File::create(&probe).unwrap_or_else(|e| fail(&format!("create {probe}: {e}")));
        std::fs::remove_file(&probe).ok();
    }

    if interval_warmup.is_some() && intervals == 0 {
        fail("--interval-warmup requires --intervals");
    }
    // `auto` resolves *before* the session exists: one quick seam-error
    // probe on a representative workload/configuration pair (gzip's tight
    // loops under the full EOLE core — predictor-heavy, so its seams are
    // the hard case) picks the smallest candidate window whose first
    // interval lands within half the pinned cycle budget.
    let interval_warmup: Option<u64> = match interval_warmup {
        Some(WarmupArg::Auto) => {
            let w = workload_by_name("gzip")
                .unwrap_or_else(|| fail("probe workload gzip missing from the registry"));
            let trace = runner.try_prepare(&w).unwrap_or_else(|e| fail(&e.to_string()));
            let chosen = runner
                .try_probe_interval_warmup(&trace, CoreConfig::eole_4_64(), intervals)
                .unwrap_or_else(|e| fail(&e.to_string()));
            eprintln!("[interval-warmup auto: probed W={chosen} µ-ops (gzip / eole_4_64)]");
            Some(chosen)
        }
        Some(WarmupArg::Fixed(w)) => Some(w),
        None => None,
    };

    // Fault injection: the flag wins; otherwise EOLE_FAULTS (so CI can
    // wrap any invocation without touching its arguments). A bad spec is
    // loud either way — silently ignoring a typo'd chaos plan would turn
    // a chaos run into a false-confidence ordinary run.
    match &faults_spec {
        Some(spec) => eole_bench::faults::install_spec(spec).unwrap_or_else(|e| fail(&e)),
        None => {
            eole_bench::faults::install_from_env().unwrap_or_else(|e| fail(&e));
        }
    }
    if let Some(summary) = eole_bench::faults::current_summary() {
        eprintln!("[experiments: FAULT INJECTION ACTIVE — {summary}]");
    }

    let mut builder = Session::builder()
        .runner(runner)
        .shard(shard)
        .intervals(intervals)
        .interval_warmup(interval_warmup)
        .run_deadline(run_deadline);
    if let Some(dir) = &store_dir {
        builder = builder.store_dir(dir.clone());
    }
    let session = builder.build().unwrap_or_else(|e| fail(&e));
    let set = ExperimentSet::with_session(session, all_workloads());

    let start = std::time::Instant::now();
    let selected: Vec<String> = if names.iter().any(|n| n == "all") {
        EXPERIMENT_NAMES.iter().map(|n| n.to_string()).collect()
    } else {
        names
    };
    let mut reports: Vec<ExperimentReport> = Vec::with_capacity(selected.len());
    let mut populated = 0usize;
    for name in &selected {
        match set.by_name(name) {
            Ok(mut report) => {
                if let Some(p) = set.session().intervals() {
                    report.push_note(format!(
                        "interval-stitched: k={} warmup={} µ-ops (committed counts exact, \
                         cycles within the pinned budget — see PERF.md)",
                        p.k, p.warmup
                    ));
                }
                reports.push(report);
            }
            // A populate pass owns only part of each grid: foreign cells
            // surface as NotInShard, which just means "this experiment's
            // report belongs to the merge pass".
            Err(RunError::NotInShard { .. }) if !shard.is_full() => populated += 1,
            Err(e) => fail(&e.to_string()),
        }
    }

    if shard.is_full() {
        let payload = set.session().render(&reports, format);
        match &out_path {
            Some(path) => {
                Session::write_payload(path, &payload).unwrap_or_else(|e| fail(&e));
                eprintln!("[written to {path}]");
            }
            None => print!("{payload}"),
        }
    } else {
        eprintln!(
            "[shard {shard}: populate pass, no reports emitted ({} complete, {populated} partial)]",
            reports.len()
        );
    }
    eprintln!(
        "[{} report(s), warmup {} + measure {} µ-ops per run, {}, {:.1}s]",
        reports.len(),
        runner.warmup,
        runner.measure,
        set.session().accounting(),
        start.elapsed().as_secs_f64()
    );
    if assert_cached && set.executor().simulated() > 0 {
        eprintln!(
            "[FAIL: --assert-cached but {} run(s) were simulated instead of served from the store]",
            set.executor().simulated()
        );
        std::process::exit(1);
    }
    if assert_warm_cached && set.executor().warm_built() > 0 {
        eprintln!(
            "[FAIL: --assert-warm-cached but {} warm checkpoint(s) were rebuilt instead of \
             served from the store]",
            set.executor().warm_built()
        );
        std::process::exit(1);
    }
}
