//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p eole-bench --bin experiments -- all
//! cargo run --release -p eole-bench --bin experiments -- fig7 fig12 --md results.md
//! cargo run --release -p eole-bench --bin experiments -- fig6 --warmup 50000 --measure 100000
//! cargo run --release -p eole-bench --bin experiments -- table3 --quick
//! ```

use std::io::Write as _;

use eole_bench::experiments::ExperimentSet;
use eole_bench::Runner;

const USAGE: &str = "usage: experiments [names...|all] [--quick] [--warmup N] [--measure N] [--md FILE]
experiments: table1 table2 table3 fig2 fig4 offload fig6 fig7 fig8 fig10 fig11 fig12 fig13 vp_ablation ee_writes complexity";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut runner = Runner::default();
    let mut md_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => runner = Runner::quick(),
            "--warmup" => {
                i += 1;
                runner.warmup = args[i].parse().expect("--warmup takes a number");
            }
            "--measure" => {
                i += 1;
                runner.measure = args[i].parse().expect("--measure takes a number");
            }
            "--md" => {
                i += 1;
                md_out = Some(args[i].clone());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => names.push(other.to_string()),
        }
        i += 1;
    }
    if names.is_empty() {
        println!("{USAGE}");
        return;
    }

    let set = ExperimentSet::new(runner);
    let start = std::time::Instant::now();
    let tables = if names.iter().any(|n| n == "all") {
        set.all()
    } else {
        names
            .iter()
            .map(|n| set.by_name(n).unwrap_or_else(|| panic!("unknown experiment {n}\n{USAGE}")))
            .collect()
    };

    for t in &tables {
        println!("{}", t.to_text());
    }
    eprintln!(
        "[{} experiment(s), warmup {} + measure {} µ-ops per run, {:.1}s]",
        tables.len(),
        runner.warmup,
        runner.measure,
        start.elapsed().as_secs_f64()
    );

    if let Some(path) = md_out {
        let mut f = std::fs::File::create(&path).expect("create markdown output");
        for t in &tables {
            writeln!(f, "{}", t.to_markdown()).expect("write markdown");
        }
        eprintln!("[markdown written to {path}]");
    }
}
