//! `sim-throughput`: steady-state simulator throughput, as data.
//!
//! Measures how many µ-ops per wall-clock second `Simulator::step` retires
//! in steady state (after warmup), per (configuration, workload) pair of
//! the quick suite, and emits the `eole-throughput/v3` JSON payload
//! (schema in `PERF.md`). This is the regression harness for the hot
//! loop: CI runs it per push, and `BENCH_throughput.json` at the repo
//! root records the trajectory.
//!
//! v2 added a `threads` section: the full suite re-run interval-parallel
//! (`--intervals K` pieces per run) at 1, 2, and machine-size workers,
//! recording wall-clock seconds and the speedup over one worker — the
//! scaling record for interval-parallel simulation. v3 splits each scale
//! entry's time into `warmup_seconds` (the serial chained checkpoint
//! sweep — the Amdahl fraction) and `detailed_seconds` (the concurrent
//! detailed pieces). `--baseline` still accepts v1 and v2 payloads
//! (they just lack the newer sections/fields).
//!
//! ```text
//! cargo run --release -p eole-bench --bin sim-throughput
//! cargo run --release -p eole-bench --bin sim-throughput -- --quick --out BENCH_throughput.json
//! cargo run --release -p eole-bench --bin sim-throughput -- --baseline old.json --min-speedup 0.9
//! ```
//!
//! With `--baseline FILE`, the previous payload's `current` section is
//! embedded as `baseline` and the gmean speedup is computed;
//! `--min-speedup X` then turns the exit status into a regression gate.
//!
//! The payload also carries a `microbench` section — raw
//! `evaluate_stream` lookups/sec per predictor kind (LVP through
//! D-VTAGE), isolating predictor table cost from pipeline cost — unless
//! `--no-microbench` skips it.

use eole_bench::{IntervalPolicy, RunSpec, Runner, Session};
use eole_core::config::CoreConfig;
use eole_predictors::value::{
    evaluate_stream, DVtage, Fcm, LastValue, StridePredictor, TwoDeltaStride, ValuePredictor,
    Vtage, VtageTwoDeltaStride,
};
use eole_stats::json::Json;
use eole_stats::report::json_string;
use eole_stats::summary::geometric_mean;

const USAGE: &str = "usage: sim-throughput [--quick] [--warmup N] [--measure N] [--reps N] \
[--label S] [--baseline FILE] [--min-speedup X] [--out FILE] [--no-microbench] \
[--intervals K] [--no-threads-scan]";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// The quick-suite configurations: the paper's reference points plus the
/// most window-hungry EOLE variant (banked PRF + port budgets).
fn suite_configs() -> Vec<CoreConfig> {
    vec![
        CoreConfig::baseline_6_64(),
        CoreConfig::baseline_vp_6_64(),
        CoreConfig::eole_6_64(),
        CoreConfig::eole_4_64_ports(4, 4),
    ]
}

/// The quick-suite workloads: an INT/FP/memory-bound spread (gzip's tight
/// loops, h264's branchy SAD, mcf's DRAM-bound pointer chase, namd's FP
/// kernels, hmmer's high-IPC dynamic programming).
const SUITE_WORKLOADS: [&str; 5] = ["gzip", "h264", "mcf", "namd", "hmmer"];

struct Measured {
    config: String,
    workload: String,
    committed: u64,
    seconds: f64,
}

impl Measured {
    fn mups(&self) -> f64 {
        self.committed as f64 / self.seconds / 1.0e6
    }
}

/// One steady-state measurement, repeated `reps` times through
/// [`Session::time_run`]: each rep builds a fresh simulator, warms it up
/// (trace-cold effects, predictor and cache training), then times the
/// identical measurement window. The fastest rep is kept — every rep
/// simulates the exact same µ-op stream, so the minimum is the
/// least-noisy estimate of the hot loop's cost. Timing never consults a
/// result store by construction (`time_run` is the uncacheable path).
fn measure(session: &Session, spec: &RunSpec, reps: usize) -> Measured {
    let mut best_seconds = f64::INFINITY;
    let mut committed = 0;
    for _ in 0..reps.max(1) {
        let timed = session
            .time_run(spec)
            .unwrap_or_else(|e| fail(&e.to_string()));
        committed = timed.stats.committed;
        best_seconds = best_seconds.min(timed.seconds);
    }
    Measured {
        config: spec.config.name.clone(),
        workload: spec.workload.name.to_string(),
        committed,
        seconds: best_seconds,
    }
}

/// The predictor microbench: raw `evaluate_stream` lookup throughput
/// (one lookup = predict + train) per predictor kind over gzip's
/// VP-eligible µ-op stream — the cost of the predictor *itself*,
/// isolated from the timing pipeline, so a table-layout change (e.g.
/// D-VTAGE's block organization) shows up as a lookups/sec delta in
/// `BENCH_throughput.json` even when pipeline throughput hides it.
fn microbench(session: &Session, reps: usize) -> String {
    let w = eole_workloads::workload_by_name("gzip").expect("gzip is in the registry");
    let trace = session.prepare(&w).unwrap_or_else(|e| fail(&e.to_string()));
    let stream = eole_bench::vp_stream(&trace);
    let seed = 0xe01e;
    type Builder = Box<dyn Fn() -> Box<dyn ValuePredictor>>;
    let make: Vec<(&str, Builder)> = vec![
        ("LVP", Box::new(move || Box::new(LastValue::new(8192, seed)))),
        ("Stride", Box::new(move || Box::new(StridePredictor::new(8192, seed)))),
        ("2D-Stride", Box::new(move || Box::new(TwoDeltaStride::paper(seed)))),
        ("FCM-4", Box::new(move || Box::new(Fcm::new(8192, 8192, seed)))),
        ("VTAGE", Box::new(move || Box::new(Vtage::paper(seed)))),
        ("VTAGE-2DStride", Box::new(move || Box::new(VtageTwoDeltaStride::paper(seed)))),
        ("D-VTAGE", Box::new(move || Box::new(DVtage::paper(4, 4, seed)))),
    ];
    let mut runs = Vec::new();
    for (name, build) in &make {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let mut p = build();
            let start = std::time::Instant::now();
            let stats = evaluate_stream(&mut *p, trace.history(), stream.iter().copied());
            let secs = start.elapsed().as_secs_f64();
            std::hint::black_box(stats);
            best = best.min(secs);
        }
        let mlps = stream.len() as f64 / best / 1.0e6;
        eprintln!("  microbench {name:<16} {mlps:>8.3} Mlookups/s");
        runs.push(format!(
            "{{\"predictor\":{},\"mlookups_per_sec\":{mlps:.4},\"events\":{}}}",
            json_string(name),
            stream.len()
        ));
    }
    format!("{{\"workload\":\"gzip\",\"runs\":[{}]}}", runs.join(","))
}

/// One run as an `eole-throughput/v1` JSON object (strings escaped).
fn run_to_json(config: &str, workload: &str, mups: f64, committed: u64, seconds: f64) -> String {
    format!(
        "{{\"config\":{},\"workload\":{},\"mups\":{mups:.4},\"committed\":{committed},\"seconds\":{seconds:.6}}}",
        json_string(config),
        json_string(workload),
    )
}

fn section_to_json(label: &str, runs: &[String], gmean: f64) -> String {
    format!(
        "{{\"label\":{},\"runs\":[{}],\"gmean_mups\":{gmean:.4}}}",
        json_string(label),
        runs.join(",")
    )
}

fn runs_to_json(runs: &[Measured], label: &str) -> String {
    let rendered: Vec<String> = runs
        .iter()
        .map(|r| run_to_json(&r.config, &r.workload, r.mups(), r.committed, r.seconds))
        .collect();
    let gmean = geometric_mean(&runs.iter().map(Measured::mups).collect::<Vec<_>>())
        .unwrap_or(0.0);
    section_to_json(label, &rendered, gmean)
}

/// The interval-parallel threads scaling section: the whole suite re-run
/// split into `k` intervals per run, at each worker count of `counts`,
/// timing the parallel stitch wall-clock (sum over the suite's runs).
/// The first count is the reference for `speedup_vs_first`.
fn threads_scan(
    session: &Session,
    configs: &[CoreConfig],
    runner: Runner,
    k: u32,
    reps: usize,
    counts: &[usize],
) -> String {
    let policy = IntervalPolicy::of(k, &runner);
    let mut entries: Vec<String> = Vec::new();
    let mut reference = None;
    for &t in counts {
        let mut seconds = f64::INFINITY;
        let mut warmup_seconds = 0.0;
        let mut detailed_seconds = 0.0;
        let mut committed = 0u64;
        for _ in 0..reps.max(1) {
            let mut rep_warm = 0.0;
            let mut rep_detail = 0.0;
            let mut rep_committed = 0u64;
            for name in SUITE_WORKLOADS {
                let w = eole_workloads::workload_by_name(name)
                    .unwrap_or_else(|| fail(&format!("unknown workload {name}")));
                for config in configs {
                    let spec =
                        RunSpec { config: config.clone(), workload: w.clone(), runner, seed: 0 };
                    let timed = session
                        .time_run_intervals(&spec, t, policy)
                        .unwrap_or_else(|e| fail(&e.to_string()));
                    rep_warm += timed.warmup_seconds;
                    rep_detail += timed.detailed_seconds;
                    rep_committed += timed.stats.committed;
                }
            }
            if rep_warm + rep_detail < seconds {
                seconds = rep_warm + rep_detail;
                warmup_seconds = rep_warm;
                detailed_seconds = rep_detail;
            }
            committed = rep_committed;
        }
        let reference = *reference.get_or_insert(seconds);
        let speedup = if seconds > 0.0 { reference / seconds } else { 0.0 };
        let mups = committed as f64 / seconds / 1.0e6;
        eprintln!(
            "  threads {t:<2} suite {seconds:>8.3}s (warm {warmup_seconds:.3}s + detail \
             {detailed_seconds:.3}s)  {mups:>8.3} Mµops/s  {speedup:.2}x vs 1"
        );
        entries.push(format!(
            "{{\"threads\":{t},\"seconds\":{seconds:.6},\"warmup_seconds\":{warmup_seconds:.6},\
             \"detailed_seconds\":{detailed_seconds:.6},\"mups\":{mups:.4},\
             \"speedup_vs_1\":{speedup:.4}}}"
        ));
    }
    format!(
        "{{\"intervals\":{k},\"interval_warmup\":{},\"scales\":[{}]}}",
        policy.warmup,
        entries.join(",")
    )
}

/// Extracts the `current` section of a previous payload verbatim (it
/// becomes the new payload's `baseline`), plus its gmean. Accepts both
/// the v2 schema and the pre-threads v1 (identical `current` shape).
fn load_baseline(path: &str) -> (String, f64) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    let v = Json::parse(&text).unwrap_or_else(|e| fail(&format!("parse {path}: {e}")));
    let schema = v.get("schema").and_then(Json::as_str);
    if !matches!(
        schema,
        Some("eole-throughput/v1") | Some("eole-throughput/v2") | Some("eole-throughput/v3")
    ) {
        fail(&format!("{path} is not an eole-throughput/v1, /v2, or /v3 payload"));
    }
    let current = v.get("current").unwrap_or_else(|| fail(&format!("{path}: no `current`")));
    let gmean = current
        .get("gmean_mups")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail(&format!("{path}: no gmean_mups")));
    let label = current.get("label").and_then(Json::as_str).unwrap_or("baseline");
    let runs = current.get("runs").and_then(Json::as_arr).unwrap_or(&[]);
    let rendered: Vec<String> = runs
        .iter()
        .map(|r| {
            run_to_json(
                r.get("config").and_then(Json::as_str).unwrap_or("?"),
                r.get("workload").and_then(Json::as_str).unwrap_or("?"),
                r.get("mups").and_then(Json::as_f64).unwrap_or(0.0),
                r.get("committed").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                r.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
            )
        })
        .collect();
    (section_to_json(label, &rendered, gmean), gmean)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runner = Runner { warmup: 20_000, measure: 80_000 };
    let mut reps = 3usize;
    let mut label = "working tree".to_string();
    let mut baseline_path: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut out_path: Option<String> = None;
    let mut run_microbench = true;
    let mut run_threads_scan = true;
    let mut intervals = 8u32;
    let take = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| fail(&format!("{flag} needs a value"))).clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                runner = Runner { warmup: 15_000, measure: 40_000 };
                reps = 2;
            }
            "--warmup" => {
                runner.warmup = take(&args, &mut i, "--warmup")
                    .parse()
                    .unwrap_or_else(|_| fail("--warmup takes a number"));
            }
            "--measure" => {
                runner.measure = take(&args, &mut i, "--measure")
                    .parse()
                    .unwrap_or_else(|_| fail("--measure takes a number"));
            }
            "--reps" => {
                reps = take(&args, &mut i, "--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps takes a number"));
            }
            "--label" => label = take(&args, &mut i, "--label"),
            "--baseline" => baseline_path = Some(take(&args, &mut i, "--baseline")),
            "--min-speedup" => {
                min_speedup = Some(
                    take(&args, &mut i, "--min-speedup")
                        .parse()
                        .unwrap_or_else(|_| fail("--min-speedup takes a number")),
                );
            }
            "--out" => out_path = Some(take(&args, &mut i, "--out")),
            "--no-microbench" => run_microbench = false,
            "--no-threads-scan" => run_threads_scan = false,
            "--intervals" => {
                intervals = take(&args, &mut i, "--intervals")
                    .parse()
                    .unwrap_or_else(|_| fail("--intervals takes a number"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let session = Session::new(runner);
    let configs = suite_configs();
    let mut runs: Vec<Measured> = Vec::new();
    for name in SUITE_WORKLOADS {
        let w = eole_workloads::workload_by_name(name)
            .unwrap_or_else(|| fail(&format!("unknown workload {name}")));
        // Warm the session's trace cache once per workload; every config
        // rep below replays the same prepared trace.
        session.prepare(&w).unwrap_or_else(|e| fail(&e.to_string()));
        for config in &configs {
            let spec =
                RunSpec { config: config.clone(), workload: w.clone(), runner, seed: 0 };
            let m = measure(&session, &spec, reps);
            eprintln!("  {:<28} {:<8} {:>8.3} Mµops/s", m.config, m.workload, m.mups());
            runs.push(m);
        }
    }

    let current = runs_to_json(&runs, &label);
    let mut payload = String::new();
    payload.push_str("{\"schema\":\"eole-throughput/v3\",");
    payload.push_str(&format!(
        "\"runner\":{{\"warmup\":{},\"measure\":{}}},\"reps\":{reps},",
        runner.warmup, runner.measure
    ));
    payload.push_str(&format!("\"current\":{current}"));
    if run_microbench {
        payload.push_str(&format!(",\"microbench\":{}", microbench(&session, reps)));
    }
    if run_threads_scan {
        let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut counts = vec![1usize, 2, machine];
        counts.sort_unstable();
        counts.dedup();
        eprintln!("[threads scan: intervals={intervals}, workers {counts:?}]");
        let section = threads_scan(&session, &configs, runner, intervals, reps, &counts);
        payload.push_str(&format!(",\"threads\":{section}"));
    }
    let mut speedup = None;
    if let Some(path) = &baseline_path {
        let (baseline_json, baseline_gmean) = load_baseline(path);
        let current_gmean =
            geometric_mean(&runs.iter().map(Measured::mups).collect::<Vec<_>>()).unwrap_or(0.0);
        let s = if baseline_gmean > 0.0 { current_gmean / baseline_gmean } else { 0.0 };
        payload.push_str(&format!(",\"baseline\":{baseline_json},\"speedup\":{s:.4}"));
        speedup = Some(s);
    }
    payload.push_str("}\n");

    match &out_path {
        Some(path) => {
            // Same temp-file + rename discipline as every session payload:
            // a failure mid-write never truncates the committed baseline.
            Session::write_payload(path, &payload).unwrap_or_else(|e| fail(&e));
            eprintln!("[written to {path}]");
        }
        None => print!("{payload}"),
    }
    if let Some(s) = speedup {
        eprintln!("[gmean speedup vs baseline: {s:.3}x]");
        if let Some(min) = min_speedup {
            if s < min {
                eprintln!("[FAIL: speedup {s:.3}x below the --min-speedup {min} gate]");
                std::process::exit(1);
            }
        }
    }
}
