//! `fingerprints`: dump cycle-exactness fingerprints for the golden test.
//!
//! Prints one `("config", "workload", cycles, committed, squashed),` line
//! per (preset configuration × workload) over a small trace — the exact
//! table `tests/golden_fingerprints.rs` asserts against. Regenerate the
//! table with this tool ONLY when a simulator change is *intentionally*
//! cycle-visible (a model change, not a refactor); pure refactors must
//! reproduce the committed table bit-for-bit.
//!
//! ```text
//! cargo run --release -p eole-bench --bin fingerprints
//! ```

use eole_bench::Runner;
use eole_core::config::CoreConfig;
use eole_core::pipeline::Simulator;

/// The golden methodology: small but long enough to exercise squashes,
/// cache misses, and every window structure. Must match the test.
pub const GOLDEN_RUNNER: Runner = Runner { warmup: 2_000, measure: 5_000 };

/// Every named preset of the paper's evaluation.
fn preset_configs() -> Vec<CoreConfig> {
    CoreConfig::all_presets()
}

fn main() {
    let runner = GOLDEN_RUNNER;
    println!("// ({} presets × {} workloads), runner: warmup {} + measure {} µ-ops",
        preset_configs().len(),
        eole_workloads::all_workloads().len(),
        runner.warmup,
        runner.measure,
    );
    for w in eole_workloads::all_workloads() {
        let trace = runner.prepare(&w);
        for config in preset_configs() {
            let name = config.name.clone();
            let mut sim = Simulator::new(&trace, config).expect("preset is valid");
            sim.run(runner.warmup).expect("warmup");
            sim.begin_measurement();
            sim.run(runner.measure).expect("measure");
            let s = sim.stats();
            println!(
                "(\"{}\", \"{}\", {}, {}, {}),",
                name, w.name, s.cycles, s.committed, s.squashed
            );
        }
    }
}
