//! `fingerprints`: dump cycle-exactness fingerprints for the golden test.
//!
//! Prints one `("config", "workload", cycles, committed, squashed),` line
//! per (preset configuration × workload) over a small trace — the exact
//! table `tests/golden_fingerprints.rs` asserts against. Regenerate the
//! table with this tool ONLY when a simulator change is *intentionally*
//! cycle-visible (a model change, not a refactor); pure refactors must
//! reproduce the committed table bit-for-bit. A regeneration is also the
//! signal to bump `eole_core::canon::SIM_FINGERPRINT_VERSION` in the same
//! commit — stored results from the old behavior are stale (`PERF.md`
//! documents the rule).
//!
//! With `--digests` it instead prints the `("name", "hex"),` canonical
//! content-digest table `tests/run_identity.rs` pins — regenerate that
//! one ONLY when the canonical serialization format marker
//! (`eole-core-config/vN`) is deliberately bumped.
//!
//! ```text
//! cargo run --release -p eole-bench --bin fingerprints
//! cargo run --release -p eole-bench --bin fingerprints -- --digests
//! ```

use eole_bench::{Grid, Runner, Session};
use eole_core::config::CoreConfig;

/// The golden methodology: small but long enough to exercise squashes,
/// cache misses, and every window structure. Must match the test.
pub const GOLDEN_RUNNER: Runner = Runner { warmup: 2_000, measure: 5_000 };

fn main() {
    if std::env::args().any(|a| a == "--digests") {
        println!("// canonical config digests (eole-core-config format marker)");
        for c in CoreConfig::all_presets() {
            println!("(\"{}\", \"{}\"),", c.name, c.digest_hex());
        }
        return;
    }
    let runner = GOLDEN_RUNNER;
    let session = Session::new(runner);
    // Workload-major grid order matches the committed table: one trace
    // per workload (shared through the session's cache), every preset
    // over it.
    let grid = Grid::new()
        .runner(runner)
        .configs(CoreConfig::all_presets())
        .all_workloads();
    println!(
        "// ({} presets × {} workloads), runner: warmup {} + measure {} µ-ops",
        CoreConfig::all_presets().len(),
        eole_workloads::all_workloads().len(),
        runner.warmup,
        runner.measure,
    );
    for r in session.run(&grid) {
        let s = r.stats().unwrap_or_else(|e| {
            eprintln!("error: {}: {e}", r.spec.label());
            std::process::exit(1);
        });
        println!(
            "(\"{}\", \"{}\", {}, {}, {}),",
            r.spec.config.name, r.spec.workload.name, s.cycles, s.committed, s.squashed
        );
    }
}
