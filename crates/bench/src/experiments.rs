//! One function per table/figure of the paper's evaluation.
//!
//! Each experiment builds a [`Grid`], hands it to the shared
//! [`Executor`] (one [`TraceCache`](crate::TraceCache) across the whole
//! set, so a workload's trace is generated once no matter how many
//! experiments replay it), and folds the per-run statistics into an
//! [`ExperimentReport`] whose rows follow the paper's benchmark order;
//! speedup figures append a geometric-mean row. `EXPERIMENTS.md` records
//! the paper-vs-measured comparison for each, plus the JSON schema the
//! reports serialize to.

use eole_core::complexity::PrfPortModel;
use eole_core::config::{CoreConfig, ValuePredictorKind};
use eole_core::stats::SimStats;
use eole_predictors::value::{
    evaluate_stream, DVtage, DVtageConfig, EvalStats, TwoDeltaStride, ValuePredictor, Vtage,
    VtageTwoDeltaStride,
};
use eole_stats::report::{Cell, ExperimentReport};
use eole_stats::summary::geometric_mean;
use eole_workloads::{all_workloads, Workload};

use crate::exec::{Executor, RunError};
use crate::session::Session;
use crate::spec::Grid;
use crate::Runner;

/// Paper Table 3 baseline IPCs, in suite order (for shape comparison).
pub const PAPER_IPC: [(&str, f64); 19] = [
    ("gzip", 0.984),
    ("wupwise", 1.553),
    ("applu", 1.591),
    ("vpr", 1.326),
    ("art", 1.211),
    ("crafty", 1.769),
    ("parser", 0.544),
    ("vortex", 1.781),
    ("bzip2", 0.888),
    ("gcc", 1.055),
    ("gamess", 1.929),
    ("mcf", 0.105),
    ("milc", 0.459),
    ("namd", 1.860),
    ("gobmk", 0.766),
    ("hmmer", 2.477),
    ("sjeng", 1.321),
    ("h264", 1.312),
    ("lbm", 0.748),
];

/// Every experiment name the harness knows, in paper order.
pub const EXPERIMENT_NAMES: [&str; 20] = [
    "table1", "table2", "table3", "fig2", "fig4", "offload", "fig6", "fig7", "fig8",
    "fig10", "fig11", "fig12", "fig13", "vp_ablation", "ee_writes", "squash_cost",
    "levt_depth_ablation", "dvtage_budget", "bebop_block_size", "complexity",
];

/// Driver for the full experiment suite.
pub struct ExperimentSet {
    /// Methodology shared by all runs.
    pub runner: Runner,
    workloads: Vec<Workload>,
    session: Session,
}

impl ExperimentSet {
    /// Builds a set over the full Table 3 suite with a plain session
    /// (no result store, no shard restriction).
    pub fn new(runner: Runner) -> Self {
        Self::with_session(Session::new(runner), all_workloads())
    }

    /// Restricts the suite (used by Criterion benches and smoke tests).
    pub fn with_workloads(runner: Runner, names: &[&str]) -> Self {
        let workloads =
            all_workloads().into_iter().filter(|w| names.contains(&w.name)).collect();
        Self::with_session(Session::new(runner), workloads)
    }

    /// Builds a set over an explicit [`Session`] — the way the CLI wires
    /// in a persistent result store and/or a shard restriction.
    pub fn with_session(session: Session, workloads: Vec<Workload>) -> Self {
        ExperimentSet { runner: session.runner(), workloads, session }
    }

    /// The session driving the runs.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The executor (its [`crate::TraceCache`] and store counters show
    /// trace/result sharing across experiments).
    pub fn executor(&self) -> &Executor {
        self.session.executor()
    }

    /// Runs `configs` over every workload of the set and returns, per
    /// workload (suite order), the statistics per config (input order).
    fn run_grid(&self, configs: Vec<CoreConfig>) -> Result<Vec<Vec<SimStats>>, RunError> {
        let n_configs = configs.len();
        let grid = Grid::new()
            .runner(self.runner)
            .workloads(self.workloads.iter().cloned())
            .configs(configs);
        let results = self.session.run(&grid);
        // Real failures outrank shard skips: in a `--shard` populate pass
        // roughly every other cell is a benign NotInShard, and the first
        // one in grid order must not mask a genuine Sim/Store/Kernel
        // error on a cell this process *does* own.
        if let Some(real) = results.iter().find_map(|r| match &r.outcome {
            Err(e) if !matches!(e, RunError::NotInShard { .. }) => Some(e.clone()),
            _ => None,
        }) {
            return Err(real);
        }
        let mut per_workload = Vec::with_capacity(self.workloads.len());
        for chunk in results.chunks(n_configs) {
            let mut stats = Vec::with_capacity(n_configs);
            for r in chunk {
                stats.push(*r.stats().map_err(Clone::clone)?);
            }
            per_workload.push(stats);
        }
        Ok(per_workload)
    }

    /// Per-workload speedup report: `configs` normalized to `baseline`.
    fn speedup_report(
        &self,
        id: &str,
        title: &str,
        baseline: CoreConfig,
        configs: &[CoreConfig],
    ) -> Result<ExperimentReport, RunError> {
        let names: Vec<String> = configs.iter().map(|c| c.name.clone()).collect();
        let mut report = ExperimentReport::new(id, title)
            .column("bench")
            .columns_unit(names, "×");
        let mut all = vec![baseline];
        all.extend_from_slice(configs);
        let rows = self.run_grid(all)?;
        let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
        for (w, stats) in self.workloads.iter().zip(&rows) {
            let base = stats[0].ipc();
            let mut cells: Vec<Cell> = vec![w.name.into()];
            for (i, s) in stats[1..].iter().enumerate() {
                let speed = s.ipc() / base;
                cells.push(Cell::Num(speed));
                per_config[i].push(speed);
            }
            report.add_row(cells);
        }
        let mut gm: Vec<Cell> = vec!["gmean".into()];
        for col in &per_config {
            gm.push(Cell::Num(geometric_mean(col).unwrap_or(0.0)));
        }
        report.add_row(gm);
        Ok(report)
    }

    /// Table 1: the simulated configuration (static dump for the record).
    pub fn table1(&self) -> Result<ExperimentReport, RunError> {
        let c = CoreConfig::baseline_6_64();
        let mut t = ExperimentReport::new("table1", "Table 1 — simulator configuration")
            .column("parameter")
            .column("value");
        let rows: Vec<(&str, String)> = vec![
            ("fetch/rename/commit width", format!("{}/{}/{} µ-ops", c.fetch_width, c.rename_width, c.commit_width)),
            ("issue width", format!("{} (4 in EOLE_4_*)", c.issue_width)),
            ("ROB / IQ / LQ / SQ", format!("{} / {} / {} / {}", c.rob_entries, c.iq_entries, c.lq_entries, c.sq_entries)),
            ("PRF", format!("{} INT + {} FP", c.int_prf, c.fp_prf)),
            ("front-end depth", format!("{} cycles (+1 LE/VT with VP)", c.frontend_depth)),
            ("branch predictor", "TAGE 1+12 comps, 2-way 4K BTB, 32-entry RAS".into()),
            ("memory dependence", "Store Sets 1K SSIT / 128 SSIDs".into()),
            ("FUs", format!("{} ALU(1c), {} MulDiv(3c/25c*), {} FP(3c), {} FPMulDiv(5c/10c*), {} Ld/Str", c.fu.int_alu, c.fu.int_muldiv, c.fu.fp_alu, c.fu.fp_muldiv, c.fu.mem_ports)),
            ("L1I / L1D", "32 KB 4-way; L1D 2 cycles, 64 MSHRs".into()),
            ("L2", "2 MB 16-way, 12 cycles, stride prefetcher degree 8".into()),
            ("DRAM", "DDR3-ish: 75/130/185-cycle row hit/closed/conflict".into()),
            ("value predictor", "VTAGE-2DStride hybrid + 3-bit FPC {1,1/32×4,1/64×2}".into()),
        ];
        for (k, v) in rows {
            t.add_row(vec![k.into(), v.into()]);
        }
        Ok(t)
    }

    /// Table 2: predictor layout summary.
    pub fn table2(&self) -> Result<ExperimentReport, RunError> {
        let mut t = ExperimentReport::new("table2", "Table 2 — predictor layout")
            .column("predictor")
            .column("#entries")
            .column("tag")
            .column_unit("size", "KB")
            .column_unit("paper", "KB");
        let stride = TwoDeltaStride::paper(1);
        let vtage = Vtage::paper(1);
        let hybrid = VtageTwoDeltaStride::paper(1);
        let kb = |bits: u64| Cell::Num(bits as f64 / 8.0 / 1024.0);
        t.add_row(vec![
            "2D-Stride".into(),
            "8192".into(),
            "full (64)".into(),
            kb(stride.storage_bits()),
            "251.9".into(),
        ]);
        t.add_row(vec![
            "VTAGE".into(),
            "8192 base + 6×1024".into(),
            "12 + rank".into(),
            kb(vtage.storage_bits()),
            "68.7 + 64.1".into(),
        ]);
        t.add_row(vec![
            "hybrid total".into(),
            "-".into(),
            "-".into(),
            kb(hybrid.storage_bits()),
            "~385".into(),
        ]);
        Ok(t)
    }

    /// Table 3: per-benchmark baseline IPC (ours vs the paper's, for shape).
    pub fn table3(&self) -> Result<ExperimentReport, RunError> {
        let mut t = ExperimentReport::new("table3", "Table 3 — benchmarks and Baseline_6_64 IPC")
            .column("bench")
            .column("kind")
            .column_unit("ours", "IPC")
            .column_unit("paper", "IPC");
        let rows = self.run_grid(vec![CoreConfig::baseline_6_64()])?;
        for (w, stats) in self.workloads.iter().zip(&rows) {
            let paper = PAPER_IPC
                .iter()
                .find(|(n, _)| *n == w.name)
                .map(|(_, v)| Cell::Num(*v))
                .unwrap_or_else(|| "-".into());
            t.add_row(vec![
                w.name.into(),
                format!("{:?}", w.kind).to_uppercase().into(),
                Cell::Num(stats[0].ipc()),
                paper,
            ]);
        }
        Ok(t)
    }

    /// Fig. 2: fraction of committed µ-ops early-executable, 1 vs 2 EE
    /// stages (measured on the 6-issue EOLE pipeline, as in the paper).
    pub fn fig2(&self) -> Result<ExperimentReport, RunError> {
        let ee2 = CoreConfig::eole_6_64()
            .to_builder()
            .name("EOLE_6_64_2ee")
            .ee_stages(2)
            .build()
            .expect("preset variant is valid"); // lint:allow(error-typing) static preset authoring invariant, covered by preset tests
        let mut t = ExperimentReport::new("fig2", "Fig. 2 — early-executed fraction of committed µ-ops")
            .column("bench")
            .column_unit("1 ALU stage", "fraction")
            .column_unit("2 ALU stages", "fraction");
        let rows = self.run_grid(vec![CoreConfig::eole_6_64(), ee2])?;
        for (w, stats) in self.workloads.iter().zip(&rows) {
            t.add_row(vec![
                w.name.into(),
                Cell::Num(stats[0].early_exec_fraction()),
                Cell::Num(stats[1].early_exec_fraction()),
            ]);
        }
        Ok(t)
    }

    /// Fig. 4: fraction of committed µ-ops late-executable, split into
    /// high-confidence branches and value-predicted ALU µ-ops.
    pub fn fig4(&self) -> Result<ExperimentReport, RunError> {
        let mut t = ExperimentReport::new("fig4", "Fig. 4 — late-executed fraction of committed µ-ops")
            .column("bench")
            .column_unit("HC branches", "fraction")
            .column_unit("value-predicted ALU", "fraction")
            .column_unit("total", "fraction");
        let rows = self.run_grid(vec![CoreConfig::eole_6_64()])?;
        for (w, stats) in self.workloads.iter().zip(&rows) {
            let s = &stats[0];
            t.add_row(vec![
                w.name.into(),
                Cell::Num(s.late_branch_fraction()),
                Cell::Num(s.late_alu_fraction()),
                Cell::Num(s.late_branch_fraction() + s.late_alu_fraction()),
            ]);
        }
        Ok(t)
    }

    /// §3.4: total OoO-engine offload (Fig. 2 + Fig. 4, disjoint sets).
    pub fn offload(&self) -> Result<ExperimentReport, RunError> {
        let mut t = ExperimentReport::new(
            "offload",
            "§3.4 — µ-ops bypassing the OoO engine (paper: 10%–60%)",
        )
        .column("bench")
        .column_unit("early", "fraction")
        .column_unit("late ALU", "fraction")
        .column_unit("late branch", "fraction")
        .column_unit("total", "fraction");
        let rows = self.run_grid(vec![CoreConfig::eole_6_64()])?;
        for (w, stats) in self.workloads.iter().zip(&rows) {
            let s = &stats[0];
            t.add_row(vec![
                w.name.into(),
                Cell::Num(s.early_exec_fraction()),
                Cell::Num(s.late_alu_fraction()),
                Cell::Num(s.late_branch_fraction()),
                Cell::Num(s.offload_fraction()),
            ]);
        }
        Ok(t)
    }

    /// Fig. 6: speedup from adding the VTAGE-2DStride predictor.
    pub fn fig6(&self) -> Result<ExperimentReport, RunError> {
        self.speedup_report(
            "fig6",
            "Fig. 6 — Baseline_VP_6_64 speedup over Baseline_6_64",
            CoreConfig::baseline_6_64(),
            &[CoreConfig::baseline_vp_6_64()],
        )
    }

    /// Fig. 7: issue-width study, normalized to Baseline_VP_6_64.
    pub fn fig7(&self) -> Result<ExperimentReport, RunError> {
        self.speedup_report(
            "fig7",
            "Fig. 7 — issue width (normalized to Baseline_VP_6_64)",
            CoreConfig::baseline_vp_6_64(),
            &[
                CoreConfig::baseline_vp_4_64(),
                CoreConfig::eole_4_64(),
                CoreConfig::eole_6_64(),
            ],
        )
    }

    /// Fig. 8: IQ-size study, normalized to Baseline_VP_6_64.
    pub fn fig8(&self) -> Result<ExperimentReport, RunError> {
        self.speedup_report(
            "fig8",
            "Fig. 8 — IQ size (normalized to Baseline_VP_6_64)",
            CoreConfig::baseline_vp_6_64(),
            &[
                CoreConfig::baseline_vp_6_48(),
                CoreConfig::eole_6_48(),
                CoreConfig::eole_6_64(),
            ],
        )
    }

    /// Fig. 10: PRF banking, normalized to single-bank EOLE_4_64.
    pub fn fig10(&self) -> Result<ExperimentReport, RunError> {
        self.speedup_report(
            "fig10",
            "Fig. 10 — PRF banking (normalized to 1-bank EOLE_4_64)",
            CoreConfig::eole_4_64(),
            &[
                CoreConfig::eole_4_64_banked(2),
                CoreConfig::eole_4_64_banked(4),
                CoreConfig::eole_4_64_banked(8),
            ],
        )
    }

    /// Fig. 11: LE/VT read ports per bank, normalized to unconstrained
    /// EOLE_4_64.
    pub fn fig11(&self) -> Result<ExperimentReport, RunError> {
        self.speedup_report(
            "fig11",
            "Fig. 11 — LE/VT read ports per bank (4-bank PRF, normalized to EOLE_4_64)",
            CoreConfig::eole_4_64(),
            &[
                CoreConfig::eole_4_64_ports(4, 2),
                CoreConfig::eole_4_64_ports(4, 3),
                CoreConfig::eole_4_64_ports(4, 4),
            ],
        )
    }

    /// Fig. 12: the headline summary.
    pub fn fig12(&self) -> Result<ExperimentReport, RunError> {
        self.speedup_report(
            "fig12",
            "Fig. 12 — headline (normalized to Baseline_VP_6_64)",
            CoreConfig::baseline_vp_6_64(),
            &[
                CoreConfig::baseline_6_64(),
                CoreConfig::eole_4_64(),
                CoreConfig::eole_4_64_ports(4, 4),
            ],
        )
    }

    /// Fig. 13: modularity — EOLE vs OLE (late only) vs EOE (early only).
    pub fn fig13(&self) -> Result<ExperimentReport, RunError> {
        self.speedup_report(
            "fig13",
            "Fig. 13 — EOLE vs OLE vs EOE (4 ports, 4 banks; normalized to Baseline_VP_6_64)",
            CoreConfig::baseline_vp_6_64(),
            &[
                CoreConfig::eole_4_64_ports(4, 4),
                CoreConfig::ole_4_64_ports(4, 4),
                CoreConfig::eoe_4_64_ports(4, 4),
            ],
        )
    }

    /// Extension of §2's taxonomy: swap the value predictor of
    /// `Baseline_VP_6_64` and report the speedup over the no-VP baseline —
    /// computational (stride family) vs context-based (FCM/VTAGE) vs the
    /// evaluated hybrid.
    pub fn vp_ablation(&self) -> Result<ExperimentReport, RunError> {
        let kinds = [
            ("LVP", ValuePredictorKind::LastValue),
            ("Stride", ValuePredictorKind::Stride),
            ("2D-Stride", ValuePredictorKind::TwoDeltaStride),
            ("FCM-4", ValuePredictorKind::Fcm),
            ("VTAGE", ValuePredictorKind::Vtage),
            ("hybrid", ValuePredictorKind::VtageTwoDeltaStride),
            ("D-VTAGE", ValuePredictorKind::DVtage),
        ];
        let configs: Vec<CoreConfig> = kinds
            .iter()
            .map(|(label, kind)| {
                CoreConfig::baseline_vp_6_64()
                    .to_builder()
                    .name(*label)
                    .vp_kind(*kind)
                    .build()
                    .expect("predictor swap keeps the preset valid") // lint:allow(error-typing) static preset authoring invariant, covered by preset tests
            })
            .collect();
        self.speedup_report(
            "vp_ablation",
            "VP ablation — predictor kind (speedup over Baseline_6_64)",
            CoreConfig::baseline_6_64(),
            &configs,
        )
    }

    /// §6.3 "further possible hardware optimizations": cap EE/prediction
    /// PRF writes per bank per dispatch group (the paper suggests ~4 per
    /// group of 8 suffices — i.e. 1 per bank with 4 banks).
    pub fn ablation_ee_writes(&self) -> Result<ExperimentReport, RunError> {
        let mut configs = Vec::new();
        for cap in [1usize, 2] {
            configs.push(
                CoreConfig::eole_4_64_banked(4)
                    .to_builder()
                    .name(format!("EOLE_4_64_4banks_eewr{cap}"))
                    .ee_writes_per_bank(Some(cap))
                    .build()
                    .expect("write cap keeps the preset valid"), // lint:allow(error-typing) static preset authoring invariant, covered by preset tests
            );
        }
        configs.push(CoreConfig::eole_4_64_banked(4));
        self.speedup_report(
            "ee_writes",
            "§6.3 ablation — EE/prediction writes per bank per group (normalized to EOLE_4_64)",
            CoreConfig::eole_4_64(),
            &configs,
        )
    }

    /// Squash-cost probe: where do value-misprediction squash cycles go,
    /// per workload, for the VP baseline vs the 6-issue EOLE pipeline?
    /// First instrumented look at the ROADMAP's h264 anomaly (baseline
    /// IPC > EOLE IPC on h264 in quick runs).
    pub fn squash_cost(&self) -> Result<ExperimentReport, RunError> {
        let mut t = ExperimentReport::new(
            "squash_cost",
            "VP squash cost by stage depth (Baseline_VP_6_64 vs EOLE_6_64)",
        )
        .column("bench")
        .column_unit("squashes (VP)", "count")
        .column_unit("cost (VP)", "% cycles")
        .column_unit("squashes (EOLE)", "count")
        .column_unit("frontend (EOLE)", "cycles")
        .column_unit("LE/VT (EOLE)", "cycles")
        .column_unit("window (EOLE)", "cycles")
        .column_unit("cost (EOLE)", "% cycles");
        let rows =
            self.run_grid(vec![CoreConfig::baseline_vp_6_64(), CoreConfig::eole_6_64()])?;
        for (w, stats) in self.workloads.iter().zip(&rows) {
            let (vp, eole) = (&stats[0], &stats[1]);
            t.add_row(vec![
                w.name.into(),
                Cell::Int(vp.vp_squashes),
                Cell::Num(vp.vp_squash_cost_fraction() * 100.0),
                Cell::Int(eole.vp_squashes),
                Cell::Int(eole.vp_squash_cycles_frontend),
                Cell::Int(eole.vp_squash_cycles_levt),
                Cell::Int(eole.vp_squash_cycles_window),
                Cell::Num(eole.vp_squash_cost_fraction() * 100.0),
            ]);
        }
        Ok(t)
    }

    /// ROADMAP h264 ablation: is the constant +1-cycle LE/VT stage the
    /// reason `Baseline_6_64` beats the VP/EOLE pipelines on h264?
    ///
    /// The `squash_cost` probe (PR 2) showed h264 commits with *zero* VP
    /// squashes, so misprediction recovery cannot explain the gap; the
    /// remaining suspect is the extra pre-commit stage every commit pays.
    /// This experiment zeroes `levt_depth()` (`levt0` variants) and
    /// reports speedup over the no-VP baseline: if the `levt0` pipelines
    /// close the gap (speedup ≥ 1), the +1 LE/VT depth is confirmed as
    /// the cause; any residue points at a different tax.
    pub fn levt_depth_ablation(&self) -> Result<ExperimentReport, RunError> {
        let levt0 = |base: CoreConfig| -> CoreConfig {
            let name = format!("{}_levt0", base.name);
            base.to_builder()
                .name(name)
                .levt_depth_override(Some(0))
                .build()
                .expect("depth override keeps the preset valid") // lint:allow(error-typing) static preset authoring invariant, covered by preset tests
        };
        self.speedup_report(
            "levt_depth_ablation",
            "LE/VT depth ablation — +1-cycle validation stage zeroed (speedup over Baseline_6_64)",
            CoreConfig::baseline_6_64(),
            &[
                CoreConfig::baseline_vp_6_64(),
                levt0(CoreConfig::baseline_vp_6_64()),
                CoreConfig::eole_6_64(),
                levt0(CoreConfig::eole_6_64()),
            ],
        )
    }

    /// `dvtage_budget`: prediction quality per storage bit — D-VTAGE
    /// (BeBoP block organization, 16-bit deltas) sized to the *same
    /// storage budget* as the paper's VTAGE-2DStride hybrid, compared on
    /// offline coverage/accuracy over each workload's VP-eligible µ-op
    /// stream. The hybrid spends most of its 385 KB on full 64-bit
    /// values and full tags; at equal budget the differential layout
    /// affords several times the entries, so its usable coverage should
    /// dominate — the metric the old per-instruction interface could
    /// not even measure.
    pub fn dvtage_budget(&self) -> Result<ExperimentReport, RunError> {
        let seed = 0xe01e;
        let budget_bits = VtageTwoDeltaStride::paper(seed).storage_bits();
        let dv_cfg = DVtageConfig::with_budget_bits(budget_bits, 4, 4);
        let dv_kb = DVtage::new(dv_cfg.clone(), seed).storage_bits() as f64 / 8.0 / 1024.0;
        let hybrid_kb = budget_bits as f64 / 8.0 / 1024.0;
        let title = format!(
            "D-VTAGE vs VTAGE-2DStride at equal storage budget \
             (hybrid {hybrid_kb:.1} KB, D-VTAGE {dv_kb:.1} KB)"
        );
        let mut t = ExperimentReport::new("dvtage_budget", title)
        .column("bench")
        .column_unit("hybrid cov", "fraction")
        .column_unit("D-VTAGE cov", "fraction")
        .column_unit("hybrid acc", "fraction")
        .column_unit("D-VTAGE acc", "fraction");
        let mut cov = (Vec::new(), Vec::new());
        let mut acc = (Vec::new(), Vec::new());
        for w in &self.workloads {
            let trace = self.session.prepare(w)?;
            let stream = crate::vp_stream(&trace);
            let run = |p: &mut dyn ValuePredictor| -> EvalStats {
                evaluate_stream(p, trace.history(), stream.iter().copied())
            };
            let hybrid = run(&mut VtageTwoDeltaStride::paper(seed));
            let dvtage = run(&mut DVtage::new(dv_cfg.clone(), seed));
            cov.0.push(hybrid.coverage());
            cov.1.push(dvtage.coverage());
            acc.0.push(hybrid.accuracy());
            acc.1.push(dvtage.accuracy());
            t.add_row(vec![
                w.name.into(),
                Cell::Num(hybrid.coverage()),
                Cell::Num(dvtage.coverage()),
                Cell::Num(hybrid.accuracy()),
                Cell::Num(dvtage.accuracy()),
            ]);
        }
        t.add_row(vec![
            "gmean".into(),
            Cell::Num(geometric_mean(&cov.0).unwrap_or(0.0)),
            Cell::Num(geometric_mean(&cov.1).unwrap_or(0.0)),
            Cell::Num(geometric_mean(&acc.0).unwrap_or(0.0)),
            Cell::Num(geometric_mean(&acc.1).unwrap_or(0.0)),
        ]);
        Ok(t)
    }

    /// `bebop_block_size`: the BeBoP access-granularity sweep, run
    /// through the timing pipeline on the D-VTAGE front. Larger fetch
    /// blocks cut predictor reads per committed µ-op (toward 1/B) while
    /// block-shared tags cost some coverage; the per-confidence-level
    /// counters (saturated share, sub-saturated accuracy) show where the
    /// FPC gate — not the tables — bounds coverage.
    pub fn bebop_block_size(&self) -> Result<ExperimentReport, RunError> {
        const BLOCKS: [usize; 4] = [1, 2, 4, 8];
        let configs: Vec<CoreConfig> = BLOCKS
            .iter()
            .map(|b| {
                CoreConfig::baseline_dvtage_6_64()
                    .to_builder()
                    .name(format!("DVTAGE_6_64_b{b}"))
                    .vp_block(*b, 4)
                    .build()
                    .expect("block sweep keeps the preset valid") // lint:allow(error-typing) static preset authoring invariant, covered by preset tests
            })
            .collect();
        let mut t = ExperimentReport::new(
            "bebop_block_size",
            "BeBoP block-size sweep on Baseline_DVTAGE_6_64 (4 banks, 64-deep spec window)",
        )
        .column("bench")
        .column_unit("cov b=1", "fraction")
        .column_unit("cov b=2", "fraction")
        .column_unit("cov b=4", "fraction")
        .column_unit("cov b=8", "fraction")
        .column_unit("reads/µop b=1", "reads")
        .column_unit("reads/µop b=8", "reads")
        .column_unit("sat share b=4", "fraction")
        .column_unit("sub-sat acc b=4", "fraction");
        let rows = self.run_grid(configs)?;
        for (w, stats) in self.workloads.iter().zip(&rows) {
            let b4 = &stats[2];
            t.add_row(vec![
                w.name.into(),
                Cell::Num(stats[0].vp_coverage()),
                Cell::Num(stats[1].vp_coverage()),
                Cell::Num(stats[2].vp_coverage()),
                Cell::Num(stats[3].vp_coverage()),
                Cell::Num(stats[0].vp_reads_per_committed()),
                Cell::Num(stats[3].vp_reads_per_committed()),
                Cell::Num(b4.vp_saturated_share()),
                Cell::Num(b4.vp_subsaturated_accuracy()),
            ]);
        }
        Ok(t)
    }

    /// §6.2–6.3: register-file ports and relative area.
    pub fn complexity(&self) -> Result<ExperimentReport, RunError> {
        let base6 = PrfPortModel::new(6, 8, 8, false, false);
        let vp6 = PrfPortModel::new(6, 8, 8, true, false);
        let eole4 = PrfPortModel::new(4, 8, 8, true, true);
        let mut t = ExperimentReport::new(
            "complexity",
            "§6 — PRF ports and (R+W)(R+2W) area, relative to Baseline_6_64",
        )
        .column("organization")
        .column_unit("reads", "ports")
        .column_unit("writes", "ports")
        .column_unit("area", "ratio");
        let base_area = base6.monolithic().relative_area();
        for (label, pc) in [
            ("Baseline_6_64 (monolithic)", base6.monolithic()),
            ("Baseline_VP_6_64 (monolithic)", vp6.monolithic()),
            ("EOLE_4_64 (monolithic)", eole4.monolithic()),
            ("EOLE_4_64 per bank (4 banks, 4 LE/VT ports)", eole4.banked(4, 4)),
            ("EOLE_4_64 per bank (4 banks, 3 LE/VT ports)", eole4.banked(4, 3)),
        ] {
            t.add_row(vec![
                label.into(),
                Cell::Int(pc.reads as u64),
                Cell::Int(pc.writes as u64),
                Cell::Num(pc.relative_area() / base_area),
            ]);
        }
        Ok(t)
    }

    /// Everything, in paper order.
    ///
    /// # Errors
    ///
    /// The first [`RunError`] encountered, if any run fails.
    pub fn all(&self) -> Result<Vec<ExperimentReport>, RunError> {
        EXPERIMENT_NAMES.iter().map(|n| self.by_name(n)).collect()
    }

    /// Runs one experiment by name (see [`EXPERIMENT_NAMES`]).
    ///
    /// # Errors
    ///
    /// [`RunError::UnknownExperiment`] for names outside the registry;
    /// otherwise any failure of the underlying runs.
    pub fn by_name(&self, name: &str) -> Result<ExperimentReport, RunError> {
        match name {
            "table1" => self.table1(),
            "table2" => self.table2(),
            "table3" => self.table3(),
            "fig2" => self.fig2(),
            "fig4" => self.fig4(),
            "offload" => self.offload(),
            "fig6" => self.fig6(),
            "fig7" => self.fig7(),
            "fig8" => self.fig8(),
            "fig10" => self.fig10(),
            "fig11" => self.fig11(),
            "fig12" => self.fig12(),
            "fig13" => self.fig13(),
            "vp_ablation" => self.vp_ablation(),
            "ee_writes" => self.ablation_ee_writes(),
            "squash_cost" => self.squash_cost(),
            "levt_depth_ablation" => self.levt_depth_ablation(),
            "dvtage_budget" => self.dvtage_budget(),
            "bebop_block_size" => self.bebop_block_size(),
            "complexity" => self.complexity(),
            other => Err(RunError::UnknownExperiment(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_set() -> ExperimentSet {
        ExperimentSet::with_workloads(Runner::quick(), &["gzip", "namd"])
    }

    #[test]
    fn static_tables_have_expected_shape() {
        let set = quick_set();
        assert!(set.table1().unwrap().num_rows() >= 10);
        assert_eq!(set.table2().unwrap().num_rows(), 3);
        assert_eq!(set.complexity().unwrap().num_rows(), 5);
    }

    #[test]
    fn fig7_produces_one_row_per_workload_plus_gmean() {
        let set = quick_set();
        let t = set.fig7().unwrap();
        assert_eq!(t.num_rows(), 3); // 2 workloads + gmean
        assert_eq!(t.columns().len(), 4);
        assert!(t.columns()[1..].iter().all(|c| c.unit.as_deref() == Some("×")));
        // Speedups are positive numbers.
        for row in 0..t.num_rows() {
            for col in 1..t.columns().len() {
                let v = t.value(row, col).expect("numeric cell");
                assert!(v > 0.0);
            }
        }
    }

    /// The PR's acceptance bar: at an equal (in fact smaller) storage
    /// budget, D-VTAGE's usable coverage over the quick suite is at
    /// least the VTAGE-2DStride hybrid's — prediction quality per
    /// storage bit, measured suite-wide (gmean row).
    #[test]
    fn dvtage_budget_meets_the_equal_storage_bar() {
        let set = ExperimentSet::new(Runner::quick());
        let t = set.dvtage_budget().unwrap();
        let gmean = t.num_rows() - 1;
        let hybrid_cov = t.value(gmean, 1).unwrap();
        let dvtage_cov = t.value(gmean, 2).unwrap();
        assert!(
            dvtage_cov >= hybrid_cov,
            "D-VTAGE gmean coverage {dvtage_cov:.3} below hybrid {hybrid_cov:.3} at equal budget"
        );
        // Usable predictions stay reliable on both sides (FPC holds the
        // ~1-per-mille misprediction line the paper leans on).
        for row in 0..gmean {
            assert!(t.value(row, 3).unwrap() > 0.99, "hybrid accuracy row {row}");
            assert!(t.value(row, 4).unwrap() > 0.99, "D-VTAGE accuracy row {row}");
        }
    }

    #[test]
    fn bebop_block_size_cuts_predictor_reads() {
        let set = quick_set();
        let t = set.bebop_block_size().unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.columns().len(), 9);
        for row in 0..t.num_rows() {
            let reads_b1 = t.value(row, 5).unwrap();
            let reads_b8 = t.value(row, 6).unwrap();
            assert!(
                reads_b8 < reads_b1,
                "row {row}: 8-µ-op blocks must need fewer reads ({reads_b8} vs {reads_b1})"
            );
        }
    }

    #[test]
    fn by_name_covers_every_experiment_and_rejects_unknowns() {
        let set = quick_set();
        for name in ["table1", "table2", "complexity", "squash_cost", "dvtage_budget"] {
            assert!(set.by_name(name).is_ok(), "{name}");
        }
        match set.by_name("fig99") {
            Err(RunError::UnknownExperiment(n)) => assert_eq!(n, "fig99"),
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
    }

    #[test]
    fn traces_are_shared_across_experiments_in_a_set() {
        let set = quick_set();
        set.fig4().unwrap();
        set.offload().unwrap();
        set.table3().unwrap();
        // Three experiments over 2 workloads: 2 trace generations total.
        assert_eq!(set.executor().cache().generated(), 2);
        assert!(set.executor().cache().hits() > 0);
    }

    #[test]
    fn hybrid_dominates_its_components_on_average() {
        // The hybrid should never be meaningfully worse than either of its
        // halves (it subsumes both).
        let set = ExperimentSet::with_workloads(Runner::quick(), &["wupwise", "bzip2"]);
        let t = set.vp_ablation().unwrap();
        let gmean = t.num_rows() - 1;
        let stride2d = t.value(gmean, 3).unwrap();
        let vtage = t.value(gmean, 5).unwrap();
        let hybrid = t.value(gmean, 6).unwrap();
        assert!(hybrid >= stride2d - 0.02, "hybrid {hybrid} vs 2D-stride {stride2d}");
        assert!(hybrid >= vtage - 0.02, "hybrid {hybrid} vs VTAGE {vtage}");
    }

    #[test]
    fn fig2_two_stage_never_below_one_stage() {
        let set = quick_set();
        let t = set.fig2().unwrap();
        for row in 0..t.num_rows() {
            let one = t.value(row, 1).unwrap();
            let two = t.value(row, 2).unwrap();
            assert!(two + 1e-9 >= one, "row {row}: {one} vs {two}");
        }
    }

    #[test]
    fn squash_cost_report_accounts_the_split() {
        let set = quick_set();
        let t = set.squash_cost().unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.columns().len(), 8);
        for row in 0..t.num_rows() {
            // The EOLE split columns sum to a total consistent with the
            // cost fraction being zero iff there were no squashes.
            let squashes = t.value(row, 3).unwrap();
            let split_sum: f64 = (4..7).map(|c| t.value(row, c).unwrap()).sum();
            if squashes == 0.0 {
                assert_eq!(split_sum, 0.0);
            } else {
                assert!(split_sum > 0.0);
            }
        }
    }

    #[test]
    fn reports_serialize_to_json() {
        let set = quick_set();
        let json = set.fig6().unwrap().to_json();
        assert!(json.contains("\"schema\":\"eole-report/v1\""));
        assert!(json.contains("\"id\":\"fig6\""));
        assert!(json.contains("\"gzip\""));
    }
}
