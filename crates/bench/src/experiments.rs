//! One function per table/figure of the paper's evaluation.
//!
//! Each returns an [`eole_stats::table::Table`] whose rows follow the
//! paper's benchmark order; speedup figures append a geometric-mean row.
//! `EXPERIMENTS.md` records the paper-vs-measured comparison for each.

use eole_core::complexity::PrfPortModel;
use eole_core::config::{CoreConfig, ValuePredictorKind};
use eole_predictors::value::{TwoDeltaStride, ValuePredictor, Vtage, VtageTwoDeltaStride};
use eole_stats::summary::geometric_mean;
use eole_stats::table::Table;
use eole_workloads::{all_workloads, Workload};

use crate::{per_workload, Runner};

/// Paper Table 3 baseline IPCs, in suite order (for shape comparison).
pub const PAPER_IPC: [(&str, f64); 19] = [
    ("gzip", 0.984),
    ("wupwise", 1.553),
    ("applu", 1.591),
    ("vpr", 1.326),
    ("art", 1.211),
    ("crafty", 1.769),
    ("parser", 0.544),
    ("vortex", 1.781),
    ("bzip2", 0.888),
    ("gcc", 1.055),
    ("gamess", 1.929),
    ("mcf", 0.105),
    ("milc", 0.459),
    ("namd", 1.860),
    ("gobmk", 0.766),
    ("hmmer", 2.477),
    ("sjeng", 1.321),
    ("h264", 1.312),
    ("lbm", 0.748),
];

/// Driver for the full experiment suite.
pub struct ExperimentSet {
    /// Methodology shared by all runs.
    pub runner: Runner,
    workloads: Vec<Workload>,
}

impl ExperimentSet {
    /// Builds a set over the full Table 3 suite.
    pub fn new(runner: Runner) -> Self {
        ExperimentSet { runner, workloads: all_workloads() }
    }

    /// Restricts the suite (used by Criterion benches and smoke tests).
    pub fn with_workloads(runner: Runner, names: &[&str]) -> Self {
        let workloads = all_workloads()
            .into_iter()
            .filter(|w| names.contains(&w.name))
            .collect();
        ExperimentSet { runner, workloads }
    }

    /// Per-workload speedup table: `configs` normalized to `baseline`.
    fn speedup_table(&self, title: &str, baseline: CoreConfig, configs: &[CoreConfig]) -> Table {
        let mut headers: Vec<&str> = vec!["bench"];
        let names: Vec<String> = configs.iter().map(|c| c.name.clone()).collect();
        for n in &names {
            headers.push(n);
        }
        let mut table = Table::new(title, &headers);
        let runner = self.runner;
        let rows = per_workload(&self.workloads, |w| {
            let trace = runner.prepare(w);
            let base = runner.run(&trace, baseline.clone()).ipc();
            let speeds: Vec<f64> = configs
                .iter()
                .map(|c| runner.run(&trace, c.clone()).ipc() / base)
                .collect();
            (w.name.to_string(), speeds)
        });
        let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
        for (name, speeds) in rows {
            let mut cells = vec![name];
            for (i, s) in speeds.iter().enumerate() {
                cells.push(format!("{s:.3}"));
                per_config[i].push(*s);
            }
            table.add_row(cells);
        }
        let mut gm = vec!["gmean".to_string()];
        for col in &per_config {
            gm.push(format!("{:.3}", geometric_mean(col).unwrap_or(0.0)));
        }
        table.add_row(gm);
        table
    }

    /// Table 1: the simulated configuration (static dump for the record).
    pub fn table1(&self) -> Table {
        let c = CoreConfig::baseline_6_64();
        let mut t = Table::new("Table 1 — simulator configuration", &["parameter", "value"]);
        let rows: Vec<(&str, String)> = vec![
            ("fetch/rename/commit width", format!("{}/{}/{} µ-ops", c.fetch_width, c.rename_width, c.commit_width)),
            ("issue width", format!("{} (4 in EOLE_4_*)", c.issue_width)),
            ("ROB / IQ / LQ / SQ", format!("{} / {} / {} / {}", c.rob_entries, c.iq_entries, c.lq_entries, c.sq_entries)),
            ("PRF", format!("{} INT + {} FP", c.int_prf, c.fp_prf)),
            ("front-end depth", format!("{} cycles (+1 LE/VT with VP)", c.frontend_depth)),
            ("branch predictor", "TAGE 1+12 comps, 2-way 4K BTB, 32-entry RAS".into()),
            ("memory dependence", "Store Sets 1K SSIT / 128 SSIDs".into()),
            ("FUs", format!("{} ALU(1c), {} MulDiv(3c/25c*), {} FP(3c), {} FPMulDiv(5c/10c*), {} Ld/Str", c.fu.int_alu, c.fu.int_muldiv, c.fu.fp_alu, c.fu.fp_muldiv, c.fu.mem_ports)),
            ("L1I / L1D", "32 KB 4-way; L1D 2 cycles, 64 MSHRs".into()),
            ("L2", "2 MB 16-way, 12 cycles, stride prefetcher degree 8".into()),
            ("DRAM", "DDR3-ish: 75/130/185-cycle row hit/closed/conflict".into()),
            ("value predictor", "VTAGE-2DStride hybrid + 3-bit FPC {1,1/32×4,1/64×2}".into()),
        ];
        for (k, v) in rows {
            t.add_row(vec![k.to_string(), v]);
        }
        t
    }

    /// Table 2: predictor layout summary.
    pub fn table2(&self) -> Table {
        let mut t = Table::new(
            "Table 2 — predictor layout",
            &["predictor", "#entries", "tag", "size (KB)", "paper (KB)"],
        );
        let stride = TwoDeltaStride::paper(1);
        let vtage = Vtage::paper(1);
        let hybrid = VtageTwoDeltaStride::paper(1);
        let kb = |bits: u64| format!("{:.1}", bits as f64 / 8.0 / 1024.0);
        t.add_row(vec![
            "2D-Stride".into(),
            "8192".into(),
            "full (64)".into(),
            kb(stride.storage_bits()),
            "251.9".into(),
        ]);
        t.add_row(vec![
            "VTAGE".into(),
            "8192 base + 6×1024".into(),
            "12 + rank".into(),
            kb(vtage.storage_bits()),
            "68.7 + 64.1".into(),
        ]);
        t.add_row(vec![
            "hybrid total".into(),
            "-".into(),
            "-".into(),
            kb(hybrid.storage_bits()),
            "~385".into(),
        ]);
        t
    }

    /// Table 3: per-benchmark baseline IPC (ours vs the paper's, for shape).
    pub fn table3(&self) -> Table {
        let runner = self.runner;
        let mut t = Table::new(
            "Table 3 — benchmarks and Baseline_6_64 IPC",
            &["bench", "kind", "IPC (ours)", "IPC (paper)"],
        );
        let rows = per_workload(&self.workloads, |w| {
            let trace = runner.prepare(w);
            let ipc = runner.run(&trace, CoreConfig::baseline_6_64()).ipc();
            (w.name.to_string(), w.kind, ipc)
        });
        for (name, kind, ipc) in rows {
            let paper = PAPER_IPC
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into());
            t.add_row(vec![
                name,
                format!("{:?}", kind).to_uppercase(),
                format!("{ipc:.3}"),
                paper,
            ]);
        }
        t
    }

    /// Fig. 2: fraction of committed µ-ops early-executable, 1 vs 2 EE
    /// stages (measured on the 6-issue EOLE pipeline, as in the paper).
    pub fn fig2(&self) -> Table {
        let runner = self.runner;
        let mut t = Table::new(
            "Fig. 2 — early-executed fraction of committed µ-ops",
            &["bench", "1 ALU stage", "2 ALU stages"],
        );
        let rows = per_workload(&self.workloads, |w| {
            let trace = runner.prepare(w);
            let one = runner.run(&trace, CoreConfig::eole_6_64()).early_exec_fraction();
            let mut cfg2 = CoreConfig::eole_6_64();
            cfg2.eole.ee_stages = 2;
            let two = runner.run(&trace, cfg2).early_exec_fraction();
            (w.name.to_string(), one, two)
        });
        for (name, one, two) in rows {
            t.add_row(vec![name, format!("{one:.3}"), format!("{two:.3}")]);
        }
        t
    }

    /// Fig. 4: fraction of committed µ-ops late-executable, split into
    /// high-confidence branches and value-predicted ALU µ-ops.
    pub fn fig4(&self) -> Table {
        let runner = self.runner;
        let mut t = Table::new(
            "Fig. 4 — late-executed fraction of committed µ-ops",
            &["bench", "HC branches", "value-predicted ALU", "total"],
        );
        let rows = per_workload(&self.workloads, |w| {
            let trace = runner.prepare(w);
            let s = runner.run(&trace, CoreConfig::eole_6_64());
            (w.name.to_string(), s.late_branch_fraction(), s.late_alu_fraction())
        });
        for (name, br, alu) in rows {
            t.add_row(vec![
                name,
                format!("{br:.3}"),
                format!("{alu:.3}"),
                format!("{:.3}", br + alu),
            ]);
        }
        t
    }

    /// §3.4: total OoO-engine offload (Fig. 2 + Fig. 4, disjoint sets).
    pub fn offload(&self) -> Table {
        let runner = self.runner;
        let mut t = Table::new(
            "§3.4 — µ-ops bypassing the OoO engine (paper: 10%–60%)",
            &["bench", "early", "late ALU", "late branch", "total"],
        );
        let rows = per_workload(&self.workloads, |w| {
            let trace = runner.prepare(w);
            let s = runner.run(&trace, CoreConfig::eole_6_64());
            (
                w.name.to_string(),
                s.early_exec_fraction(),
                s.late_alu_fraction(),
                s.late_branch_fraction(),
            )
        });
        for (name, e, a, b) in rows {
            t.add_row(vec![
                name,
                format!("{e:.3}"),
                format!("{a:.3}"),
                format!("{b:.3}"),
                format!("{:.3}", e + a + b),
            ]);
        }
        t
    }

    /// Fig. 6: speedup from adding the VTAGE-2DStride predictor.
    pub fn fig6(&self) -> Table {
        self.speedup_table(
            "Fig. 6 — Baseline_VP_6_64 speedup over Baseline_6_64",
            CoreConfig::baseline_6_64(),
            &[CoreConfig::baseline_vp_6_64()],
        )
    }

    /// Fig. 7: issue-width study, normalized to Baseline_VP_6_64.
    pub fn fig7(&self) -> Table {
        self.speedup_table(
            "Fig. 7 — issue width (normalized to Baseline_VP_6_64)",
            CoreConfig::baseline_vp_6_64(),
            &[
                CoreConfig::baseline_vp_4_64(),
                CoreConfig::eole_4_64(),
                CoreConfig::eole_6_64(),
            ],
        )
    }

    /// Fig. 8: IQ-size study, normalized to Baseline_VP_6_64.
    pub fn fig8(&self) -> Table {
        self.speedup_table(
            "Fig. 8 — IQ size (normalized to Baseline_VP_6_64)",
            CoreConfig::baseline_vp_6_64(),
            &[
                CoreConfig::baseline_vp_6_48(),
                CoreConfig::eole_6_48(),
                CoreConfig::eole_6_64(),
            ],
        )
    }

    /// Fig. 10: PRF banking, normalized to single-bank EOLE_4_64.
    pub fn fig10(&self) -> Table {
        self.speedup_table(
            "Fig. 10 — PRF banking (normalized to 1-bank EOLE_4_64)",
            CoreConfig::eole_4_64(),
            &[
                CoreConfig::eole_4_64_banked(2),
                CoreConfig::eole_4_64_banked(4),
                CoreConfig::eole_4_64_banked(8),
            ],
        )
    }

    /// Fig. 11: LE/VT read ports per bank, normalized to unconstrained
    /// EOLE_4_64.
    pub fn fig11(&self) -> Table {
        self.speedup_table(
            "Fig. 11 — LE/VT read ports per bank (4-bank PRF, normalized to EOLE_4_64)",
            CoreConfig::eole_4_64(),
            &[
                CoreConfig::eole_4_64_ports(4, 2),
                CoreConfig::eole_4_64_ports(4, 3),
                CoreConfig::eole_4_64_ports(4, 4),
            ],
        )
    }

    /// Fig. 12: the headline summary.
    pub fn fig12(&self) -> Table {
        self.speedup_table(
            "Fig. 12 — headline (normalized to Baseline_VP_6_64)",
            CoreConfig::baseline_vp_6_64(),
            &[
                CoreConfig::baseline_6_64(),
                CoreConfig::eole_4_64(),
                CoreConfig::eole_4_64_ports(4, 4),
            ],
        )
    }

    /// Fig. 13: modularity — EOLE vs OLE (late only) vs EOE (early only).
    pub fn fig13(&self) -> Table {
        self.speedup_table(
            "Fig. 13 — EOLE vs OLE vs EOE (4 ports, 4 banks; normalized to Baseline_VP_6_64)",
            CoreConfig::baseline_vp_6_64(),
            &[
                CoreConfig::eole_4_64_ports(4, 4),
                CoreConfig::ole_4_64_ports(4, 4),
                CoreConfig::eoe_4_64_ports(4, 4),
            ],
        )
    }

    /// Extension of §2's taxonomy: swap the value predictor of
    /// `Baseline_VP_6_64` and report the speedup over the no-VP baseline —
    /// computational (stride family) vs context-based (FCM/VTAGE) vs the
    /// evaluated hybrid.
    pub fn vp_ablation(&self) -> Table {
        let kinds = [
            ("LVP", ValuePredictorKind::LastValue),
            ("Stride", ValuePredictorKind::Stride),
            ("2D-Stride", ValuePredictorKind::TwoDeltaStride),
            ("FCM-4", ValuePredictorKind::Fcm),
            ("VTAGE", ValuePredictorKind::Vtage),
            ("hybrid", ValuePredictorKind::VtageTwoDeltaStride),
        ];
        let configs: Vec<CoreConfig> = kinds
            .iter()
            .map(|(label, kind)| {
                let mut c = CoreConfig::baseline_vp_6_64();
                c.name = (*label).to_string();
                c.vp = Some(eole_core::config::VpConfig { kind: *kind, seed: 0xe01e });
                c
            })
            .collect();
        self.speedup_table(
            "VP ablation — predictor kind (speedup over Baseline_6_64)",
            CoreConfig::baseline_6_64(),
            &configs,
        )
    }

    /// §6.3 "further possible hardware optimizations": cap EE/prediction
    /// PRF writes per bank per dispatch group (the paper suggests ~4 per
    /// group of 8 suffices — i.e. 1 per bank with 4 banks).
    pub fn ablation_ee_writes(&self) -> Table {
        let mut configs = Vec::new();
        for cap in [1usize, 2] {
            let mut c = CoreConfig::eole_4_64_banked(4);
            c.name = format!("EOLE_4_64_4banks_eewr{cap}");
            c.eole.ee_writes_per_bank = Some(cap);
            configs.push(c);
        }
        configs.push(CoreConfig::eole_4_64_banked(4));
        self.speedup_table(
            "§6.3 ablation — EE/prediction writes per bank per group (normalized to EOLE_4_64)",
            CoreConfig::eole_4_64(),
            &configs,
        )
    }

    /// §6.2–6.3: register-file ports and relative area.
    pub fn complexity(&self) -> Table {
        let base6 = PrfPortModel::new(6, 8, 8, false, false);
        let vp6 = PrfPortModel::new(6, 8, 8, true, false);
        let eole4 = PrfPortModel::new(4, 8, 8, true, true);
        let mut t = Table::new(
            "§6 — PRF ports and (R+W)(R+2W) area, relative to Baseline_6_64",
            &["organization", "reads", "writes", "area ratio"],
        );
        let base_area = base6.monolithic().relative_area();
        for (label, pc) in [
            ("Baseline_6_64 (monolithic)", base6.monolithic()),
            ("Baseline_VP_6_64 (monolithic)", vp6.monolithic()),
            ("EOLE_4_64 (monolithic)", eole4.monolithic()),
            ("EOLE_4_64 per bank (4 banks, 4 LE/VT ports)", eole4.banked(4, 4)),
            ("EOLE_4_64 per bank (4 banks, 3 LE/VT ports)", eole4.banked(4, 3)),
        ] {
            t.add_row(vec![
                label.to_string(),
                pc.reads.to_string(),
                pc.writes.to_string(),
                format!("{:.2}", pc.relative_area() / base_area),
            ]);
        }
        t
    }

    /// Everything, in paper order.
    pub fn all(&self) -> Vec<Table> {
        vec![
            self.table1(),
            self.table2(),
            self.table3(),
            self.fig2(),
            self.fig4(),
            self.offload(),
            self.fig6(),
            self.fig7(),
            self.fig8(),
            self.fig10(),
            self.fig11(),
            self.fig12(),
            self.fig13(),
            self.vp_ablation(),
            self.ablation_ee_writes(),
            self.complexity(),
        ]
    }

    /// Runs one experiment by name (`table1`, `fig2`, … `complexity`).
    pub fn by_name(&self, name: &str) -> Option<Table> {
        Some(match name {
            "table1" => self.table1(),
            "table2" => self.table2(),
            "table3" => self.table3(),
            "fig2" => self.fig2(),
            "fig4" => self.fig4(),
            "offload" => self.offload(),
            "fig6" => self.fig6(),
            "fig7" => self.fig7(),
            "fig8" => self.fig8(),
            "fig10" => self.fig10(),
            "fig11" => self.fig11(),
            "fig12" => self.fig12(),
            "fig13" => self.fig13(),
            "vp_ablation" => self.vp_ablation(),
            "ee_writes" => self.ablation_ee_writes(),
            "complexity" => self.complexity(),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_set() -> ExperimentSet {
        ExperimentSet::with_workloads(Runner::quick(), &["gzip", "namd"])
    }

    #[test]
    fn static_tables_have_expected_shape() {
        let set = quick_set();
        assert!(set.table1().num_rows() >= 10);
        assert_eq!(set.table2().num_rows(), 3);
        assert_eq!(set.complexity().num_rows(), 5);
    }

    #[test]
    fn fig7_produces_one_row_per_workload_plus_gmean() {
        let set = quick_set();
        let t = set.fig7();
        assert_eq!(t.num_rows(), 3); // 2 workloads + gmean
        assert_eq!(t.headers().len(), 4);
        // Speedups parse as positive numbers.
        for row in t.rows() {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn by_name_covers_every_experiment() {
        let set = quick_set();
        for name in ["table1", "table2", "complexity", "vp_ablation", "ee_writes"] {
            assert!(set.by_name(name).is_some());
        }
        assert!(set.by_name("fig99").is_none());
    }

    #[test]
    fn hybrid_dominates_its_components_on_average() {
        // The hybrid should never be meaningfully worse than either of its
        // halves (it subsumes both).
        let set = ExperimentSet::with_workloads(Runner::quick(), &["wupwise", "bzip2"]);
        let t = set.vp_ablation();
        let gmean = t.rows().last().unwrap();
        let stride2d: f64 = gmean[3].parse().unwrap();
        let vtage: f64 = gmean[5].parse().unwrap();
        let hybrid: f64 = gmean[6].parse().unwrap();
        assert!(hybrid >= stride2d - 0.02, "hybrid {hybrid} vs 2D-stride {stride2d}");
        assert!(hybrid >= vtage - 0.02, "hybrid {hybrid} vs VTAGE {vtage}");
    }

    #[test]
    fn fig2_two_stage_never_below_one_stage() {
        let set = quick_set();
        let t = set.fig2();
        for row in t.rows() {
            let one: f64 = row[1].parse().unwrap();
            let two: f64 = row[2].parse().unwrap();
            assert!(two + 1e-9 >= one, "{}: {one} vs {two}", row[0]);
        }
    }
}
