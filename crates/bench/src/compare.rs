//! Trend tooling: diff two `results.json` report sets.
//!
//! `experiments compare old.json new.json` reads two payloads written by
//! the CLI's `--format json` (schema `eole-report-set/v1`, or the bare
//! `eole-report/v1` array), matches reports by id, rows by their first
//! cell, and columns by name, and renders a Markdown delta table per
//! report. Numeric cells in **performance columns** (unit `×` or `IPC` —
//! higher is better) that drop by more than the threshold are flagged as
//! regressions; the CLI exits non-zero when any exist, which is what the
//! CI trend gate keys on.

use eole_stats::json::Json;

/// One numeric cell compared across the two payloads.
#[derive(Clone, Copy, Debug)]
pub struct CellDelta {
    /// Value in the old payload.
    pub old: f64,
    /// Value in the new payload.
    pub new: f64,
    /// Relative change in percent (`(new - old) / old`).
    pub pct: f64,
    /// True when this is a gated (higher-is-better) column and the drop
    /// exceeds the threshold.
    pub regression: bool,
}

/// Delta view of one report present in both payloads.
#[derive(Clone, Debug)]
pub struct ReportDelta {
    /// Report id (`fig7`, `table3`, …).
    pub id: String,
    /// Human title (from the new payload).
    pub title: String,
    /// Column headers (name plus unit) for the compared numeric columns.
    pub columns: Vec<String>,
    /// Row label plus one optional delta per compared column (`None`
    /// when either side is non-numeric or missing).
    pub rows: Vec<(String, Vec<Option<CellDelta>>)>,
}

/// The full comparison of two report sets.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Per-report deltas, in the order of the new payload.
    pub reports: Vec<ReportDelta>,
    /// Human-readable regression descriptions (empty = gate passes).
    pub regressions: Vec<String>,
    /// Reports/rows present in only one payload (informational).
    pub unmatched: Vec<String>,
}

struct FlatReport {
    id: String,
    title: String,
    /// (name, unit)
    columns: Vec<(String, Option<String>)>,
    /// Raw cells; row label = first cell rendered.
    rows: Vec<Vec<Json>>,
}

fn flatten_reports(payload: &Json) -> Result<Vec<FlatReport>, String> {
    let arr = match payload {
        Json::Arr(items) => items.as_slice(),
        Json::Obj(_) => payload
            .get("reports")
            .and_then(Json::as_arr)
            .ok_or("payload has no `reports` array")?,
        _ => return Err("payload is neither a report array nor a report set".into()),
    };
    let mut out = Vec::with_capacity(arr.len());
    for r in arr {
        let id = r.get("id").and_then(Json::as_str).ok_or("report without id")?.to_string();
        let title =
            r.get("title").and_then(Json::as_str).unwrap_or_default().to_string();
        let mut columns = Vec::new();
        for c in r.get("columns").and_then(Json::as_arr).unwrap_or(&[]) {
            let name =
                c.get("name").and_then(Json::as_str).unwrap_or_default().to_string();
            let unit = c.get("unit").and_then(Json::as_str).map(str::to_string);
            columns.push((name, unit));
        }
        let rows: Vec<Vec<Json>> = r
            .get("rows")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|row| row.as_arr().map(<[Json]>::to_vec))
            .collect();
        out.push(FlatReport { id, title, columns, rows });
    }
    Ok(out)
}

fn row_label(row: &[Json]) -> String {
    match row.first() {
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Num(v)) => format!("{v}"),
        _ => String::new(),
    }
}

/// Is this a higher-is-better column the regression gate watches?
fn gated_unit(unit: Option<&str>) -> bool {
    matches!(unit, Some("×") | Some("IPC"))
}

impl Comparison {
    /// Compares two parsed payloads. `threshold_pct` is the allowed drop
    /// in gated columns before a cell counts as a regression (the
    /// ROADMAP's trend gate uses 2.0).
    ///
    /// # Errors
    ///
    /// Malformed payloads (no report array, reports without ids).
    pub fn compare(old: &Json, new: &Json, threshold_pct: f64) -> Result<Self, String> {
        let old_reports = flatten_reports(old)?;
        let new_reports = flatten_reports(new)?;
        let mut cmp = Comparison::default();
        for nr in &new_reports {
            let Some(or) = old_reports.iter().find(|r| r.id == nr.id) else {
                cmp.unmatched.push(format!("report `{}` only in the new payload", nr.id));
                continue;
            };
            // Numeric columns present (by name) on both sides, with the
            // label column excluded.
            let mut col_pairs: Vec<(usize, usize, String, bool)> = Vec::new();
            for (nj, (name, unit)) in nr.columns.iter().enumerate().skip(1) {
                if let Some(oj) =
                    or.columns.iter().position(|(oname, _)| oname == name)
                {
                    let header = match unit {
                        Some(u) => format!("{name} ({u})"),
                        None => name.clone(),
                    };
                    col_pairs.push((oj, nj, header, gated_unit(unit.as_deref())));
                }
            }
            let mut delta = ReportDelta {
                id: nr.id.clone(),
                title: nr.title.clone(),
                columns: col_pairs.iter().map(|(_, _, h, _)| h.clone()).collect(),
                rows: Vec::new(),
            };
            for nrow in &nr.rows {
                let label = row_label(nrow);
                let Some(orow) = or.rows.iter().find(|r| row_label(r) == label) else {
                    cmp.unmatched
                        .push(format!("{}: row `{label}` only in the new payload", nr.id));
                    continue;
                };
                let mut cells = Vec::with_capacity(col_pairs.len());
                for (oj, nj, header, gated) in &col_pairs {
                    let pair = match (orow.get(*oj), nrow.get(*nj)) {
                        (Some(Json::Num(o)), Some(Json::Num(n))) => Some((*o, *n)),
                        _ => None,
                    };
                    let cell = pair.map(|(o, n)| {
                        let pct = if o != 0.0 { (n - o) / o * 100.0 } else { 0.0 };
                        let regression = *gated && pct < -threshold_pct;
                        if regression {
                            cmp.regressions.push(format!(
                                "{}: {label} / {header}: {o:.3} → {n:.3} ({pct:+.2}%)",
                                nr.id
                            ));
                        }
                        CellDelta { old: o, new: n, pct, regression }
                    });
                    cells.push(cell);
                }
                delta.rows.push((label, cells));
            }
            for orow in &or.rows {
                let label = row_label(orow);
                if !nr.rows.iter().any(|r| row_label(r) == label) {
                    cmp.unmatched
                        .push(format!("{}: row `{label}` only in the old payload", nr.id));
                }
            }
            cmp.reports.push(delta);
        }
        for or in &old_reports {
            if !new_reports.iter().any(|r| r.id == or.id) {
                cmp.unmatched.push(format!("report `{}` only in the old payload", or.id));
            }
        }
        Ok(cmp)
    }

    /// True when any gated cell dropped past the threshold.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Renders the whole comparison as Markdown: one delta table per
    /// report (`old → new (Δ%)` per numeric cell, regressions bolded),
    /// then the regression summary.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            if r.columns.is_empty() || r.rows.is_empty() {
                continue;
            }
            out.push_str(&format!("### {} — {}\n\n", r.id, r.title));
            out.push_str(&format!("| {} | {} |\n", "row", r.columns.join(" | ")));
            out.push_str(&format!("|---{}|\n", "|---".repeat(r.columns.len())));
            for (label, cells) in &r.rows {
                let rendered: Vec<String> = cells
                    .iter()
                    .map(|c| match c {
                        Some(d) if d.regression => format!(
                            "**{:.3} → {:.3} ({:+.2}%)**",
                            d.old, d.new, d.pct
                        ),
                        Some(d) => {
                            format!("{:.3} → {:.3} ({:+.2}%)", d.old, d.new, d.pct)
                        }
                        None => "-".to_string(),
                    })
                    .collect();
                out.push_str(&format!("| {label} | {} |\n", rendered.join(" | ")));
            }
            out.push('\n');
        }
        if !self.unmatched.is_empty() {
            out.push_str("### Unmatched\n\n");
            for u in &self.unmatched {
                out.push_str(&format!("- {u}\n"));
            }
            out.push('\n');
        }
        if self.regressions.is_empty() {
            out.push_str("No regressions.\n");
        } else {
            out.push_str(&format!("### {} regression(s)\n\n", self.regressions.len()));
            for r in &self.regressions {
                out.push_str(&format!("- {r}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(speedup_gzip: f64, ipc_gzip: f64) -> Json {
        let text = format!(
            r#"{{"schema":"eole-report-set/v1","runner":{{"warmup":1,"measure":2}},"reports":[
                {{"schema":"eole-report/v1","id":"fig6","title":"VP speedup",
                  "columns":[{{"name":"bench","unit":null}},{{"name":"Baseline_VP_6_64","unit":"×"}}],
                  "rows":[["gzip",{speedup_gzip}],["namd",1.1],["gmean",1.15]]}},
                {{"schema":"eole-report/v1","id":"table3","title":"Baseline IPC",
                  "columns":[{{"name":"bench","unit":null}},{{"name":"kind","unit":null}},{{"name":"ours","unit":"IPC"}}],
                  "rows":[["gzip","INT",{ipc_gzip}],["namd","FP",1.9]]}}
            ]}}"#
        );
        Json::parse(&text).unwrap()
    }

    #[test]
    fn identical_payloads_have_no_regressions() {
        let old = payload(1.25, 0.98);
        let cmp = Comparison::compare(&old, &old.clone(), 2.0).unwrap();
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.reports.len(), 2);
        assert!(cmp.unmatched.is_empty());
        let md = cmp.to_markdown();
        assert!(md.contains("No regressions."));
        assert!(md.contains("1.250 → 1.250 (+0.00%)"));
    }

    #[test]
    fn small_drift_within_threshold_passes() {
        let cmp =
            Comparison::compare(&payload(1.25, 0.98), &payload(1.24, 0.97), 2.0).unwrap();
        assert!(!cmp.has_regressions(), "{:?}", cmp.regressions);
    }

    #[test]
    fn ipc_drop_beyond_threshold_is_flagged() {
        let cmp =
            Comparison::compare(&payload(1.25, 0.98), &payload(1.25, 0.90), 2.0).unwrap();
        assert!(cmp.has_regressions());
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("table3"));
        assert!(cmp.regressions[0].contains("gzip"));
        let md = cmp.to_markdown();
        assert!(md.contains("**0.980 → 0.900"), "regressions are bolded: {md}");
    }

    #[test]
    fn speedup_drop_is_flagged_and_improvement_is_not() {
        let cmp =
            Comparison::compare(&payload(1.25, 0.98), &payload(1.10, 1.20), 2.0).unwrap();
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("fig6"));
    }

    #[test]
    fn unmatched_reports_and_rows_are_reported_not_fatal() {
        let old = payload(1.25, 0.98);
        let new_text = r#"[{"schema":"eole-report/v1","id":"fig6","title":"VP speedup",
            "columns":[{"name":"bench","unit":null},{"name":"Baseline_VP_6_64","unit":"×"}],
            "rows":[["gzip",1.25],["lbm",0.9]]}]"#;
        let new = Json::parse(new_text).unwrap();
        let cmp = Comparison::compare(&old, &new, 2.0).unwrap();
        assert!(cmp.unmatched.iter().any(|u| u.contains("lbm")));
        assert!(cmp.unmatched.iter().any(|u| u.contains("table3")));
        assert!(cmp.unmatched.iter().any(|u| u.contains("namd")));
    }

    #[test]
    fn malformed_payload_is_an_error() {
        let bad = Json::parse("{\"not\":\"reports\"}").unwrap();
        assert!(Comparison::compare(&bad, &bad.clone(), 2.0).is_err());
    }
}
