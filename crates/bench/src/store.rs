//! Persistent run identity and result caching.
//!
//! * [`RunKey`] — the canonical identity of one simulation run:
//!   configuration digest + workload + methodology + seed + the
//!   simulator's cycle-behavior version
//!   ([`SIM_FINGERPRINT_VERSION`]). Two runs with equal keys produce
//!   identical [`SimStats`] (the simulator is deterministic), which is
//!   what makes caching sound.
//! * [`ResultStore`] — where completed runs live. [`MemStore`] keeps them
//!   in memory (tests, single-process dedup); [`DirStore`] persists one
//!   JSON file per key (`eole-result/v2`, schema in `EXPERIMENTS.md`) so
//!   repeated invocations — and shards of a partitioned grid — share
//!   work across processes.
//!
//! The executor consults the store *before* simulating and saves every
//! fresh result after; a warm store therefore serves a whole experiment
//! suite with zero simulations (`experiments --store DIR
//! --assert-cached` turns that into a checkable gate).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use eole_store_service::StoreError;

use eole_core::canon::{CanonicalBytes, Fnv64, SIM_FINGERPRINT_VERSION};
use eole_core::pipeline::WARMSTATE_FORMAT;
use eole_core::stats::SimStats;
use eole_mem::hierarchy::MemStats;
use eole_stats::json::Json;
use eole_stats::report::json_string;

use crate::exec::lock_clean;
use crate::faults;
use crate::spec::RunSpec;

/// Why a stored payload was rejected — the distinction drives recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PayloadError {
    /// The entry is *damaged*: unparsable JSON, a truncated or malformed
    /// checksum field, or a checksum mismatch (bit rot, torn write,
    /// hostile edit). [`DirStore`] quarantines such files — renamed to
    /// `<stem>.quarantined` for forensics — and re-simulates.
    Corrupt(String),
    /// The entry is *well-formed but not ours*: a different key, schema
    /// generation, or simulator version — including pre-checksum
    /// payloads from older builds. A plain miss; the next save
    /// overwrites in place.
    Foreign(String),
}

impl std::fmt::Display for PayloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PayloadError::Corrupt(msg) => write!(f, "corrupt payload: {msg}"),
            PayloadError::Foreign(msg) => write!(f, "foreign payload: {msg}"),
        }
    }
}

/// The canonical identity of one simulation run.
///
/// Equality here is the caching contract: everything that can change a
/// run's statistics is in the key, and nothing else is. The configuration
/// enters as its content digest (see `eole_core::canon`); the seed stays
/// a separate axis (it perturbs the config's stochastic components via
/// [`RunSpec::effective_config`], so the *base* config digest plus the
/// seed identifies the effective one).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Simulator cycle-behavior version
    /// ([`SIM_FINGERPRINT_VERSION`]); a bump invalidates every
    /// previously stored result.
    pub sim_version: u32,
    /// Display name of the configuration (kept for human-readable
    /// filenames and payloads; identity comes from the digest, which
    /// already covers the name).
    pub config_name: String,
    /// Content digest of the base configuration.
    pub config_digest: u64,
    /// Workload name (Table 3 registry).
    pub workload: String,
    /// Warmup µ-ops of the methodology.
    pub warmup: u64,
    /// Measured µ-ops of the methodology.
    pub measure: u64,
    /// Replication seed (0 = the paper's seeds, unperturbed).
    pub seed: u64,
    /// Interval count of a stitched run (`0` = serial). Stitched results
    /// are *never* stored under the serial key: interval execution cuts
    /// windows at exact commit boundaries and approximates cycle counts
    /// within a budget, so its results must not silently replace serial
    /// ones. A nonzero count (with its warmup window) tags the key.
    pub intervals: u32,
    /// Per-interval functional-warmup window (µ-ops; meaningful iff
    /// `intervals > 0`).
    pub interval_warmup: u64,
}

impl RunKey {
    /// Derives the key for a spec under the current simulator version.
    pub fn of(spec: &RunSpec) -> RunKey {
        RunKey {
            sim_version: SIM_FINGERPRINT_VERSION,
            config_name: spec.config.name.clone(),
            config_digest: spec.config.digest(),
            workload: spec.workload.name.to_string(),
            warmup: spec.runner.warmup,
            measure: spec.runner.measure,
            seed: spec.seed,
            intervals: 0,
            interval_warmup: 0,
        }
    }

    /// Derives the interval-tagged key for a stitched run of `spec`
    /// under `policy` (a non-splitting policy degrades to the serial
    /// key: `k <= 1` stitched runs are still exact-boundary runs, but
    /// keeping them tagged would fragment the store for no benefit —
    /// they are *not* bit-identical to the overshooting serial
    /// methodology, so `k == 1` is tagged too; only `k == 0` is treated
    /// as "no policy").
    pub fn of_intervals(spec: &RunSpec, policy: crate::IntervalPolicy) -> RunKey {
        let mut key = RunKey::of(spec);
        if policy.k > 0 {
            key.intervals = policy.k;
            key.interval_warmup = policy.warmup;
        }
        key
    }

    /// A 64-bit digest of the whole key (shard ownership hashes this, so
    /// a run's shard assignment is a pure function of its identity).
    pub fn digest64(&self) -> u64 {
        let mut c = CanonicalBytes::new();
        c.put_str("eole-run-key/v1");
        c.put_u64(u64::from(self.sim_version));
        c.put_u64(self.config_digest);
        c.put_str(&self.workload);
        c.put_u64(self.warmup);
        c.put_u64(self.measure);
        c.put_u64(self.seed);
        // Appended only for stitched runs, so every serial key digest —
        // and therefore every existing store file and shard assignment —
        // is unchanged.
        if self.intervals > 0 {
            c.put_str("intervals");
            c.put_u64(u64::from(self.intervals));
            c.put_u64(self.interval_warmup);
        }
        c.digest()
    }

    /// Filesystem-safe file stem: human-readable prefix (sanitized, so
    /// two names may legitimately collide there) followed by the config
    /// digest *and* the full key digest — the latter covers the raw
    /// workload name, methodology, seed, and sim version, so distinct
    /// keys can never share a file even when their sanitized prefixes do.
    pub fn file_stem(&self) -> String {
        let sanitize = |s: &str| -> String {
            s.chars()
                .map(|ch| if ch.is_ascii_alphanumeric() || ch == '_' || ch == '-' { ch } else { '-' })
                .collect()
        };
        let interval_tag = if self.intervals > 0 {
            format!("_i{}-{}", self.intervals, self.interval_warmup)
        } else {
            String::new()
        };
        format!(
            "{}__{}__v{}_w{}_m{}_s{}{}__{:016x}-{:016x}",
            sanitize(&self.workload),
            sanitize(&self.config_name),
            self.sim_version,
            self.warmup,
            self.measure,
            self.seed,
            interval_tag,
            self.config_digest,
            self.digest64(),
        )
    }
}

/// The distinctive stem prefix of warm-state checkpoint entries: stores
/// that share a namespace with run results (one directory, one daemon)
/// use it to tell the two payload kinds apart without reading them.
/// (No Table 3 workload is named `warm`, so a result stem can never
/// start with this prefix.)
pub const WARM_STEM_PREFIX: &str = "warm__";

/// The canonical identity of one warm-state checkpoint
/// (`eole-warmstate/v1`, see [`eole_core::pipeline::WarmState`]).
///
/// A checkpoint is the byte-exact functional-warm state at trace
/// `position`, so its identity is everything that determines that state:
/// the simulator's cycle-behavior version and the snapshot format (both
/// folded into the digest via [`WARMSTATE_FORMAT`]), the base
/// configuration digest plus the replication seed (the seed perturbs the
/// effective configuration), the workload *and its generated trace
/// length* (trace identity, as in [`crate::exec::TraceCache`]), and the
/// position itself. Deliberately absent: the interval count `k` and the
/// per-interval warmup window — a checkpoint at position P is the same
/// bytes whichever split asked for it, which is what lets a `k=2` session
/// reuse the checkpoints a `k=4` session swept.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WarmKey {
    /// Simulator cycle-behavior version ([`SIM_FINGERPRINT_VERSION`]).
    pub sim_version: u32,
    /// Display name of the base configuration (filenames/payloads only).
    pub config_name: String,
    /// Content digest of the base configuration.
    pub config_digest: u64,
    /// Workload name (Table 3 registry).
    pub workload: String,
    /// Generated trace length in µ-ops ([`crate::Runner::trace_len`]).
    pub trace_len: u64,
    /// Replication seed (perturbs the effective configuration).
    pub seed: u64,
    /// Trace position (µ-op index) the checkpoint was captured at.
    pub position: u64,
}

impl WarmKey {
    /// Derives the checkpoint key for `spec` at `position` under the
    /// current simulator version.
    pub fn of(spec: &RunSpec, position: u64) -> WarmKey {
        WarmKey {
            sim_version: SIM_FINGERPRINT_VERSION,
            config_name: spec.config.name.clone(),
            config_digest: spec.config.digest(),
            workload: spec.workload.name.to_string(),
            trace_len: spec.runner.trace_len(),
            seed: spec.seed,
            position,
        }
    }

    /// A 64-bit digest of the whole key. The snapshot format marker
    /// participates, so a `WARMSTATE_FORMAT` bump (any snapshot layout
    /// change) silently invalidates every cached checkpoint — old
    /// entries become misses that degrade to a functional rebuild.
    pub fn digest64(&self) -> u64 {
        let mut c = CanonicalBytes::new();
        c.put_str("eole-warm-key/v1");
        c.put_str(WARMSTATE_FORMAT);
        c.put_u64(u64::from(self.sim_version));
        c.put_u64(self.config_digest);
        c.put_str(&self.workload);
        c.put_u64(self.trace_len);
        c.put_u64(self.seed);
        c.put_u64(self.position);
        c.digest()
    }

    /// Filesystem- and wire-safe file stem, always starting with
    /// [`WARM_STEM_PREFIX`]. Same discipline as [`RunKey::file_stem`]:
    /// sanitized human-readable prefix, then the config digest and the
    /// full key digest so distinct keys can never share a file. The
    /// alphabet (ASCII alphanumerics, `_`, `-`) and length also satisfy
    /// the `eole-stored` daemon's wire-key grammar.
    pub fn file_stem(&self) -> String {
        let sanitize = |s: &str| -> String {
            s.chars()
                .map(|ch| if ch.is_ascii_alphanumeric() || ch == '_' || ch == '-' { ch } else { '-' })
                .collect()
        };
        format!(
            "{}{}__{}__v{}_t{}_s{}_p{}__{:016x}-{:016x}",
            WARM_STEM_PREFIX,
            sanitize(&self.workload),
            sanitize(&self.config_name),
            self.sim_version,
            self.trace_len,
            self.seed,
            self.position,
            self.config_digest,
            self.digest64(),
        )
    }
}

/// Where completed runs are remembered.
///
/// Implementations must be shareable across the executor's worker threads
/// (`&self` methods, internal synchronization). `load` answering `None`
/// means "simulate it"; a corrupt or unreadable entry is a miss, never an
/// error — the store is a cache, and the simulator is always able to
/// regenerate the truth.
pub trait ResultStore: Send + Sync + std::fmt::Debug {
    /// The stored statistics for `key`, if present and readable.
    fn load(&self, key: &RunKey) -> Option<SimStats>;

    /// Persists the statistics for `key` (overwrites an existing entry).
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`], if any. Losing a cache write is not
    /// recoverable silently — the caller surfaces it as a typed run
    /// error so CI catches a broken store directory.
    fn save(&self, key: &RunKey, stats: &SimStats) -> Result<(), StoreError>;

    /// Number of entries currently stored.
    fn len(&self) -> usize;

    /// True when the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Releases any in-flight claim this process holds on `key` without
    /// publishing a result — called when the simulation behind a
    /// single-flight lease fails, so waiters on a networked store are
    /// woken instead of blocking until the lease TTL. Local stores have
    /// no leases; the default is a no-op.
    fn abandon(&self, _key: &RunKey) {}

    /// The serialized warm-state checkpoint for `key`
    /// (`eole-warmstate/v1` bytes), if present and intact. Checkpoints
    /// are an optional acceleration layer: a store that does not persist
    /// them (the default) answers `None` and the chained sweep rebuilds
    /// the state functionally — a miss, or a corrupt entry, costs a
    /// rebuild, never correctness.
    fn load_warm(&self, _key: &WarmKey) -> Option<Vec<u8>> {
        None
    }

    /// Persists a warm-state checkpoint (overwrites an existing entry).
    /// Best-effort by contract — callers treat a failure as "not
    /// cached", not as a run failure.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] for accounting; the default drops the
    /// checkpoint and reports success.
    fn save_warm(&self, _key: &WarmKey, _bytes: &[u8]) -> Result<(), StoreError> {
        Ok(())
    }

    /// Releases an in-flight single-flight claim on a checkpoint key
    /// without publishing (the warm analogue of [`ResultStore::abandon`]).
    fn abandon_warm(&self, _key: &WarmKey) {}

    /// True when the store has fallen back to cache-less operation
    /// (e.g. the remote daemon became unreachable); loads answer `None`
    /// and saves are dropped, so runs still complete correctly.
    fn degraded(&self) -> bool {
        false
    }

    /// Evictions observed at the backing store (LRU sweeps at a
    /// budget-limited daemon); local stores never evict.
    fn observed_evictions(&self) -> u64 {
        0
    }

    /// Entries found *damaged* (checksum mismatch or unparsable bytes)
    /// and set aside so they can never be served again — [`DirStore`]
    /// renames them to `<stem>.quarantined`; a remote store counts the
    /// daemon payloads it rejected. Foreign-but-well-formed entries are
    /// plain misses and are not counted here.
    fn quarantined(&self) -> u64 {
        0
    }
}

/// An in-memory [`ResultStore`]: per-process dedup and tests.
#[derive(Debug, Default)]
pub struct MemStore {
    map: Mutex<HashMap<RunKey, SimStats>>,
    warm: Mutex<HashMap<WarmKey, Vec<u8>>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ResultStore for MemStore {
    fn load(&self, key: &RunKey) -> Option<SimStats> {
        lock_clean(&self.map).get(key).copied()
    }

    fn save(&self, key: &RunKey, stats: &SimStats) -> Result<(), StoreError> {
        lock_clean(&self.map).insert(key.clone(), *stats);
        Ok(())
    }

    // Checkpoints live beside results but never count in `len()` — the
    // store-size invariants (shard accounting, `--assert-cached`) are
    // about run results.
    fn load_warm(&self, key: &WarmKey) -> Option<Vec<u8>> {
        lock_clean(&self.warm).get(key).cloned()
    }

    fn save_warm(&self, key: &WarmKey, bytes: &[u8]) -> Result<(), StoreError> {
        lock_clean(&self.warm).insert(key.clone(), bytes.to_vec());
        Ok(())
    }

    fn len(&self) -> usize {
        lock_clean(&self.map).len()
    }
}

/// An on-disk [`ResultStore`]: one `eole-result/v2` JSON file per key.
///
/// Writes go through a sibling temp file and an atomic rename (the same
/// discipline the `experiments --out` path uses), so a crashed or killed
/// process can leave at worst a stray `.tmp` file — never a truncated
/// entry. Every payload carries a spliced-in FNV-1a checksum; reads that
/// fail it (or fail to parse at all) are *damaged* — the file is renamed
/// to `<stem>.quarantined` so it can never be served again, the miss
/// triggers a re-simulation, and the fresh save recreates `<stem>.json`.
/// Well-formed entries that merely belong to another schema generation
/// or key are plain misses; both kinds count in [`DirStore::corrupt`],
/// quarantines additionally in [`DirStore::quarantined_count`].
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
    hits: AtomicUsize,
    misses: AtomicUsize,
    corrupt: AtomicUsize,
    quarantined: AtomicUsize,
}

/// Process-global temp-name counter: two `DirStore` instances over the
/// same directory in one process share the pid, so a per-instance
/// counter could collide. One counter per process makes `.tmp-{pid}-{n}`
/// unique across *every* instance (and the pid keeps it unique across
/// processes).
static TMP_COUNTER: AtomicUsize = AtomicUsize::new(0);

impl DirStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// A rendered description if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DirStore, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("create result store {}: {e}", dir.display()))?;
        Ok(DirStore {
            dir,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            corrupt: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lookups served from disk.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no entry.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries that existed but failed to parse or verify (each was
    /// treated as a miss and will be overwritten by the next save).
    /// Superset of [`DirStore::quarantined_count`]: damaged *and*
    /// foreign entries both land here.
    pub fn corrupt(&self) -> usize {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Damaged entries renamed to `<stem>.quarantined` (checksum
    /// mismatch or unparsable bytes — never served, kept for forensics;
    /// the re-simulated result lands in a fresh `<stem>.json`).
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    fn path_for(&self, key: &RunKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.file_stem()))
    }

    fn warm_path_for(&self, key: &WarmKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.file_stem()))
    }

    /// Shared temp-file + atomic-rename write (results and checkpoints).
    fn write_atomically(&self, path: &Path, payload: &str) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, payload)
            .map_err(|e| StoreError::Io(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            StoreError::Io(format!("rename {} -> {}: {e}", tmp.display(), path.display()))
        })
    }
}

impl ResultStore for DirStore {
    fn load(&self, key: &RunKey) -> Option<SimStats> {
        let path = self.path_for(key);
        let mut text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if faults::fire(faults::DIR_LOAD_CORRUPT).is_some() {
            // Simulated media damage: truncating mid-object guarantees
            // unparsable JSON, so the quarantine path below always fires.
            text.truncate(text.len() / 2);
        }
        match parse_result_payload(&text, key) {
            Ok(stats) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(stats)
            }
            Err(PayloadError::Corrupt(_)) => {
                // Damaged entry: set it aside under a name no lookup will
                // ever read again (forensics can inspect it), then miss —
                // the executor re-simulates and saves a fresh `.json`.
                // A rename race (another worker already quarantined it)
                // is harmless; both count the same damaged entry once
                // because only one read can have seen each damaged file
                // before the first rename wins.
                let _ = std::fs::rename(&path, path.with_extension("quarantined"));
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(PayloadError::Foreign(_)) => {
                // Well-formed but not ours (old schema, key drift): a
                // plain miss; the next save overwrites in place.
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn save(&self, key: &RunKey, stats: &SimStats) -> Result<(), StoreError> {
        if faults::fire(faults::DIR_SAVE_IO).is_some() {
            // Before the temp write, so an injected failure never leaks
            // a `.tmp` file.
            return Err(StoreError::Io("injected fault: dir.save.io".to_string()));
        }
        self.write_atomically(&self.path_for(key), &render_result_payload(key, stats))
    }

    fn load_warm(&self, key: &WarmKey) -> Option<Vec<u8>> {
        let path = self.warm_path_for(key);
        let mut text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if faults::fire(faults::DIR_LOAD_CORRUPT).is_some() {
            text.truncate(text.len() / 2);
        }
        match parse_warm_payload(&text, key) {
            Ok(bytes) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            Err(PayloadError::Corrupt(_)) => {
                // Same quarantine discipline as damaged results: set the
                // entry aside for forensics, answer a miss — the sweep
                // rebuilds the checkpoint and the fresh save recreates
                // `<stem>.json`.
                let _ = std::fs::rename(&path, path.with_extension("quarantined"));
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(PayloadError::Foreign(_)) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn save_warm(&self, key: &WarmKey, bytes: &[u8]) -> Result<(), StoreError> {
        if faults::fire(faults::DIR_SAVE_IO).is_some() {
            return Err(StoreError::Io("injected fault: dir.save.io".to_string()));
        }
        self.write_atomically(&self.warm_path_for(key), &render_warm_payload(key, bytes))
    }

    fn len(&self) -> usize {
        // Warm-state checkpoints share the directory but are excluded:
        // `len()` is the *result* count (shard accounting and the
        // single-flight CI invariant `sims == keys` depend on it).
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| {
                        let path = e.path();
                        path.extension().is_some_and(|ext| ext == "json")
                            && !path
                                .file_name()
                                .and_then(|n| n.to_str())
                                .is_some_and(|n| n.starts_with(WARM_STEM_PREFIX))
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed) as u64
    }
}

// ---- eole-result/v2 payload ----------------------------------------------
// (v2 = v1 plus the per-confidence-level and block-front counters; v1
// files degrade to cache misses and are overwritten on the next save.)

fn cache_stats_json(name: &str, accesses: u64, misses: u64) -> String {
    format!("\"{name}\":{{\"accesses\":{accesses},\"misses\":{misses}}}")
}

/// Renders the stored-result payload (schema documented in
/// `EXPERIMENTS.md`). Every counter is an exact JSON integer, so a report
/// built from stored results is byte-identical to one built from fresh
/// simulations.
pub fn render_result_payload(key: &RunKey, s: &SimStats) -> String {
    let mut out = String::with_capacity(1536);
    // The checksum field sits right after the schema tag, *before* any
    // user-influenced string (config/workload names are JSON-escaped but
    // could still contain the bytes `"crc":"` if it appeared later), so
    // the first occurrence of CRC_FIELD in the text is always this one.
    out.push_str("{\"schema\":\"eole-result/v2\",\"crc\":\"0000000000000000\",");
    out.push_str(&format!("\"sim_version\":{},", key.sim_version));
    let interval_tag = if key.intervals > 0 {
        format!(
            ",\"intervals\":{{\"k\":{},\"warmup\":{}}}",
            key.intervals, key.interval_warmup
        )
    } else {
        String::new()
    };
    out.push_str(&format!(
        "\"key\":{{\"config\":{},\"config_digest\":\"{:016x}\",\"workload\":{},\"warmup\":{},\"measure\":{},\"seed\":{}{}}},",
        json_string(&key.config_name),
        key.config_digest,
        json_string(&key.workload),
        key.warmup,
        key.measure,
        key.seed,
        interval_tag,
    ));
    out.push_str("\"stats\":{");
    let m = &s.mem;
    let fields: Vec<String> = vec![
        format!("\"cycles\":{}", s.cycles),
        format!("\"committed\":{}", s.committed),
        format!("\"fetched\":{}", s.fetched),
        format!("\"squashed\":{}", s.squashed),
        format!("\"vp_eligible\":{}", s.vp_eligible),
        format!("\"vp_predicted\":{}", s.vp_predicted),
        format!("\"vp_used\":{}", s.vp_used),
        format!("\"vp_used_correct\":{}", s.vp_used_correct),
        format!("\"vp_used_wrong\":{}", s.vp_used_wrong),
        format!("\"vp_squashes\":{}", s.vp_squashes),
        format!("\"vp_squash_cycles_frontend\":{}", s.vp_squash_cycles_frontend),
        format!("\"vp_squash_cycles_levt\":{}", s.vp_squash_cycles_levt),
        format!("\"vp_squash_cycles_window\":{}", s.vp_squash_cycles_window),
        format!("\"vp_pred_by_level\":[{}]", join_u64s(&s.vp_pred_by_level)),
        format!("\"vp_correct_by_level\":[{}]", join_u64s(&s.vp_correct_by_level)),
        format!("\"vp_block_reads\":{}", s.vp_block_reads),
        format!("\"vp_window_rejects\":{}", s.vp_window_rejects),
        format!("\"early_executed\":{}", s.early_executed),
        format!("\"late_executed_alu\":{}", s.late_executed_alu),
        format!("\"late_executed_branches\":{}", s.late_executed_branches),
        format!("\"levt_port_stalls\":{}", s.levt_port_stalls),
        format!("\"ee_write_stalls\":{}", s.ee_write_stalls),
        format!("\"cond_branches\":{}", s.cond_branches),
        format!("\"branch_mispredicts\":{}", s.branch_mispredicts),
        format!("\"hc_branches\":{}", s.hc_branches),
        format!("\"hc_branch_mispredicts\":{}", s.hc_branch_mispredicts),
        format!("\"indirect_mispredicts\":{}", s.indirect_mispredicts),
        format!("\"btb_miss_bubbles\":{}", s.btb_miss_bubbles),
        format!("\"memory_order_squashes\":{}", s.memory_order_squashes),
        format!("\"sq_forwards\":{}", s.sq_forwards),
        format!("\"stall_rob_full\":{}", s.stall_rob_full),
        format!("\"stall_iq_full\":{}", s.stall_iq_full),
        format!("\"stall_lsq_full\":{}", s.stall_lsq_full),
        format!("\"stall_prf\":{}", s.stall_prf),
        format!(
            "\"mem\":{{{},{},{},\"dram\":{{\"accesses\":{},\"row_hits\":{},\"row_conflicts\":{}}},\"prefetch\":{{\"trains\":{},\"issued\":{}}},\"writebacks\":{}}}",
            cache_stats_json("l1i", m.l1i.accesses, m.l1i.misses),
            cache_stats_json("l1d", m.l1d.accesses, m.l1d.misses),
            cache_stats_json("l2", m.l2.accesses, m.l2.misses),
            m.dram.accesses,
            m.dram.row_hits,
            m.dram.row_conflicts,
            m.prefetch.trains,
            m.prefetch.issued,
            m.writebacks,
        ),
    ];
    out.push_str(&fields.join(","));
    out.push_str("}}\n");
    // Splice the checksum over the zero placeholder: digest the payload
    // with the crc field zeroed, then write the 16-hex digest in place.
    // Verification reverses this (re-zero, re-digest, compare), so the
    // bytes on disk are self-validating without a sidecar file.
    let at = out.find(CRC_FIELD).expect("crc placeholder rendered above") + CRC_FIELD.len(); // lint:allow(error-typing) the placeholder is rendered unconditionally a few lines up
    let digest = format!("{:016x}", Fnv64::digest(out.as_bytes()));
    out.replace_range(at..at + 16, &digest);
    out
}

/// The checksum field marker; rendered once, immediately after the
/// schema tag.
const CRC_FIELD: &str = "\"crc\":\"";

/// Verifies the spliced-in payload checksum.
///
/// * missing field → [`PayloadError::Foreign`] — a well-formed payload
///   from a pre-checksum build; a plain miss, not damage.
/// * truncated/malformed field, or digest mismatch →
///   [`PayloadError::Corrupt`] — the bytes cannot be trusted.
fn verify_payload_checksum(text: &str) -> Result<(), PayloadError> {
    let Some(field) = text.find(CRC_FIELD) else {
        return Err(PayloadError::Foreign("no checksum (pre-hardening payload)".into()));
    };
    let start = field + CRC_FIELD.len();
    let end = start + 16;
    let stored = match text.get(start..end) {
        Some(hex)
            if hex.bytes().all(|b| b.is_ascii_hexdigit())
                && text.as_bytes().get(end) == Some(&b'"') =>
        {
            hex
        }
        _ => return Err(PayloadError::Corrupt("truncated or malformed checksum field".into())),
    };
    let mut zeroed = text.to_string();
    zeroed.replace_range(start..end, "0000000000000000");
    let computed = format!("{:016x}", Fnv64::digest(zeroed.as_bytes()));
    if computed == stored {
        Ok(())
    } else {
        Err(PayloadError::Corrupt(format!(
            "checksum mismatch: stored {stored}, computed {computed}"
        )))
    }
}

fn join_u64s(values: &[u64]) -> String {
    values.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

fn u64_array8(v: &Json, key: &str) -> Result<[u64; 8], String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array field `{key}`"))?;
    if arr.len() != 8 {
        return Err(format!("`{key}` must hold 8 levels, got {}", arr.len()));
    }
    let mut out = [0u64; 8];
    for (slot, e) in out.iter_mut().zip(arr) {
        *slot = e.as_u64().ok_or_else(|| format!("non-integer entry in `{key}`"))?;
    }
    Ok(out)
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn cache_stats_field(
    v: &Json,
    key: &str,
) -> Result<eole_mem::cache::CacheStats, String> {
    let c = v.get(key).ok_or_else(|| format!("missing `{key}`"))?;
    Ok(eole_mem::cache::CacheStats {
        accesses: u64_field(c, "accesses")?,
        misses: u64_field(c, "misses")?,
    })
}

/// Parses an `eole-result/v2` payload back into [`SimStats`], verifying
/// that it belongs to `key` (schema, sim version, digest, workload,
/// methodology, seed) and that its checksum holds. Any failure is a
/// cache miss, but the error's variant drives recovery: [`DirStore`]
/// quarantines [`PayloadError::Corrupt`] entries and plainly overwrites
/// [`PayloadError::Foreign`] ones.
pub fn parse_result_payload(text: &str, key: &RunKey) -> Result<SimStats, PayloadError> {
    // Unparsable bytes are damage (every generation of this store wrote
    // valid JSON); a parsable payload with the wrong schema tag is
    // foreign, and only a schema-matched payload gets checksum-checked.
    let v = Json::parse(text).map_err(PayloadError::Corrupt)?;
    if v.get("schema").and_then(Json::as_str) != Some("eole-result/v2") {
        return Err(PayloadError::Foreign("not an eole-result/v2 payload".into()));
    }
    verify_payload_checksum(text)?;
    parse_checked_payload(&v, key).map_err(PayloadError::Foreign)
}

/// Field extraction and key matching for an already checksum-verified
/// payload; every failure here is a key/schema-drift mismatch
/// ([`PayloadError::Foreign`]), never damage.
fn parse_checked_payload(v: &Json, key: &RunKey) -> Result<SimStats, String> {
    if u64_field(v, "sim_version")? != u64::from(key.sim_version) {
        return Err("sim_version mismatch".into());
    }
    let k = v.get("key").ok_or("missing `key`")?;
    if k.get("config_digest").and_then(Json::as_str)
        != Some(format!("{:016x}", key.config_digest).as_str())
        || k.get("workload").and_then(Json::as_str) != Some(key.workload.as_str())
        || u64_field(k, "warmup")? != key.warmup
        || u64_field(k, "measure")? != key.measure
        || u64_field(k, "seed")? != key.seed
    {
        return Err("key mismatch".into());
    }
    // Interval tag: a serial key must see no tag, a stitched key must see
    // its exact (k, warmup) — a stitched payload can never satisfy a
    // serial lookup or vice versa.
    match k.get("intervals") {
        None if key.intervals == 0 => {}
        Some(tag)
            if key.intervals > 0
                && u64_field(tag, "k")? == u64::from(key.intervals)
                && u64_field(tag, "warmup")? == key.interval_warmup => {}
        _ => return Err("interval-tag mismatch".into()),
    }
    let s = v.get("stats").ok_or("missing `stats`")?;
    let mem = s.get("mem").ok_or("missing `stats.mem`")?;
    let dram = mem.get("dram").ok_or("missing `stats.mem.dram`")?;
    let prefetch = mem.get("prefetch").ok_or("missing `stats.mem.prefetch`")?;
    Ok(SimStats {
        cycles: u64_field(s, "cycles")?,
        committed: u64_field(s, "committed")?,
        fetched: u64_field(s, "fetched")?,
        squashed: u64_field(s, "squashed")?,
        vp_eligible: u64_field(s, "vp_eligible")?,
        vp_predicted: u64_field(s, "vp_predicted")?,
        vp_used: u64_field(s, "vp_used")?,
        vp_used_correct: u64_field(s, "vp_used_correct")?,
        vp_used_wrong: u64_field(s, "vp_used_wrong")?,
        vp_squashes: u64_field(s, "vp_squashes")?,
        vp_squash_cycles_frontend: u64_field(s, "vp_squash_cycles_frontend")?,
        vp_squash_cycles_levt: u64_field(s, "vp_squash_cycles_levt")?,
        vp_squash_cycles_window: u64_field(s, "vp_squash_cycles_window")?,
        vp_pred_by_level: u64_array8(s, "vp_pred_by_level")?,
        vp_correct_by_level: u64_array8(s, "vp_correct_by_level")?,
        vp_block_reads: u64_field(s, "vp_block_reads")?,
        vp_window_rejects: u64_field(s, "vp_window_rejects")?,
        early_executed: u64_field(s, "early_executed")?,
        late_executed_alu: u64_field(s, "late_executed_alu")?,
        late_executed_branches: u64_field(s, "late_executed_branches")?,
        levt_port_stalls: u64_field(s, "levt_port_stalls")?,
        ee_write_stalls: u64_field(s, "ee_write_stalls")?,
        cond_branches: u64_field(s, "cond_branches")?,
        branch_mispredicts: u64_field(s, "branch_mispredicts")?,
        hc_branches: u64_field(s, "hc_branches")?,
        hc_branch_mispredicts: u64_field(s, "hc_branch_mispredicts")?,
        indirect_mispredicts: u64_field(s, "indirect_mispredicts")?,
        btb_miss_bubbles: u64_field(s, "btb_miss_bubbles")?,
        memory_order_squashes: u64_field(s, "memory_order_squashes")?,
        sq_forwards: u64_field(s, "sq_forwards")?,
        stall_rob_full: u64_field(s, "stall_rob_full")?,
        stall_iq_full: u64_field(s, "stall_iq_full")?,
        stall_lsq_full: u64_field(s, "stall_lsq_full")?,
        stall_prf: u64_field(s, "stall_prf")?,
        mem: MemStats {
            l1i: cache_stats_field(mem, "l1i")?,
            l1d: cache_stats_field(mem, "l1d")?,
            l2: cache_stats_field(mem, "l2")?,
            dram: eole_mem::dram::DramStats {
                accesses: u64_field(dram, "accesses")?,
                row_hits: u64_field(dram, "row_hits")?,
                row_conflicts: u64_field(dram, "row_conflicts")?,
            },
            prefetch: eole_mem::prefetch::PrefetchStats {
                trains: u64_field(prefetch, "trains")?,
                issued: u64_field(prefetch, "issued")?,
            },
            writebacks: u64_field(mem, "writebacks")?,
        },
    })
}

// ---- eole-warmstate/v1 payload -------------------------------------------
// The store wrapper around `WarmState` checkpoint bytes: the same
// spliced-FNV-checksum discipline as `eole-result/v2`, with the binary
// snapshot carried as base64 (the store formats are line-oriented JSON
// end to end — daemon wire frames included — so raw bytes are not an
// option). A corrupt or foreign wrapper is a miss that degrades to a
// functional rebuild, never an error.

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding (RFC 4648), hand-rolled — the workspace
/// takes no external dependencies and the std library has no codec.
fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let n = (u32::from(chunk[0]) << 16)
            | (u32::from(chunk.get(1).copied().unwrap_or(0)) << 8)
            | u32::from(chunk.get(2).copied().unwrap_or(0));
        out.push(BASE64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(BASE64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { BASE64_ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { BASE64_ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

/// Inverse of [`base64_encode`]; any malformed input is an error (the
/// caller maps it to [`PayloadError::Corrupt`]).
fn base64_decode(text: &str) -> Result<Vec<u8>, String> {
    let value_of = |c: u8| -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok(u32::from(c - b'A')),
            b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("invalid base64 byte {c:#04x}")),
        }
    };
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err("base64 length not a multiple of 4".to_string());
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || chunk[..4 - pad].contains(&b'=') {
            return Err("misplaced base64 padding".to_string());
        }
        let mut n = 0u32;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | value_of(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

/// Renders the stored checkpoint payload: schema tag, spliced checksum,
/// the full [`WarmKey`] for verification, and the snapshot bytes as
/// base64 under `data`.
pub fn render_warm_payload(key: &WarmKey, bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4 + 512);
    out.push_str(&format!(
        "{{\"schema\":\"{WARMSTATE_FORMAT}\",\"crc\":\"0000000000000000\","
    ));
    out.push_str(&format!("\"sim_version\":{},", key.sim_version));
    out.push_str(&format!(
        "\"key\":{{\"config\":{},\"config_digest\":\"{:016x}\",\"workload\":{},\"trace_len\":{},\"seed\":{},\"position\":{}}},",
        json_string(&key.config_name),
        key.config_digest,
        json_string(&key.workload),
        key.trace_len,
        key.seed,
        key.position,
    ));
    out.push_str(&format!("\"data\":\"{}\"}}\n", base64_encode(bytes)));
    let at = out.find(CRC_FIELD).expect("crc placeholder rendered above") + CRC_FIELD.len(); // lint:allow(error-typing) the placeholder is rendered unconditionally a few lines up
    let digest = format!("{:016x}", Fnv64::digest(out.as_bytes()));
    out.replace_range(at..at + 16, &digest);
    out
}

/// Parses an `eole-warmstate/v1` wrapper back into checkpoint bytes,
/// verifying schema, checksum, and that the payload belongs to `key`.
/// The same recovery split as results: [`PayloadError::Corrupt`] entries
/// get quarantined by [`DirStore`], [`PayloadError::Foreign`] ones are
/// plain misses — either way the sweep rebuilds the checkpoint.
///
/// # Errors
///
/// [`PayloadError`] as above; never a panic.
pub fn parse_warm_payload(text: &str, key: &WarmKey) -> Result<Vec<u8>, PayloadError> {
    let v = Json::parse(text).map_err(PayloadError::Corrupt)?;
    if v.get("schema").and_then(Json::as_str) != Some(WARMSTATE_FORMAT) {
        return Err(PayloadError::Foreign(format!("not an {WARMSTATE_FORMAT} payload")));
    }
    verify_payload_checksum(text)?;
    if u64_field(&v, "sim_version").map_err(PayloadError::Foreign)?
        != u64::from(key.sim_version)
    {
        return Err(PayloadError::Foreign("sim_version mismatch".into()));
    }
    let k = v.get("key").ok_or_else(|| PayloadError::Foreign("missing `key`".into()))?;
    let field = |name| u64_field(k, name).map_err(PayloadError::Foreign);
    if k.get("config_digest").and_then(Json::as_str)
        != Some(format!("{:016x}", key.config_digest).as_str())
        || k.get("workload").and_then(Json::as_str) != Some(key.workload.as_str())
        || field("trace_len")? != key.trace_len
        || field("seed")? != key.seed
        || field("position")? != key.position
    {
        return Err(PayloadError::Foreign("key mismatch".into()));
    }
    let data = v
        .get("data")
        .and_then(Json::as_str)
        .ok_or_else(|| PayloadError::Corrupt("missing `data` field".into()))?;
    base64_decode(data).map_err(PayloadError::Corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runner;
    use eole_core::config::CoreConfig;
    use eole_workloads::workload_by_name;

    fn spec() -> RunSpec {
        RunSpec {
            config: CoreConfig::eole_4_64(),
            workload: workload_by_name("gzip").unwrap(),
            runner: Runner::quick(),
            seed: 0,
        }
    }

    fn dense_stats() -> SimStats {
        // Every field non-zero so a dropped field cannot hide in a
        // default; the Debug round-trip below is the drift alarm.
        let mut s = SimStats::default();
        let mut n = 1u64;
        macro_rules! fill {
            ($($f:ident),+) => { $( s.$f = n; n += 1; )+ };
        }
        fill!(
            cycles, committed, fetched, squashed, vp_eligible, vp_predicted, vp_used,
            vp_used_correct, vp_used_wrong, vp_squashes, vp_squash_cycles_frontend,
            vp_squash_cycles_levt, vp_squash_cycles_window, vp_block_reads,
            vp_window_rejects, early_executed, late_executed_alu, late_executed_branches,
            levt_port_stalls, ee_write_stalls, cond_branches, branch_mispredicts,
            hc_branches, hc_branch_mispredicts, indirect_mispredicts, btb_miss_bubbles,
            memory_order_squashes, sq_forwards, stall_rob_full, stall_iq_full,
            stall_lsq_full, stall_prf
        );
        for lvl in 0..8 {
            s.vp_pred_by_level[lvl] = n + lvl as u64;
            s.vp_correct_by_level[lvl] = n + 8 + lvl as u64;
        }
        n += 16;
        s.mem.l1i.accesses = n;
        s.mem.l1i.misses = n + 1;
        s.mem.l1d.accesses = n + 2;
        s.mem.l1d.misses = n + 3;
        s.mem.l2.accesses = n + 4;
        s.mem.l2.misses = n + 5;
        s.mem.dram.accesses = n + 6;
        s.mem.dram.row_hits = n + 7;
        s.mem.dram.row_conflicts = n + 8;
        s.mem.prefetch.trains = n + 9;
        s.mem.prefetch.issued = n + 10;
        s.mem.writebacks = n + 11;
        s
    }

    #[test]
    fn payload_round_trips_every_counter() {
        let key = RunKey::of(&spec());
        let s = dense_stats();
        let payload = render_result_payload(&key, &s);
        let back = parse_result_payload(&payload, &key).unwrap();
        // SimStats has no PartialEq; Debug covers every field, so equal
        // renderings mean equal structs — and a field added to SimStats
        // but forgotten here fails this test as long as it is non-zero
        // in dense_stats().
        assert_eq!(format!("{s:?}"), format!("{back:?}"));
    }

    #[test]
    fn payload_rejects_foreign_keys() {
        let base = spec();
        let key = RunKey::of(&base);
        let payload = render_result_payload(&key, &dense_stats());
        let other_workload = RunKey { workload: "mcf".into(), ..key.clone() };
        assert!(parse_result_payload(&payload, &other_workload).is_err());
        let other_seed = RunKey { seed: 7, ..key.clone() };
        assert!(parse_result_payload(&payload, &other_seed).is_err());
        let other_version = RunKey { sim_version: key.sim_version + 1, ..key.clone() };
        assert!(parse_result_payload(&payload, &other_version).is_err());
        let other_config = RunKey { config_digest: key.config_digest ^ 1, ..key };
        assert!(parse_result_payload(&payload, &other_config).is_err());
    }

    #[test]
    fn run_key_separates_every_axis() {
        let base = spec();
        let key = RunKey::of(&base);
        assert_eq!(key, RunKey::of(&base.clone()), "identity is value-based");
        let mut by_config = base.clone();
        by_config.config = CoreConfig::baseline_6_64();
        let mut by_seed = base.clone();
        by_seed.seed = 3;
        let mut by_runner = base.clone();
        by_runner.runner = Runner::default();
        let mut by_workload = base.clone();
        by_workload.workload = workload_by_name("mcf").unwrap();
        for (what, other) in [
            ("config", &by_config),
            ("seed", &by_seed),
            ("runner", &by_runner),
            ("workload", &by_workload),
        ] {
            let other_key = RunKey::of(other);
            assert_ne!(key, other_key, "{what} must change the key");
            assert_ne!(key.digest64(), other_key.digest64(), "{what} must change the digest");
            assert_ne!(key.file_stem(), other_key.file_stem(), "{what} must change the file");
        }
    }

    #[test]
    fn sanitized_name_collisions_still_get_distinct_files() {
        // "gzip.v2" and "gzip-v2" sanitize to the same prefix; the
        // trailing key digest must keep their files apart.
        let key = RunKey::of(&spec());
        let a = RunKey { workload: "gzip.v2".into(), ..key.clone() };
        let b = RunKey { workload: "gzip-v2".into(), ..key };
        assert_ne!(a.file_stem(), b.file_stem());
    }

    #[test]
    fn file_stems_are_filesystem_safe() {
        let mut s = spec();
        s.config.name = "weird name/with:chars".into();
        let stem = RunKey::of(&s).file_stem();
        assert!(stem.chars().all(|c| c.is_ascii_alphanumeric() || "_-".contains(c)),
            "{stem}");
    }

    #[test]
    fn payload_checksum_catches_single_bit_damage() {
        let key = RunKey::of(&spec());
        let payload = render_result_payload(&key, &dense_stats());
        assert!(parse_result_payload(&payload, &key).is_ok(), "pristine payload must verify");
        // Flip one digit inside a stats value: still perfectly valid
        // JSON with a matching key, so only the checksum can catch it.
        let digit_at = payload.find("\"cycles\":").unwrap() + "\"cycles\":".len();
        let mut tampered = payload.clone().into_bytes();
        tampered[digit_at] = if tampered[digit_at] == b'1' { b'2' } else { b'1' };
        let tampered = String::from_utf8(tampered).unwrap();
        match parse_result_payload(&tampered, &key) {
            Err(PayloadError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("tampered payload must be Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn payload_classifies_foreign_vs_corrupt() {
        let key = RunKey::of(&spec());
        let payload = render_result_payload(&key, &dense_stats());
        // Unparsable bytes are damage.
        assert!(matches!(
            parse_result_payload("{ not json", &key),
            Err(PayloadError::Corrupt(_))
        ));
        // Truncation is damage (unparsable JSON).
        assert!(matches!(
            parse_result_payload(&payload[..payload.len() / 2], &key),
            Err(PayloadError::Corrupt(_))
        ));
        // A payload without a crc field is a pre-hardening store file:
        // well-formed, just old — Foreign, never quarantined.
        let crc_at = payload.find(CRC_FIELD).unwrap();
        let mut pre_crc = payload.clone();
        pre_crc.replace_range(crc_at..crc_at + CRC_FIELD.len() + 16 + 2, "");
        assert!(matches!(
            parse_result_payload(&pre_crc, &key),
            Err(PayloadError::Foreign(_))
        ));
        // A valid payload for a different key is Foreign.
        let other = RunKey { seed: key.seed + 1, ..key.clone() };
        assert!(matches!(
            parse_result_payload(&payload, &other),
            Err(PayloadError::Foreign(_))
        ));
    }

    #[test]
    fn dir_store_quarantines_damaged_entries() {
        let dir = std::env::temp_dir().join(format!(
            "eole-quarantine-test-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let store = DirStore::open(&dir).unwrap();
        let key = RunKey::of(&spec());
        store.save(&key, &dense_stats()).unwrap();
        let path = dir.join(format!("{}.json", key.file_stem()));
        let quarantine = path.with_extension("quarantined");

        // Damage the entry on disk: next load must miss, quarantine the
        // file, and leave nothing a future lookup could be served from.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load(&key).is_none());
        assert_eq!(store.quarantined_count(), 1);
        assert_eq!(store.corrupt(), 1);
        assert!(!path.exists(), "damaged entry must be renamed away");
        assert!(quarantine.exists(), "damaged entry must be kept for forensics");

        // Self-heal: a fresh save recreates the `.json`, and the next
        // load serves it while the quarantined file stays untouched.
        store.save(&key, &dense_stats()).unwrap();
        let back = store.load(&key).unwrap();
        assert_eq!(format!("{back:?}"), format!("{:?}", dense_stats()));
        assert!(quarantine.exists());

        // A pre-checksum (foreign) entry is a plain miss: overwritten in
        // place, never quarantined.
        let pristine = std::fs::read_to_string(&path).unwrap();
        let crc_at = pristine.find(CRC_FIELD).unwrap();
        let mut pre_crc = pristine.clone();
        pre_crc.replace_range(crc_at..crc_at + CRC_FIELD.len() + 16 + 2, "");
        std::fs::write(&path, &pre_crc).unwrap();
        assert!(store.load(&key).is_none());
        assert_eq!(store.quarantined_count(), 1, "foreign entries are not quarantined");
        assert_eq!(store.corrupt(), 2);
        assert!(path.exists(), "foreign entry stays in place for the overwrite");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_store_round_trips() {
        let store = MemStore::new();
        let key = RunKey::of(&spec());
        assert!(store.load(&key).is_none());
        assert!(store.is_empty());
        store.save(&key, &dense_stats()).unwrap();
        assert_eq!(store.len(), 1);
        let back = store.load(&key).unwrap();
        assert_eq!(format!("{back:?}"), format!("{:?}", dense_stats()));
    }

    #[test]
    fn base64_round_trips_and_rejects_damage() {
        for len in 0..70usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let text = base64_encode(&data);
            assert_eq!(text.len() % 4, 0);
            assert_eq!(base64_decode(&text).unwrap(), data, "len {len}");
        }
        assert!(base64_decode("AAA").is_err(), "length not a multiple of 4");
        assert!(base64_decode("A=AA").is_err(), "misplaced padding");
        assert!(base64_decode("AA!?").is_err(), "bytes outside the alphabet");
    }

    #[test]
    fn warm_payload_round_trips_and_verifies_identity() {
        let key = WarmKey::of(&spec(), 12_500);
        let bytes: Vec<u8> = (0..997u32).map(|i| (i % 251) as u8).collect();
        let payload = render_warm_payload(&key, &bytes);
        assert_eq!(parse_warm_payload(&payload, &key).unwrap(), bytes);

        // Foreign: any key axis moving (position, seed, trace length,
        // config, workload, sim version) must reject the payload.
        for other in [
            WarmKey { position: 12_501, ..key.clone() },
            WarmKey { seed: 1, ..key.clone() },
            WarmKey { trace_len: key.trace_len + 1, ..key.clone() },
            WarmKey { config_digest: key.config_digest ^ 1, ..key.clone() },
            WarmKey { workload: "mcf".into(), ..key.clone() },
            WarmKey { sim_version: key.sim_version + 1, ..key.clone() },
        ] {
            assert!(
                matches!(parse_warm_payload(&payload, &other), Err(PayloadError::Foreign(_))),
                "{other:?} must be foreign"
            );
        }

        // Corrupt: bit damage inside the base64 body is caught by the
        // checksum; truncation is unparsable JSON.
        let at = payload.find("\"data\":\"").unwrap() + "\"data\":\"".len() + 3;
        let mut tampered = payload.clone().into_bytes();
        tampered[at] = if tampered[at] == b'A' { b'B' } else { b'A' };
        assert!(matches!(
            parse_warm_payload(&String::from_utf8(tampered).unwrap(), &key),
            Err(PayloadError::Corrupt(_))
        ));
        assert!(matches!(
            parse_warm_payload(&payload[..payload.len() / 2], &key),
            Err(PayloadError::Corrupt(_))
        ));
        // A result payload under a warm key is foreign (wrong schema).
        let result = render_result_payload(&RunKey::of(&spec()), &dense_stats());
        assert!(matches!(parse_warm_payload(&result, &key), Err(PayloadError::Foreign(_))));
    }

    #[test]
    fn warm_key_stems_are_wire_safe_and_distinct() {
        let a = WarmKey::of(&spec(), 0);
        let b = WarmKey::of(&spec(), 6_250);
        assert_ne!(a.digest64(), b.digest64(), "position must change the digest");
        assert_ne!(a.file_stem(), b.file_stem());
        for key in [&a, &b] {
            let stem = key.file_stem();
            assert!(stem.starts_with(WARM_STEM_PREFIX), "{stem}");
            assert!(stem.len() <= 512, "daemon wire keys are capped at 512 chars");
            assert!(
                stem.chars().all(|c| c.is_ascii_alphanumeric() || "_-".contains(c)),
                "{stem}"
            );
        }
        // A warm stem never collides with any result stem's shape: the
        // prefix is reserved (no Table 3 workload is named `warm`).
        assert!(!RunKey::of(&spec()).file_stem().starts_with(WARM_STEM_PREFIX));
    }

    #[test]
    fn mem_store_keeps_checkpoints_out_of_len() {
        let store = MemStore::new();
        let key = WarmKey::of(&spec(), 5_000);
        assert!(store.load_warm(&key).is_none());
        store.save_warm(&key, b"snapshot bytes").unwrap();
        assert_eq!(store.load_warm(&key).as_deref(), Some(&b"snapshot bytes"[..]));
        assert_eq!(store.len(), 0, "checkpoints are not results");
    }

    #[test]
    fn dir_store_warm_round_trip_quarantines_damage_and_skips_len() {
        let dir = std::env::temp_dir().join(format!(
            "eole-warm-store-test-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let store = DirStore::open(&dir).unwrap();
        let key = WarmKey::of(&spec(), 10_000);
        let bytes: Vec<u8> = (0..4_096u32).map(|i| (i % 253) as u8).collect();
        store.save_warm(&key, &bytes).unwrap();
        assert_eq!(store.load_warm(&key).as_deref(), Some(bytes.as_slice()));
        assert_eq!(store.len(), 0, "checkpoint files never count as results");
        store.save(&RunKey::of(&spec()), &dense_stats()).unwrap();
        assert_eq!(store.len(), 1, "results still count");

        // Damage the checkpoint: the load must miss, quarantine the
        // file, and a fresh save must self-heal.
        let path = dir.join(format!("{}.json", key.file_stem()));
        let mut raw = std::fs::read(&path).unwrap();
        let at = raw.len() / 2;
        raw[at] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        assert!(store.load_warm(&key).is_none(), "damaged checkpoint must miss");
        assert!(path.with_extension("quarantined").exists());
        assert_eq!(store.quarantined_count(), 1);
        store.save_warm(&key, &bytes).unwrap();
        assert_eq!(store.load_warm(&key).as_deref(), Some(bytes.as_slice()));

        std::fs::remove_dir_all(&dir).ok();
    }
}
