//! [`RemoteStore`]: the networked [`ResultStore`] — an adapter over
//! `eole-store-service`'s [`StoreClient`] that lets an [`Executor`]
//! share one result cache with every other session talking to the same
//! `eole-stored` daemon (`experiments --store tcp://HOST:PORT`).
//!
//! Two behaviors distinguish it from [`DirStore`](crate::store::DirStore):
//!
//! * **Single-flight.** A [`RemoteStore::load`] miss on a cold key means
//!   this client was granted the key's *lease*: exactly one client
//!   simulates while every concurrent requester waits (server-side, on
//!   the same `Get`) for the lease holder's `save`. Two sessions racing
//!   on a cold key therefore trigger exactly one simulation. If the
//!   simulation fails, the executor calls [`RemoteStore::abandon`] so
//!   waiters are woken instead of idling out the lease TTL.
//! * **Graceful degradation.** The first unrecoverable transport failure
//!   (after the client's bounded retries) flips the store into degraded
//!   mode: every subsequent `load` answers `None` (simulate locally) and
//!   every `save` is dropped and counted. A dying daemon costs cache
//!   efficiency, never correctness — the run completes with the same
//!   statistics it would have produced with no store at all.
//!
//! [`Executor`]: crate::exec::Executor

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use eole_core::stats::SimStats;
use eole_store_service::{ClientConfig, GetOutcome, StoreClient, StoreError};

use crate::faults;
use crate::store::{
    parse_result_payload, parse_warm_payload, render_result_payload, render_warm_payload,
    PayloadError, ResultStore, RunKey, WarmKey,
};

/// How long one server-held `Get` may park before the client re-polls
/// (bounds how stale a dropped-waiter diagnosis can get; the server
/// wakes waiters immediately on publish, so this is a ceiling, not a
/// latency).
const WAIT_SLICE: Duration = Duration::from_secs(5);

/// Total time a `load` will wait on another session's lease before
/// giving up and simulating locally (a duplicated simulation, never a
/// wrong one — the later `save` republishes the identical payload).
const MAX_FLIGHT_WAIT: Duration = Duration::from_secs(180);

/// A [`ResultStore`] served by a remote `eole-stored` daemon.
#[derive(Debug)]
pub struct RemoteStore {
    client: StoreClient,
    degraded: AtomicBool,
    hits: AtomicUsize,
    corrupt: AtomicUsize,
    quarantined: AtomicUsize,
    dropped_saves: AtomicUsize,
    evicted_saves: AtomicUsize,
}

impl RemoteStore {
    /// Connects to the daemon at `addr` (`host:port`, no scheme) and
    /// verifies the protocol handshake.
    ///
    /// # Errors
    ///
    /// A typed [`StoreError`] when the daemon is unreachable or speaks a
    /// different protocol version. Connection *loss* after this point
    /// degrades gracefully; connection *failure* at startup is loud —
    /// the caller asked for a store that does not exist.
    pub fn connect(addr: &str) -> Result<RemoteStore, StoreError> {
        let client = StoreClient::connect(ClientConfig::new(addr))?;
        Ok(RemoteStore {
            client,
            degraded: AtomicBool::new(false),
            hits: AtomicUsize::new(0),
            corrupt: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            dropped_saves: AtomicUsize::new(0),
            evicted_saves: AtomicUsize::new(0),
        })
    }

    /// The daemon address this store talks to.
    pub fn addr(&self) -> &str {
        self.client.addr()
    }

    /// Loads served by the daemon.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Stored payloads that failed validation against their key (each
    /// was treated as a miss; the re-simulated result overwrites it).
    /// Superset of the *damaged* subset reported by
    /// [`ResultStore::quarantined`]: foreign-but-well-formed payloads
    /// count only here.
    pub fn corrupt(&self) -> usize {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Saves dropped because the store was degraded.
    pub fn dropped_saves(&self) -> usize {
        self.dropped_saves.load(Ordering::Relaxed)
    }

    /// Saves the daemon refused under its byte budget.
    pub fn evicted_saves(&self) -> usize {
        self.evicted_saves.load(Ordering::Relaxed)
    }

    fn degrade(&self, why: &StoreError) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            eprintln!(
                "[store degraded: {why}; continuing without the cache at {}]",
                self.client.addr()
            );
        }
    }
}

impl ResultStore for RemoteStore {
    /// `None` means *simulate it* — either the key is cold and this
    /// client now holds its single-flight lease, or the store is
    /// degraded/overdue and a local (possibly duplicated) simulation is
    /// the correct fallback.
    fn load(&self, key: &RunKey) -> Option<SimStats> {
        if self.degraded.load(Ordering::Relaxed) {
            return None;
        }
        let wire_key = key.file_stem();
        let start = Instant::now();
        loop {
            let slice = u32::try_from(WAIT_SLICE.as_millis()).unwrap_or(u32::MAX);
            match self.client.get(&wire_key, slice) {
                Ok(GetOutcome::Hit(mut payload)) => {
                    if let Some(salt) = faults::fire(faults::REMOTE_PAYLOAD_CORRUPT) {
                        faults::garble(&mut payload, salt.unwrap_or(0));
                    }
                    let text = String::from_utf8_lossy(&payload);
                    match parse_result_payload(&text, key) {
                        Ok(stats) => {
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Some(stats);
                        }
                        Err(why) => {
                            // A payload that does not verify against its
                            // key is a miss; the fresh result overwrites
                            // it at the daemon. Damaged payloads (crc
                            // failures — daemon-side bit rot or a mangled
                            // frame the transport could not catch) also
                            // count as quarantined so the report surfaces
                            // them distinctly.
                            eprintln!("[store: {why} for {wire_key}]");
                            if matches!(why, PayloadError::Corrupt(_)) {
                                self.quarantined.fetch_add(1, Ordering::Relaxed);
                            }
                            self.corrupt.fetch_add(1, Ordering::Relaxed);
                            return None;
                        }
                    }
                }
                Ok(GetOutcome::Lease) => return None,
                Ok(GetOutcome::Busy { retry_ms }) => {
                    if start.elapsed() >= MAX_FLIGHT_WAIT {
                        // The lease holder is slower than any plausible
                        // simulation; duplicate the work rather than hang.
                        return None;
                    }
                    std::thread::sleep(Duration::from_millis(u64::from(retry_ms.clamp(10, 1000))));
                }
                Err(e) => {
                    self.degrade(&e);
                    return None;
                }
            }
        }
    }

    /// Publishes the result (and releases this client's lease on `key`,
    /// waking any waiters). Degraded or budget-refused saves are counted
    /// and swallowed: the statistics are already in hand, so a lost
    /// cache write must never fail the run.
    fn save(&self, key: &RunKey, stats: &SimStats) -> Result<(), StoreError> {
        if self.degraded.load(Ordering::Relaxed) {
            self.dropped_saves.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let payload = render_result_payload(key, stats);
        match self.client.put(&key.file_stem(), payload.into_bytes()) {
            Ok(()) => Ok(()),
            Err(StoreError::Evicted) => {
                self.evicted_saves.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.degrade(&e);
                self.dropped_saves.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
    }

    /// Entry count at the daemon (0 when degraded or unanswerable — the
    /// store is a cache; an unknown size is an empty-enough answer).
    fn len(&self) -> usize {
        if self.degraded.load(Ordering::Relaxed) {
            return 0;
        }
        match self.client.stats() {
            Ok(s) => usize::try_from(s.entries).unwrap_or(usize::MAX),
            Err(_) => 0,
        }
    }

    fn abandon(&self, key: &RunKey) {
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        // Best-effort: a failed abandon leaves the lease to the TTL
        // backstop (or to our disconnect), never blocks the error path.
        let _ = self.client.abandon(&key.file_stem());
    }

    /// Warm checkpoints ride the same wire protocol as results — the
    /// daemon is payload-agnostic, and [`WarmKey::file_stem`] keeps the
    /// two namespaces disjoint (`warm__` prefix). `None` means *build
    /// it*: a cold key (this client now holds its lease — released by
    /// the producer's `save_warm`), a payload that fails validation, or
    /// a degraded store; the sweep rebuilds by functional replay in all
    /// three cases, so a failing daemon costs warmup time, never
    /// statistics.
    fn load_warm(&self, key: &WarmKey) -> Option<Vec<u8>> {
        if self.degraded.load(Ordering::Relaxed) {
            return None;
        }
        let wire_key = key.file_stem();
        let start = Instant::now();
        loop {
            let slice = u32::try_from(WAIT_SLICE.as_millis()).unwrap_or(u32::MAX);
            match self.client.get(&wire_key, slice) {
                Ok(GetOutcome::Hit(mut payload)) => {
                    if let Some(salt) = faults::fire(faults::REMOTE_PAYLOAD_CORRUPT) {
                        faults::garble(&mut payload, salt.unwrap_or(0));
                    }
                    let text = String::from_utf8_lossy(&payload);
                    match parse_warm_payload(&text, key) {
                        Ok(bytes) => return Some(bytes),
                        Err(why) => {
                            eprintln!("[store: {why} for {wire_key}]");
                            if matches!(why, PayloadError::Corrupt(_)) {
                                self.quarantined.fetch_add(1, Ordering::Relaxed);
                            }
                            self.corrupt.fetch_add(1, Ordering::Relaxed);
                            return None;
                        }
                    }
                }
                Ok(GetOutcome::Lease) => return None,
                Ok(GetOutcome::Busy { retry_ms }) => {
                    // Another session's sweep is building this very
                    // checkpoint; waiting beats duplicating the replay,
                    // bounded exactly like a result-key wait.
                    if start.elapsed() >= MAX_FLIGHT_WAIT {
                        return None;
                    }
                    std::thread::sleep(Duration::from_millis(u64::from(retry_ms.clamp(10, 1000))));
                }
                Err(e) => {
                    self.degrade(&e);
                    return None;
                }
            }
        }
    }

    /// Publishes a freshly built checkpoint (releasing this client's
    /// lease on its key). Like [`RemoteStore::save`], degraded and
    /// budget-refused writes are counted and swallowed — a checkpoint is
    /// pure warmup savings, so losing one must never fail the run.
    fn save_warm(&self, key: &WarmKey, bytes: &[u8]) -> Result<(), StoreError> {
        if self.degraded.load(Ordering::Relaxed) {
            self.dropped_saves.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let payload = render_warm_payload(key, bytes);
        match self.client.put(&key.file_stem(), payload.into_bytes()) {
            Ok(()) => Ok(()),
            Err(StoreError::Evicted) => {
                self.evicted_saves.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.degrade(&e);
                self.dropped_saves.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
    }

    fn abandon_warm(&self, key: &WarmKey) {
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let _ = self.client.abandon(&key.file_stem());
    }

    fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    fn observed_evictions(&self) -> u64 {
        if self.degraded.load(Ordering::Relaxed) {
            return 0;
        }
        self.client.stats().map(|s| s.evictions).unwrap_or(0)
    }

    fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed) as u64
    }
}
