//! The spec layer: *describing* runs, separately from executing them.
//!
//! A [`RunSpec`] is one point of the evaluation grid — (configuration,
//! workload, methodology, seed) — and a [`Grid`] enumerates the
//! cross-product the way the paper's §5–§6 evaluation is structured
//! (configurations × workloads, optionally × seeds for replication).
//! Execution is a separate concern: hand the grid to
//! [`crate::exec::Executor`].

use eole_core::config::CoreConfig;
use eole_workloads::{all_workloads, workload_by_name, Workload};

use crate::Runner;

/// One fully-described simulation run: a single cell of the evaluation
/// grid. Value type — building a spec performs no work.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Core configuration to simulate.
    pub config: CoreConfig,
    /// Workload whose trace drives the run.
    pub workload: Workload,
    /// Warmup/measure methodology.
    pub runner: Runner,
    /// Replication seed; `0` means "the paper's seeds, unperturbed".
    pub seed: u64,
}

impl RunSpec {
    /// The trace-cache key: runs agreeing on workload and trace length
    /// share one prepared trace regardless of configuration. Delegates
    /// to the single key definition the [`crate::TraceCache`] uses.
    /// Borrowed (`&'static str` workload name) — building a key costs no
    /// allocation, so cache probes stay off the heap.
    pub fn trace_key(&self) -> crate::exec::TraceKey {
        crate::exec::trace_key(&self.workload, &self.runner)
    }

    /// The canonical run identity (configuration digest + workload +
    /// methodology + seed + simulator version) — what the
    /// [`crate::store::ResultStore`] keys on.
    pub fn run_key(&self) -> crate::store::RunKey {
        crate::store::RunKey::of(self)
    }

    /// The configuration with this spec's seed mixed into the stochastic
    /// components (TAGE allocation, FPC counters). Seed `0` leaves the
    /// preset seeds untouched so single-seed grids reproduce the paper
    /// tables bit-for-bit.
    pub fn effective_config(&self) -> CoreConfig {
        let mut c = self.config.clone();
        if self.seed != 0 {
            let mix = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            c.branch_seed ^= mix;
            if let Some(vp) = c.vp.as_mut() {
                vp.seed ^= mix;
            }
        }
        c
    }

    /// A short human label (`"EOLE_4_64/h264"`, with `#seed` when
    /// replicated).
    pub fn label(&self) -> String {
        if self.seed == 0 {
            format!("{}/{}", self.config.name, self.workload.name)
        } else {
            format!("{}/{}#{}", self.config.name, self.workload.name, self.seed)
        }
    }
}

/// Builder for the configurations × workloads × seeds cross-product.
///
/// Enumeration order is fixed and documented: **workload-major** (Table 3
/// suite order), then configuration (insertion order), then seed — so all
/// runs sharing a prepared trace are adjacent, and per-workload report
/// rows read straight out of the result vector.
///
/// ```
/// use eole_bench::{Grid, Runner};
/// use eole_core::config::CoreConfig;
///
/// let grid = Grid::new()
///     .runner(Runner::quick())
///     .configs([CoreConfig::baseline_vp_6_64(), CoreConfig::eole_4_64()])
///     .workload_names(&["gzip", "namd"]);
/// assert_eq!(grid.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Grid {
    configs: Vec<CoreConfig>,
    workloads: Vec<Workload>,
    seeds: Vec<u64>,
    runner: Runner,
}

impl Default for Grid {
    fn default() -> Self {
        Self::new()
    }
}

impl Grid {
    /// An empty grid with the default [`Runner`] and the single
    /// unperturbed seed `0`.
    pub fn new() -> Self {
        Grid {
            configs: Vec::new(),
            workloads: Vec::new(),
            seeds: vec![0],
            runner: Runner::default(),
        }
    }

    /// Sets the warmup/measure methodology for every run.
    #[must_use]
    pub fn runner(mut self, runner: Runner) -> Self {
        self.runner = runner;
        self
    }

    /// Appends one configuration.
    #[must_use]
    pub fn config(mut self, config: CoreConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Appends configurations in order.
    #[must_use]
    pub fn configs(mut self, configs: impl IntoIterator<Item = CoreConfig>) -> Self {
        self.configs.extend(configs);
        self
    }

    /// Appends one workload.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Appends workloads in order.
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Appends registry workloads by name.
    ///
    /// # Panics
    ///
    /// Panics on a name missing from the Table 3 registry — a harness
    /// authoring error.
    #[must_use]
    pub fn workload_names(mut self, names: &[&str]) -> Self {
        for name in names {
            let w = workload_by_name(name)
                .unwrap_or_else(|| panic!("unknown workload {name} (not in Table 3)")); // lint:allow(error-typing) documented `# Panics`: unknown registry name is a harness authoring error
            self.workloads.push(w);
        }
        self
    }

    /// Appends the full 19-workload Table 3 suite.
    #[must_use]
    pub fn all_workloads(mut self) -> Self {
        self.workloads.extend(all_workloads());
        self
    }

    /// Replaces the seed list (replication axis). An empty list is
    /// normalized back to the single unperturbed seed.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        if self.seeds.is_empty() {
            self.seeds.push(0);
        }
        self
    }

    /// The methodology shared by every run.
    pub fn runner_spec(&self) -> Runner {
        self.runner
    }

    /// Configurations, in insertion order.
    pub fn config_list(&self) -> &[CoreConfig] {
        &self.configs
    }

    /// Workloads, in insertion order.
    pub fn workload_list(&self) -> &[Workload] {
        &self.workloads
    }

    /// Total number of runs (the cross-product size).
    pub fn len(&self) -> usize {
        self.configs.len() * self.workloads.len() * self.seeds.len()
    }

    /// True when the grid enumerates no runs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the cross-product: for each workload, for each
    /// configuration, for each seed.
    pub fn specs(&self) -> Vec<RunSpec> {
        let mut out = Vec::with_capacity(self.len());
        for w in &self.workloads {
            for c in &self.configs {
                for &seed in &self.seeds {
                    out.push(RunSpec {
                        config: c.clone(),
                        workload: w.clone(),
                        runner: self.runner,
                        seed,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumerates_the_cross_product_workload_major() {
        let grid = Grid::new()
            .runner(Runner::quick())
            .configs([CoreConfig::baseline_6_64(), CoreConfig::eole_4_64()])
            .workload_names(&["gzip", "namd", "mcf"])
            .seeds([0, 1]);
        assert_eq!(grid.len(), 2 * 3 * 2);
        let specs = grid.specs();
        assert_eq!(specs.len(), 12);
        // Workload-major, then config, then seed.
        let key: Vec<(String, String, u64)> = specs
            .iter()
            .map(|s| (s.workload.name.to_string(), s.config.name.clone(), s.seed))
            .collect();
        assert_eq!(key[0], ("gzip".into(), "Baseline_6_64".into(), 0));
        assert_eq!(key[1], ("gzip".into(), "Baseline_6_64".into(), 1));
        assert_eq!(key[2], ("gzip".into(), "EOLE_4_64".into(), 0));
        assert_eq!(key[4], ("namd".into(), "Baseline_6_64".into(), 0));
        assert_eq!(key[11], ("mcf".into(), "EOLE_4_64".into(), 1));
    }

    #[test]
    fn empty_axes_make_an_empty_grid() {
        let grid = Grid::new().workload_names(&["gzip"]);
        assert!(grid.is_empty(), "no configs -> no runs");
        assert_eq!(Grid::new().config(CoreConfig::baseline_6_64()).len(), 0);
    }

    #[test]
    fn default_seed_axis_is_the_unperturbed_seed() {
        let grid = Grid::new()
            .config(CoreConfig::baseline_6_64())
            .workload_names(&["gzip"]);
        let specs = grid.specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].seed, 0);
        // Seed 0 leaves preset seeds untouched.
        let eff = specs[0].effective_config();
        assert_eq!(eff.branch_seed, CoreConfig::baseline_6_64().branch_seed);
        // Empty seed lists normalize back to [0].
        assert_eq!(Grid::new().seeds([]).config(CoreConfig::baseline_6_64()).workload_names(&["gzip"]).len(), 1);
    }

    #[test]
    fn nonzero_seeds_perturb_the_stochastic_components() {
        let grid = Grid::new()
            .config(CoreConfig::baseline_vp_6_64())
            .workload_names(&["gzip"])
            .seeds([7]);
        let eff = grid.specs()[0].effective_config();
        let base = CoreConfig::baseline_vp_6_64();
        assert_ne!(eff.branch_seed, base.branch_seed);
        assert_ne!(eff.vp.unwrap().seed, base.vp.unwrap().seed);
        // Only seeds change — the microarchitecture does not.
        assert_eq!(eff.issue_width, base.issue_width);
    }

    #[test]
    fn trace_key_ignores_configuration() {
        let grid = Grid::new()
            .configs([CoreConfig::baseline_6_64(), CoreConfig::eole_4_64()])
            .workload_names(&["gzip"]);
        let specs = grid.specs();
        assert_eq!(specs[0].trace_key(), specs[1].trace_key());
        assert_eq!(specs[0].label(), "Baseline_6_64/gzip");
    }
}
