//! Deterministic fault injection — the bench-side face.
//!
//! The engine lives in [`eole_store_service::faults`] (the dependency
//! arrow points `eole-bench → eole-store-service`, and the daemon needs
//! the same hooks), so this module re-exports it wholesale: one
//! process-global plan covers every layer — `DirStore` IO, the
//! executor's workers, the remote client's frames, and (in-process
//! servers) the daemon itself. See that module for the spec grammar and
//! the site catalog; EXPERIMENTS.md ("Fault injection") documents the
//! user-facing semantics.
//!
//! Install via `experiments --faults SPEC`, the `EOLE_FAULTS`
//! environment variable ([`install_from_env`]), or [`install_spec`]
//! programmatically. All hooks sit on cold paths (per-run, per-frame,
//! per-store-access); a run without an installed plan pays one relaxed
//! atomic load per hook, which the zero-alloc and throughput gates
//! never see.

pub use eole_store_service::faults::{
    active, current_summary, fire, fires_at, garble, install, install_from_env, install_guarded,
    install_spec, panic_if_fired, sleep_if_fired, Clause, FaultPlan, InstallGuard, Trigger,
    CLIENT_DELAY, CLIENT_RECV_CORRUPT, CLIENT_RECV_TRUNCATE, CLIENT_SEND_IO, DIR_LOAD_CORRUPT,
    DIR_SAVE_IO, KNOWN_SITES, REMOTE_PAYLOAD_CORRUPT, SERVER_LEASE_EXPIRE, SERVER_RECV_CORRUPT,
    SIM_DELAY, SIM_PANIC,
};
