//! # eole-store-service
//!
//! `eole-stored`: a long-running result-store daemon plus the wire
//! protocol and client it speaks — the fleet-scale face of the bench
//! harness's content-addressed result cache (`eole-bench`'s `DirStore`).
//!
//! The service is deliberately *generic*: it stores opaque payload bytes
//! under filesystem-safe string keys, one `<key>.json` file per entry, in
//! exactly the layout `DirStore` uses — a directory served by
//! `eole-stored` can be opened directly by `--store DIR` and vice versa.
//! Interpreting payloads (the `eole-result/v2` schema, key verification)
//! stays client-side in `eole-bench::RemoteStore`, so the daemon never
//! needs to understand simulator statistics and the dependency arrow
//! points one way: `eole-bench → eole-store-service → std`.
//!
//! Three things make the shared cache fleet-worthy (see `server`):
//!
//! * **Single-flight dedup** — a `Get` on a cold key grants the
//!   connection a *lease*; concurrent `Get`s for the same key wait for
//!   the lease holder's `Put` instead of simulating redundantly. Two
//!   clients racing on a cold key trigger exactly one simulation.
//! * **Eviction** — optional byte/entry budgets enforced by an
//!   LRU-by-access sweep that never evicts keys under an active lease or
//!   with waiters queued.
//! * **Robust clients** — [`client::StoreClient`] adds connect/read
//!   timeouts, bounded retry with exponential backoff, and typed
//!   [`StoreError`]s so callers can degrade gracefully (simulate without
//!   the cache) instead of panicking when the daemon disappears.

#![forbid(unsafe_code)]

pub mod client;
pub mod faults;
pub mod proto;
pub mod server;

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Poisoning-proof mutex acquisition — the only sanctioned way to take a
/// lock in this crate (`eole-lint`'s `lock-hygiene` rule enforces it).
/// A panic isolated to one connection or one run must not wedge every
/// later acquisition behind a `PoisonError`; the protected state is
/// always left consistent because every critical section is
/// short, allocation-only bookkeeping.
pub fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub use client::{ClientConfig, GetOutcome, StoreClient};
pub use faults::FaultPlan;
pub use proto::{ServiceStats, MAX_FRAME, PROTO_VERSION};
pub use server::{ServerConfig, ServerHandle, StoreServer};

/// Every way a store interaction can fail, as data. `eole-bench` surfaces
/// these through `RunError::Store`, so callers and tests match on the
/// failure *class* instead of grepping rendered strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Transport or filesystem failure (connection refused/reset, write
    /// error, rename failure).
    Io(String),
    /// A connect or read deadline passed.
    Timeout(String),
    /// The peer violated `eole-store/v2`: bad tag, truncated or oversized
    /// frame, version mismatch, trailing bytes, invalid key.
    Protocol(String),
    /// A stored payload exists but failed validation against its key
    /// (detected client-side; treated as a miss and overwritten).
    Corrupt(String),
    /// The payload cannot be admitted (or was dropped) under the store's
    /// configured budget.
    Evicted,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store i/o: {msg}"),
            StoreError::Timeout(msg) => write!(f, "store timeout: {msg}"),
            StoreError::Protocol(msg) => write!(f, "store protocol: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "store payload corrupt: {msg}"),
            StoreError::Evicted => write!(f, "store payload not admissible under the eviction budget"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_error_display_names_the_class() {
        assert!(StoreError::Io("x".into()).to_string().contains("i/o"));
        assert!(StoreError::Timeout("x".into()).to_string().contains("timeout"));
        assert!(StoreError::Protocol("x".into()).to_string().contains("protocol"));
        assert!(StoreError::Corrupt("x".into()).to_string().contains("corrupt"));
        assert!(StoreError::Evicted.to_string().contains("eviction budget"));
    }
}
