//! `eole-stored`: the networked result-store daemon.
//!
//! ```text
//! eole-stored --dir DIR [--addr HOST:PORT] [--max-bytes N] [--max-entries N]
//!             [--lease-ttl-secs N]
//! ```
//!
//! Serves the `eole-store/v2` protocol over `DIR` (one `<key>.json` per
//! entry — the same layout `experiments --store DIR` writes, so a warm
//! local store can be promoted to a shared one by pointing the daemon at
//! it). Clients connect via `experiments --store tcp://HOST:PORT`.
//!
//! Prints exactly one `listening on ADDR` line to stdout once bound (CI
//! and scripts wait on it; with `--addr ...:0` it carries the ephemeral
//! port), then serves until killed. Every state change is crash-safe
//! (temp + rename), so `kill -9` at any point leaves a valid store.

use eole_store_service::{faults, ServerConfig, StoreServer};

const USAGE: &str = "usage: eole-stored --dir DIR [--addr HOST:PORT] [--max-bytes N] \
[--max-entries N] [--lease-ttl-secs N] [--faults SPEC]
  --dir DIR           store directory (created if absent; DirStore-compatible layout)
  --addr HOST:PORT    listen address (default 127.0.0.1:7407; port 0 picks one)
  --max-bytes N       evict LRU entries once stored payload bytes exceed N
  --max-entries N     evict LRU entries once the entry count exceeds N
  --lease-ttl-secs N  single-flight lease backstop expiry (default 120)
  --faults SPEC       install a deterministic fault-injection plan (chaos
                      testing; also read from EOLE_FAULTS — see EXPERIMENTS.md)";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<String> = None;
    let mut addr = "127.0.0.1:7407".to_string();
    let mut max_bytes: Option<u64> = None;
    let mut max_entries: Option<usize> = None;
    let mut lease_ttl_secs = 120u64;
    let mut faults_spec: Option<String> = None;
    let take = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| fail(&format!("{flag} needs a value"))).clone()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => dir = Some(take(&args, &mut i, "--dir")),
            "--addr" => addr = take(&args, &mut i, "--addr"),
            "--max-bytes" => {
                max_bytes = Some(
                    take(&args, &mut i, "--max-bytes")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-bytes takes a number")),
                );
            }
            "--max-entries" => {
                max_entries = Some(
                    take(&args, &mut i, "--max-entries")
                        .parse()
                        .unwrap_or_else(|_| fail("--max-entries takes a number")),
                );
            }
            "--lease-ttl-secs" => {
                lease_ttl_secs = take(&args, &mut i, "--lease-ttl-secs")
                    .parse()
                    .unwrap_or_else(|_| fail("--lease-ttl-secs takes a number"));
            }
            "--faults" => faults_spec = Some(take(&args, &mut i, "--faults")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    let Some(dir) = dir else { fail("--dir is required") };
    match faults_spec {
        Some(spec) => faults::install_spec(&spec).unwrap_or_else(|e| fail(&e)),
        None => {
            faults::install_from_env().unwrap_or_else(|e| fail(&e));
        }
    }
    if let Some(summary) = faults::current_summary() {
        eprintln!("[eole-stored: FAULT INJECTION ACTIVE — {summary}]");
    }
    let mut config = ServerConfig::new(&dir);
    config.max_bytes = max_bytes;
    config.max_entries = max_entries;
    config.lease_ttl = std::time::Duration::from_secs(lease_ttl_secs);
    let server = StoreServer::bind(&addr, config).unwrap_or_else(|e| fail(&e.to_string()));
    eprintln!(
        "[eole-stored: dir {dir}, {} entries seeded, budgets {} bytes / {} entries, lease TTL {lease_ttl_secs}s]",
        server.entries(),
        max_bytes.map_or("unbounded".to_string(), |b| b.to_string()),
        max_entries.map_or("unbounded".to_string(), |n| n.to_string()),
    );
    use std::io::Write;
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    server.serve();
}
