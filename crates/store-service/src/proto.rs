//! The `eole-store/v2` wire protocol: length-prefixed frames over TCP,
//! hand-rolled binary (de)serialization (the workspace has no crates.io
//! access, so framing and encoding follow the same discipline as
//! `eole_stats::json` — small, explicit, fully tested).
//!
//! ## Framing
//!
//! Every message is one *frame*: a 4-byte big-endian body length followed
//! by the body. Bodies longer than [`MAX_FRAME`] are rejected before any
//! allocation — a malicious or corrupted peer cannot make either side
//! reserve gigabytes. The body is one tag byte plus the message's fields;
//! integers are big-endian, strings and byte blobs are `u32` length +
//! raw bytes. A decoder must consume the body *exactly* — trailing bytes
//! are a protocol error, so a frame can never smuggle a second message.
//!
//! ## Messages
//!
//! | Request                  | Response(s)                               |
//! |--------------------------|-------------------------------------------|
//! | `Ping { proto }`         | `Pong { proto }` (version handshake)      |
//! | `Get { key, wait_ms }`   | `Hit { payload }` · `Lease` · `Busy`      |
//! | `Put { key, payload }`   | `Ok` (publishes; wakes lease waiters)     |
//! | `Abandon { key }`        | `Ok` (releases a lease without publishing)|
//! | `Stats`                  | `Stats(ServiceStats)`                     |
//!
//! Any request may instead draw `Err { code, msg }`. The single-flight
//! contract lives in `Get`: a cold key *grants the connection a lease*
//! (`Lease` — "you simulate, then `Put`"); concurrent `Get`s for the same
//! key block server-side up to `wait_ms` and return `Hit` as soon as the
//! lease holder publishes, or `Busy { retry_ms }` so the client polls.

use std::io::{Read, Write};

use crate::StoreError;

/// Protocol identifier exchanged in the `Ping`/`Pong` handshake; servers
/// reject clients speaking anything else. v2 added `leases_expired` to
/// the `Stats` response (the lease-TTL reclaim counter).
pub const PROTO_VERSION: &str = "eole-store/v2";

/// Hard ceiling on one frame's body (16 MiB — result payloads are ~2 KiB,
/// so this is three orders of magnitude of headroom while still bounding
/// what a broken peer can make us allocate).
pub const MAX_FRAME: usize = 16 << 20;

/// Error code accompanying [`Response::Err`]: a generic/protocol failure.
pub const ERR_GENERIC: u8 = 0;
/// Error code accompanying [`Response::Err`]: the payload cannot be
/// admitted under the store's byte budget (maps to
/// [`StoreError::Evicted`] client-side).
pub const ERR_EVICTED: u8 = 1;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Version handshake; first request on every connection.
    Ping {
        /// The protocol the client speaks ([`PROTO_VERSION`]).
        proto: String,
    },
    /// Single-flight lookup of `key`.
    Get {
        /// Store key (the `RunKey` file stem on the bench side).
        key: String,
        /// How long the server may hold the response waiting for another
        /// connection's lease to publish (0 = answer immediately).
        wait_ms: u32,
    },
    /// Publishes `payload` under `key` (and releases any lease on it).
    Put {
        /// Store key.
        key: String,
        /// Opaque payload bytes (the service never interprets them).
        payload: Vec<u8>,
    },
    /// Releases this connection's lease on `key` without publishing —
    /// the lease holder failed to produce the payload.
    Abandon {
        /// Store key.
        key: String,
    },
    /// Service counters snapshot.
    Stats,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Handshake reply.
    Pong {
        /// The protocol the server speaks.
        proto: String,
    },
    /// The stored payload for the requested key.
    Hit {
        /// Opaque payload bytes as published.
        payload: Vec<u8>,
    },
    /// The key is cold and *this connection* now holds its single-flight
    /// lease: simulate, then `Put` (or `Abandon` on failure).
    Lease,
    /// Another connection holds the lease and it did not publish within
    /// the request's `wait_ms`; poll again after `retry_ms`.
    Busy {
        /// Suggested client-side delay before the next `Get`.
        retry_ms: u32,
    },
    /// The request succeeded with nothing to return (`Put`, `Abandon`).
    Ok,
    /// The request failed.
    Err {
        /// [`ERR_GENERIC`] or [`ERR_EVICTED`].
        code: u8,
        /// Human-readable cause.
        msg: String,
    },
    /// Service counters snapshot.
    Stats(ServiceStats),
}

/// Counters the service exposes over the wire (`Stats` request); the
/// bench layer surfaces `evictions` as the report header's
/// `evictions_observed`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Entries currently stored.
    pub entries: u64,
    /// Total stored payload bytes.
    pub bytes: u64,
    /// `Get`s served from the store.
    pub hits: u64,
    /// `Get`s that found no entry (each grants or queues on a lease).
    pub misses: u64,
    /// Payloads published.
    pub puts: u64,
    /// Entries evicted by the byte/entry budget sweep.
    pub evictions: u64,
    /// Single-flight leases granted.
    pub leases_granted: u64,
    /// `Get`s that waited on another connection's lease (served `Hit`
    /// after a wait or `Busy` on expiry).
    pub lease_waits: u64,
    /// Leases reclaimed because the holder exceeded the TTL without
    /// publishing or abandoning (crashed/wedged holder; the key is
    /// re-granted to the next requester).
    pub leases_expired: u64,
}

// ---- frame I/O -----------------------------------------------------------

fn io_error(context: &str, e: &std::io::Error) -> StoreError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            StoreError::Timeout(format!("{context}: {e}"))
        }
        _ => StoreError::Io(format!("{context}: {e}")),
    }
}

/// Writes one frame (length prefix + body).
///
/// # Errors
///
/// [`StoreError::Protocol`] if `body` exceeds [`MAX_FRAME`];
/// [`StoreError::Io`]/[`StoreError::Timeout`] on transport failure.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), StoreError> {
    if body.len() > MAX_FRAME {
        return Err(StoreError::Protocol(format!(
            "outgoing frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
            body.len()
        )));
    }
    let len = (body.len() as u32).to_be_bytes();
    w.write_all(&len).map_err(|e| io_error("write frame length", &e))?;
    w.write_all(body).map_err(|e| io_error("write frame body", &e))?;
    w.flush().map_err(|e| io_error("flush frame", &e))
}

/// Reads one frame body.
///
/// # Errors
///
/// [`StoreError::Protocol`] on an oversized length prefix;
/// [`StoreError::Io`] on EOF (including mid-frame truncation) and
/// [`StoreError::Timeout`] when the peer's read deadline passes.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, StoreError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).map_err(|e| io_error("read frame length", &e))?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(StoreError::Protocol(format!(
            "incoming frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| io_error("read frame body", &e))?;
    Ok(body)
}

// ---- body encoding -------------------------------------------------------

const TAG_PING: u8 = 0x01;
const TAG_GET: u8 = 0x02;
const TAG_PUT: u8 = 0x03;
const TAG_ABANDON: u8 = 0x04;
const TAG_STATS: u8 = 0x05;

const TAG_PONG: u8 = 0x81;
const TAG_HIT: u8 = 0x82;
const TAG_LEASE: u8 = 0x83;
const TAG_BUSY: u8 = 0x84;
const TAG_OK: u8 = 0x85;
const TAG_ERR: u8 = 0x86;
const TAG_STATS_RESP: u8 = 0x87;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Sequential reader over a frame body; every accessor fails with a
/// [`StoreError::Protocol`] instead of panicking on truncated input.
struct BodyReader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(body: &'a [u8]) -> Self {
        BodyReader { body, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.body.len()).ok_or_else(|| {
            StoreError::Protocol(format!("truncated frame: {what} needs {n} more bytes"))
        })?;
        let s = &self.body[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        Ok(u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn bytes(&mut self, what: &str) -> Result<Vec<u8>, StoreError> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    fn str(&mut self, what: &str) -> Result<String, StoreError> {
        String::from_utf8(self.bytes(what)?)
            .map_err(|_| StoreError::Protocol(format!("{what} is not valid UTF-8")))
    }

    fn finish(self, what: &str) -> Result<(), StoreError> {
        if self.pos != self.body.len() {
            return Err(StoreError::Protocol(format!(
                "{what}: {} trailing byte(s) after the message",
                self.body.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Encodes a request into a frame body.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match req {
        Request::Ping { proto } => {
            out.push(TAG_PING);
            put_str(&mut out, proto);
        }
        Request::Get { key, wait_ms } => {
            out.push(TAG_GET);
            put_str(&mut out, key);
            put_u32(&mut out, *wait_ms);
        }
        Request::Put { key, payload } => {
            out.push(TAG_PUT);
            put_str(&mut out, key);
            put_bytes(&mut out, payload);
        }
        Request::Abandon { key } => {
            out.push(TAG_ABANDON);
            put_str(&mut out, key);
        }
        Request::Stats => out.push(TAG_STATS),
    }
    out
}

/// Decodes a request frame body.
///
/// # Errors
///
/// [`StoreError::Protocol`] on an unknown tag, truncated fields, invalid
/// UTF-8, or trailing bytes.
pub fn decode_request(body: &[u8]) -> Result<Request, StoreError> {
    let mut r = BodyReader::new(body);
    let req = match r.u8("request tag")? {
        TAG_PING => Request::Ping { proto: r.str("ping proto")? },
        TAG_GET => Request::Get { key: r.str("get key")?, wait_ms: r.u32("get wait_ms")? },
        TAG_PUT => Request::Put { key: r.str("put key")?, payload: r.bytes("put payload")? },
        TAG_ABANDON => Request::Abandon { key: r.str("abandon key")? },
        TAG_STATS => Request::Stats,
        tag => return Err(StoreError::Protocol(format!("unknown request tag 0x{tag:02x}"))),
    };
    r.finish("request")?;
    Ok(req)
}

/// Encodes a response into a frame body.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match resp {
        Response::Pong { proto } => {
            out.push(TAG_PONG);
            put_str(&mut out, proto);
        }
        Response::Hit { payload } => {
            out.push(TAG_HIT);
            put_bytes(&mut out, payload);
        }
        Response::Lease => out.push(TAG_LEASE),
        Response::Busy { retry_ms } => {
            out.push(TAG_BUSY);
            put_u32(&mut out, *retry_ms);
        }
        Response::Ok => out.push(TAG_OK),
        Response::Err { code, msg } => {
            out.push(TAG_ERR);
            out.push(*code);
            put_str(&mut out, msg);
        }
        Response::Stats(s) => {
            out.push(TAG_STATS_RESP);
            for v in [
                s.entries,
                s.bytes,
                s.hits,
                s.misses,
                s.puts,
                s.evictions,
                s.leases_granted,
                s.lease_waits,
                s.leases_expired,
            ] {
                put_u64(&mut out, v);
            }
        }
    }
    out
}

/// Decodes a response frame body.
///
/// # Errors
///
/// As [`decode_request`].
pub fn decode_response(body: &[u8]) -> Result<Response, StoreError> {
    let mut r = BodyReader::new(body);
    let resp = match r.u8("response tag")? {
        TAG_PONG => Response::Pong { proto: r.str("pong proto")? },
        TAG_HIT => Response::Hit { payload: r.bytes("hit payload")? },
        TAG_LEASE => Response::Lease,
        TAG_BUSY => Response::Busy { retry_ms: r.u32("busy retry_ms")? },
        TAG_OK => Response::Ok,
        TAG_ERR => Response::Err { code: r.u8("err code")?, msg: r.str("err msg")? },
        TAG_STATS_RESP => Response::Stats(ServiceStats {
            entries: r.u64("stats entries")?,
            bytes: r.u64("stats bytes")?,
            hits: r.u64("stats hits")?,
            misses: r.u64("stats misses")?,
            puts: r.u64("stats puts")?,
            evictions: r.u64("stats evictions")?,
            leases_granted: r.u64("stats leases_granted")?,
            lease_waits: r.u64("stats lease_waits")?,
            leases_expired: r.u64("stats leases_expired")?,
        }),
        tag => return Err(StoreError::Protocol(format!("unknown response tag 0x{tag:02x}"))),
    };
    r.finish("response")?;
    Ok(resp)
}

/// True iff `key` is safe to use verbatim as a store file stem: non-empty,
/// bounded, and drawn from the same alphabet `RunKey::file_stem` emits
/// (ASCII alphanumerics, `_`, `-`). The server enforces this on every
/// keyed request, so a hostile key can never escape the store directory.
pub fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key.len() <= 512
        && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_round_trips() {
        let requests = [
            Request::Ping { proto: PROTO_VERSION.to_string() },
            Request::Get { key: "a-key_0".into(), wait_ms: 250 },
            Request::Put { key: "k".into(), payload: vec![0, 1, 2, 255] },
            Request::Abandon { key: "k".into() },
            Request::Stats,
        ];
        for req in &requests {
            assert_eq!(&decode_request(&encode_request(req)).unwrap(), req);
        }
        let responses = [
            Response::Pong { proto: PROTO_VERSION.to_string() },
            Response::Hit { payload: b"{}".to_vec() },
            Response::Lease,
            Response::Busy { retry_ms: 50 },
            Response::Ok,
            Response::Err { code: ERR_EVICTED, msg: "too big".into() },
            Response::Stats(ServiceStats {
                entries: 1,
                bytes: 2,
                hits: 3,
                misses: 4,
                puts: 5,
                evictions: 6,
                leases_granted: 7,
                lease_waits: 8,
                leases_expired: 9,
            }),
        ];
        for resp in &responses {
            assert_eq!(&decode_response(&encode_response(resp)).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_bodies_are_protocol_errors_not_panics() {
        let full = encode_request(&Request::Put { key: "abc".into(), payload: vec![1, 2, 3] });
        for cut in 0..full.len() {
            match decode_request(&full[..cut]) {
                Err(StoreError::Protocol(_)) => {}
                other => panic!("cut at {cut}: expected a protocol error, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = encode_request(&Request::Stats);
        body.push(0);
        assert!(matches!(decode_request(&body), Err(StoreError::Protocol(_))));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(matches!(decode_request(&[0x7f]), Err(StoreError::Protocol(_))));
        assert!(matches!(decode_response(&[0x10]), Err(StoreError::Protocol(_))));
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        // Write side: refuse to emit.
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        assert!(matches!(write_frame(&mut sink, &huge), Err(StoreError::Protocol(_))));
        // Read side: refuse the length prefix before allocating.
        let mut wire = Vec::new();
        wire.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
        let mut r = wire.as_slice();
        assert!(matches!(read_frame(&mut r), Err(StoreError::Protocol(_))));
    }

    #[test]
    fn frames_round_trip_over_a_byte_pipe() {
        let body = encode_request(&Request::Get { key: "k".into(), wait_ms: 7 });
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), body);
        assert!(r.is_empty(), "frame consumed exactly");
    }

    #[test]
    fn truncated_frame_on_the_wire_is_an_io_error() {
        let body = encode_request(&Request::Stats);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        wire.pop();
        let mut r = wire.as_slice();
        assert!(matches!(read_frame(&mut r), Err(StoreError::Io(_))));
    }

    #[test]
    fn key_validation_blocks_path_escapes() {
        assert!(valid_key("gzip__EOLE_4_64__v1_w10000_m25000_s0__0123-abcd"));
        assert!(!valid_key(""));
        assert!(!valid_key("../escape"));
        assert!(!valid_key("a/b"));
        assert!(!valid_key("a.json"));
        assert!(!valid_key(&"x".repeat(513)));
    }
}
