//! Seeded, deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] schedules named faults at *cold-path* boundaries —
//! store IO, protocol frames, lease bookkeeping, worker scheduling —
//! each fired at a deterministic (site, occurrence-index) pair so a
//! chaos run is exactly reproducible from its spec string. The plan is
//! installed process-globally (`--faults SPEC` / `EOLE_FAULTS`); every
//! hook compiles down to one relaxed atomic load when no plan is
//! installed, and no hook sits inside the per-µop hot loop.
//!
//! ## Spec grammar
//!
//! A spec is a comma-separated list of clauses:
//!
//! ```text
//! seed=N                 seed for ~RATE clauses (default 0)
//! SITE@INDEX[:ARG]       fire at the exact 0-based occurrence INDEX
//! SITE%EVERY[:ARG]       fire at every occurrence divisible by EVERY
//! SITE~RATE[:ARG]        fire with probability RATE in [0,1], decided
//!                        by hash(seed, site, occurrence) — the same
//!                        seed replays the identical fault sequence
//! ```
//!
//! `ARG` is a site-specific integer (delay sites read it as
//! milliseconds, default 25). Example:
//! `seed=7,sim.panic@3,client.recv.corrupt~0.05,dir.save.io%10`.
//!
//! ## Occurrence indices
//!
//! Stream sites ([`fire`]) count every pass through the site with a
//! process-global per-site counter, so `SITE@K` means "the K-th time
//! this process reaches the site". Under multiple worker threads the
//! *mapping* from occurrence to run is scheduling-dependent (the fault
//! still fires exactly once); run-scoped sites ([`fires_at`], e.g.
//! `sim.panic`) are instead keyed by the run's stable grid index, so
//! `sim.panic@3` targets the same grid cell at any thread count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

// ---- site catalog --------------------------------------------------------

/// `DirStore::load`: the entry's text is garbled before parsing, so it
/// classifies as corrupt and is quarantined.
pub const DIR_LOAD_CORRUPT: &str = "dir.load.corrupt";
/// `DirStore::save`: the write fails with an injected IO error.
pub const DIR_SAVE_IO: &str = "dir.save.io";
/// Executor worker: the simulation panics (keyed by grid index).
pub const SIM_PANIC: &str = "sim.panic";
/// Executor worker: the simulation stalls for ARG ms (keyed by grid
/// index) — exercises the per-run deadline watchdog.
pub const SIM_DELAY: &str = "sim.delay";
/// `StoreClient`: sending the request frame fails with an IO error
/// (retried like a real transport fault).
pub const CLIENT_SEND_IO: &str = "client.send.io";
/// `StoreClient`: the response frame is garbled after the read.
pub const CLIENT_RECV_CORRUPT: &str = "client.recv.corrupt";
/// `StoreClient`: the response frame is truncated after the read.
pub const CLIENT_RECV_TRUNCATE: &str = "client.recv.truncate";
/// `StoreClient`: the request is delayed ARG ms before sending.
pub const CLIENT_DELAY: &str = "client.delay";
/// Server connection loop: the request frame is garbled after the read.
pub const SERVER_RECV_CORRUPT: &str = "server.recv.corrupt";
/// Server single-flight state: the next lease-expiry check treats the
/// lease as already past its TTL (forces a reclaim).
pub const SERVER_LEASE_EXPIRE: &str = "server.lease.expire";
/// `RemoteStore::load`: a `Hit` payload is garbled before verification.
pub const REMOTE_PAYLOAD_CORRUPT: &str = "remote.payload.corrupt";

/// Every site a clause may name; parsing rejects anything else so a
/// typo'd chaos spec fails loudly instead of silently injecting nothing.
pub const KNOWN_SITES: &[&str] = &[
    DIR_LOAD_CORRUPT,
    DIR_SAVE_IO,
    SIM_PANIC,
    SIM_DELAY,
    CLIENT_SEND_IO,
    CLIENT_RECV_CORRUPT,
    CLIENT_RECV_TRUNCATE,
    CLIENT_DELAY,
    SERVER_RECV_CORRUPT,
    SERVER_LEASE_EXPIRE,
    REMOTE_PAYLOAD_CORRUPT,
];

// ---- plan ----------------------------------------------------------------

/// When a clause fires relative to its site's occurrence index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Exactly at this 0-based occurrence.
    At(u64),
    /// At every occurrence divisible by the period (period ≥ 1).
    Every(u64),
    /// Seeded Bernoulli per occurrence: fires iff
    /// `fnv(seed, site, occurrence) < rate · 2⁶⁴`.
    Rate(f64),
}

/// One `SITE<trigger>[:ARG]` clause of a fault plan.
#[derive(Clone, Debug, PartialEq)]
pub struct Clause {
    /// One of [`KNOWN_SITES`].
    pub site: String,
    /// When the clause fires.
    pub trigger: Trigger,
    /// Site-specific argument (`:ARG` suffix).
    pub arg: Option<u64>,
}

/// A parsed, installable fault schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for `~RATE` clauses.
    pub seed: u64,
    /// All clauses, in spec order.
    pub clauses: Vec<Clause>,
}

impl FaultPlan {
    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending clause: unknown
    /// site, malformed trigger, rate outside `[0, 1]`, zero period.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for raw in spec.split(',') {
            let clause = raw.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("seed=") {
                plan.seed =
                    v.parse().map_err(|_| format!("fault spec: bad seed in {clause:?}"))?;
                continue;
            }
            let sep = clause
                .find(['@', '%', '~'])
                .ok_or_else(|| format!("fault spec: {clause:?} has no @/%/~ trigger"))?;
            let (site, rest) = clause.split_at(sep);
            if !KNOWN_SITES.contains(&site) {
                return Err(format!(
                    "fault spec: unknown site {site:?} (known: {})",
                    KNOWN_SITES.join(", ")
                ));
            }
            let (kind, rest) = rest.split_at(1);
            let (value, arg) = match rest.split_once(':') {
                Some((v, a)) => {
                    let arg =
                        a.parse().map_err(|_| format!("fault spec: bad arg in {clause:?}"))?;
                    (v, Some(arg))
                }
                None => (rest, None),
            };
            let trigger = match kind {
                "@" => Trigger::At(
                    value.parse().map_err(|_| format!("fault spec: bad index in {clause:?}"))?,
                ),
                "%" => {
                    let period: u64 = value
                        .parse()
                        .map_err(|_| format!("fault spec: bad period in {clause:?}"))?;
                    if period == 0 {
                        return Err(format!("fault spec: zero period in {clause:?}"));
                    }
                    Trigger::Every(period)
                }
                _ => {
                    let rate: f64 = value
                        .parse()
                        .map_err(|_| format!("fault spec: bad rate in {clause:?}"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("fault spec: rate outside [0,1] in {clause:?}"));
                    }
                    Trigger::Rate(rate)
                }
            };
            plan.clauses.push(Clause { site: site.to_string(), trigger, arg });
        }
        Ok(plan)
    }

    /// Does any clause fire for this (site, occurrence)? Returns the
    /// matching clause's `arg` (first match wins).
    pub fn fires(&self, site: &str, occurrence: u64) -> Option<Option<u64>> {
        for c in &self.clauses {
            if c.site != site {
                continue;
            }
            let hit = match c.trigger {
                Trigger::At(i) => occurrence == i,
                Trigger::Every(p) => occurrence.is_multiple_of(p),
                Trigger::Rate(r) => {
                    let h = fault_hash(self.seed, site, occurrence) as u128;
                    // rate·2⁶⁴ in u128 so rate = 1.0 fires on every draw.
                    h < (r * 18_446_744_073_709_551_616.0) as u128
                }
            };
            if hit {
                return Some(c.arg);
            }
        }
        None
    }

    /// One-line rendering for startup logs (`site@i, site~0.05 …`).
    pub fn summary(&self) -> String {
        let clauses: Vec<String> = self
            .clauses
            .iter()
            .map(|c| {
                let trig = match c.trigger {
                    Trigger::At(i) => format!("@{i}"),
                    Trigger::Every(p) => format!("%{p}"),
                    Trigger::Rate(r) => format!("~{r}"),
                };
                let arg = c.arg.map(|a| format!(":{a}")).unwrap_or_default();
                format!("{}{trig}{arg}", c.site)
            })
            .collect();
        format!("seed={} {}", self.seed, clauses.join(","))
    }
}

/// FNV-1a over (seed, site, occurrence): the deterministic coin for
/// `~RATE` clauses. Identical inputs fire identically on every run,
/// platform, and thread schedule.
fn fault_hash(seed: u64, site: &str, occurrence: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for chunk in [seed.to_le_bytes(), occurrence.to_le_bytes()] {
        for b in chunk {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    }
    for b in site.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

// ---- process-global registry ---------------------------------------------

/// Fast-path gate: hooks bail on one relaxed load when nothing is
/// installed, so a fault-free run pays nothing measurable.
static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
static COUNTERS: Mutex<Option<HashMap<String, u64>>> = Mutex::new(None);

use crate::lock_clean;

/// Installs `plan` process-globally (replacing any previous plan) and
/// resets all occurrence counters; `None` disables injection.
pub fn install(plan: Option<FaultPlan>) {
    let arc = plan.map(Arc::new);
    ENABLED.store(arc.is_some(), Ordering::Release);
    *lock_clean(&PLAN) = arc;
    *lock_clean(&COUNTERS) = Some(HashMap::new());
}

/// Parses and installs a spec string.
///
/// # Errors
///
/// Propagates [`FaultPlan::parse`] errors; nothing is installed then.
pub fn install_spec(spec: &str) -> Result<(), String> {
    let plan = FaultPlan::parse(spec)?;
    install(Some(plan));
    Ok(())
}

/// Installs a plan from `EOLE_FAULTS` if the variable is set and
/// non-empty; returns the installed plan's summary for logging.
///
/// # Errors
///
/// As [`install_spec`] — a malformed `EOLE_FAULTS` must fail loudly,
/// not silently run fault-free.
pub fn install_from_env() -> Result<Option<String>, String> {
    match std::env::var("EOLE_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            install_spec(&spec)?;
            Ok(current_summary())
        }
        _ => Ok(None),
    }
}

/// True iff a plan is installed (one relaxed load — the hot-path gate).
#[inline]
pub fn active() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Summary of the installed plan, if any.
pub fn current_summary() -> Option<String> {
    lock_clean(&PLAN).as_ref().map(|p| p.summary())
}

/// Stream-counted hook: bumps `site`'s process-global occurrence
/// counter and reports whether a clause fires at this occurrence
/// (`Some(arg)` — `arg` is `Some` only when the clause carried `:ARG`).
#[inline]
pub fn fire(site: &str) -> Option<Option<u64>> {
    if !active() {
        return None;
    }
    let plan = lock_clean(&PLAN).clone()?;
    let occurrence = {
        let mut counters = lock_clean(&COUNTERS);
        let slot = counters.get_or_insert_with(HashMap::new).entry(site.to_string()).or_insert(0);
        let occ = *slot;
        *slot += 1;
        occ
    };
    plan.fires(site, occurrence)
}

/// Keyed hook: like [`fire`] but at an explicit occurrence index (a
/// run's grid position) instead of a stream counter — deterministic at
/// any thread count. Does not touch the counters.
#[inline]
pub fn fires_at(site: &str, occurrence: u64) -> Option<Option<u64>> {
    if !active() {
        return None;
    }
    let plan = lock_clean(&PLAN).clone()?;
    plan.fires(site, occurrence)
}

/// [`fires_at`] that panics with a recognizable message — the injected
/// stand-in for a worker-thread crash.
#[inline]
// lint:allow(error-typing) the injected panic IS this hook's contract (simulated worker crash)
pub fn panic_if_fired(site: &str, occurrence: u64) {
    if fires_at(site, occurrence).is_some() {
        panic!("injected fault: {site}@{occurrence}");
    }
}

/// Sleeps `arg` ms (default 25) if the keyed site fires — the injected
/// stand-in for a wedged or slow run.
#[inline]
pub fn sleep_if_fired(site: &str, occurrence: u64) {
    if let Some(arg) = fires_at(site, occurrence) {
        std::thread::sleep(std::time::Duration::from_millis(arg.unwrap_or(25)));
    }
}

/// Deterministically corrupts a frame or payload in place: flips bits
/// at a salt-derived position (appends a byte if empty), so the same
/// (plan, occurrence) garbles identically on every replay.
pub fn garble(bytes: &mut Vec<u8>, salt: u64) {
    if bytes.is_empty() {
        bytes.push(0xEE);
        return;
    }
    let n = bytes.len();
    let h = fault_hash(salt, "garble", n as u64);
    bytes[(h as usize) % n] ^= 0xA5;
    if n > 1 {
        bytes[((h >> 32) as usize) % n] ^= 0x5A;
    }
}

// ---- test support --------------------------------------------------------

/// Serializes fault-using tests within one binary: the injector is
/// process-global, so concurrent tests would trample each other's
/// plans. Guard construction takes this lock; drop uninstalls the plan
/// and releases it.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// RAII install for tests: holds the cross-test serialization lock and
/// uninstalls on drop, so a plan can never leak into a sibling test.
pub struct InstallGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        install(None);
    }
}

/// Installs `plan` under the test serialization lock (see
/// [`InstallGuard`]). Intended for `#[test]` code in any crate.
pub fn install_guarded(plan: FaultPlan) -> InstallGuard {
    let lock = lock_clean(&TEST_LOCK);
    install(Some(plan));
    InstallGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_every_trigger_kind() {
        let plan =
            FaultPlan::parse("seed=7,sim.panic@3,client.recv.corrupt~0.05,dir.save.io%10:4")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.clauses.len(), 3);
        assert_eq!(plan.clauses[0].trigger, Trigger::At(3));
        assert_eq!(plan.clauses[1].trigger, Trigger::Rate(0.05));
        assert_eq!(plan.clauses[2].trigger, Trigger::Every(10));
        assert_eq!(plan.clauses[2].arg, Some(4));
        assert!(plan.summary().contains("sim.panic@3"));
    }

    #[test]
    fn bad_specs_are_loud_typed_errors() {
        for bad in [
            "nosuch.site@1",       // unknown site
            "sim.panic",           // no trigger
            "sim.panic@x",         // bad index
            "sim.panic~1.5",       // rate out of range
            "dir.save.io%0",       // zero period
            "seed=banana",         // bad seed
            "sim.panic@1:zzz",     // bad arg
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Empty clauses (stray commas) are tolerated.
        assert_eq!(FaultPlan::parse(",,").unwrap(), FaultPlan::default());
    }

    #[test]
    fn at_and_every_fire_exactly_where_scheduled() {
        let plan = FaultPlan::parse("sim.panic@3,dir.save.io%4").unwrap();
        let at: Vec<u64> = (0..10).filter(|&i| plan.fires(SIM_PANIC, i).is_some()).collect();
        assert_eq!(at, vec![3]);
        let every: Vec<u64> = (0..10).filter(|&i| plan.fires(DIR_SAVE_IO, i).is_some()).collect();
        assert_eq!(every, vec![0, 4, 8]);
    }

    #[test]
    fn rate_clauses_replay_identically_and_scale_with_rate() {
        let plan = FaultPlan::parse("seed=11,client.recv.corrupt~0.25").unwrap();
        let draws: Vec<bool> =
            (0..4000).map(|i| plan.fires(CLIENT_RECV_CORRUPT, i).is_some()).collect();
        let replay: Vec<bool> =
            (0..4000).map(|i| plan.fires(CLIENT_RECV_CORRUPT, i).is_some()).collect();
        assert_eq!(draws, replay, "same seed must replay the identical sequence");
        let hits = draws.iter().filter(|&&b| b).count();
        assert!((600..1400).contains(&hits), "~25% of 4000 draws, got {hits}");
        // A different seed draws a different sequence.
        let other = FaultPlan::parse("seed=12,client.recv.corrupt~0.25").unwrap();
        let other_draws: Vec<bool> =
            (0..4000).map(|i| other.fires(CLIENT_RECV_CORRUPT, i).is_some()).collect();
        assert_ne!(draws, other_draws);
        // Rate 0 never fires; rate 1 always fires.
        let never = FaultPlan::parse("client.recv.corrupt~0").unwrap();
        assert!((0..100).all(|i| never.fires(CLIENT_RECV_CORRUPT, i).is_none()));
        let always = FaultPlan::parse("client.recv.corrupt~1").unwrap();
        assert!((0..100).all(|i| always.fires(CLIENT_RECV_CORRUPT, i).is_some()));
    }

    #[test]
    fn global_registry_counts_occurrences_per_site() {
        let _guard = install_guarded(FaultPlan::parse("dir.save.io@1").unwrap());
        assert!(fire(DIR_SAVE_IO).is_none(), "occurrence 0");
        assert!(fire(DIR_SAVE_IO).is_some(), "occurrence 1 fires");
        assert!(fire(DIR_SAVE_IO).is_none(), "occurrence 2");
        // Keyed hooks don't consume stream occurrences.
        assert!(fires_at(SIM_PANIC, 5).is_none());
        drop(_guard);
        assert!(!active(), "guard drop uninstalls the plan");
        assert!(fire(DIR_SAVE_IO).is_none());
    }

    #[test]
    fn garble_always_changes_the_bytes_deterministically() {
        let original = b"the quick brown fox".to_vec();
        let mut a = original.clone();
        let mut b = original.clone();
        garble(&mut a, 42);
        garble(&mut b, 42);
        assert_eq!(a, b, "same salt garbles identically");
        assert_ne!(a, original, "garbling must change the bytes");
        let mut empty = Vec::new();
        garble(&mut empty, 0);
        assert!(!empty.is_empty());
    }
}
