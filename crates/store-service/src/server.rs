//! The `eole-stored` server: a thread-per-connection TCP daemon over a
//! `DirStore`-compatible directory (one `<key>.json` file per entry),
//! adding the three things a *shared* cache needs beyond a directory:
//! single-flight leases, an eviction budget, and crash-safe publication.
//!
//! ## Single-flight leases
//!
//! A `Get` on a cold key atomically grants the requesting *connection* a
//! lease and answers [`crate::proto::Response::Lease`]: that client simulates
//! and publishes with `Put`. Any other connection's `Get` for the same
//! key parks on a condvar (up to the request's `wait_ms`) and is served
//! the payload the moment it is published — or told
//! [`crate::proto::Response::Busy`] so it polls again. A lease dies with its
//! connection (a killed client never wedges the key) and also expires
//! after [`ServerConfig::lease_ttl`] as a backstop against a *hung*
//! client that keeps its socket open.
//!
//! ## Eviction
//!
//! Optional byte and entry budgets ([`ServerConfig::max_bytes`],
//! [`ServerConfig::max_entries`]) are enforced after every `Put` (and
//! once at startup) by evicting least-recently-accessed entries —
//! access = hit or publish, with on-disk mtimes doubling as the
//! cross-restart access record. Keys with an active lease or parked
//! waiters are never evicted, and neither is the entry just published
//! (its waiters have not read it yet).
//!
//! ## Publication
//!
//! Payload files are written to a process-unique temp name and renamed
//! into place — the same discipline `DirStore` uses — so a crashed
//! daemon can leave at worst a stray `.tmp` file, never a torn entry.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant, SystemTime};

use crate::faults;
use crate::proto::{
    decode_request, encode_response, read_frame, valid_key, write_frame, Request, Response,
    ServiceStats, ERR_EVICTED, ERR_GENERIC, PROTO_VERSION,
};
use crate::StoreError;

/// Tuning knobs of one `eole-stored` instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Directory holding one `<key>.json` per entry (created if absent;
    /// shareable with `DirStore`).
    pub dir: PathBuf,
    /// Evict down to this many payload bytes (`None` = unbounded).
    pub max_bytes: Option<u64>,
    /// Evict down to this many entries (`None` = unbounded).
    pub max_entries: Option<usize>,
    /// Backstop expiry for a lease whose holder keeps the connection open
    /// but never publishes; sized for the slowest expected simulation.
    pub lease_ttl: Duration,
    /// Client-side delay hinted by a `Busy` response.
    pub busy_retry_ms: u32,
}

impl ServerConfig {
    /// Defaults: unbounded budgets, 120 s lease TTL, 50 ms busy hint.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            dir: dir.into(),
            max_bytes: None,
            max_entries: None,
            lease_ttl: Duration::from_secs(120),
            busy_retry_ms: 50,
        }
    }
}

#[derive(Debug)]
struct Entry {
    bytes: u64,
    last_access: u64,
}

#[derive(Debug)]
struct Lease {
    conn_id: u64,
    deadline: Instant,
}

#[derive(Debug, Default)]
struct State {
    entries: HashMap<String, Entry>,
    total_bytes: u64,
    leases: HashMap<String, Lease>,
    /// Connections currently parked on a key's lease — such keys are
    /// pinned against eviction until the waiters have read them.
    waiters: HashMap<String, usize>,
    tick: u64,
    stats: ServiceStats,
}

#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    state: Mutex<State>,
    published: Condvar,
    stop: AtomicBool,
    active_conns: AtomicUsize,
    next_conn: AtomicU64,
}

/// Cross-process- and cross-instance-unique temp names: two daemons (or a
/// daemon and a `DirStore`) sharing one directory can never collide.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn payload_path(dir: &std::path::Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.json"))
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Poisoning-proof state lock: a panicking connection thread must
    /// not wedge every other connection behind a `PoisonError`.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        crate::lock_clean(&self.state)
    }

    /// Atomic publish: temp + rename, then index update and waiter wakeup.
    fn publish(&self, key: &str, payload: &[u8]) -> Result<(), StoreError> {
        let tmp = self.config.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let path = payload_path(&self.config.dir, key);
        std::fs::write(&tmp, payload)
            .map_err(|e| StoreError::Io(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| StoreError::Io(format!("rename {} -> {}: {e}", tmp.display(), path.display())))?;
        let mut st = self.lock_state();
        st.tick += 1;
        let tick = st.tick;
        let new_bytes = payload.len() as u64;
        let old = st.entries.insert(key.to_string(), Entry { bytes: new_bytes, last_access: tick });
        st.total_bytes = st.total_bytes - old.map_or(0, |e| e.bytes) + new_bytes;
        st.leases.remove(key);
        st.stats.puts += 1;
        self.evict(&mut st, Some(key));
        drop(st);
        self.published.notify_all();
        Ok(())
    }

    /// Evicts least-recently-accessed entries until the budgets hold.
    /// Leased keys hold no entry by construction; keys with parked
    /// waiters and the just-published `protect` key are skipped.
    fn evict(&self, st: &mut State, protect: Option<&str>) {
        let over = |st: &State| {
            self.config.max_bytes.is_some_and(|b| st.total_bytes > b)
                || self.config.max_entries.is_some_and(|n| st.entries.len() > n)
        };
        while over(st) {
            let candidate = st
                .entries
                .iter()
                .filter(|(k, _)| {
                    protect != Some(k.as_str())
                        && st.waiters.get(k.as_str()).copied().unwrap_or(0) == 0
                        && !st.leases.contains_key(k.as_str())
                })
                .min_by_key(|(_, e)| e.last_access)
                .map(|(k, _)| k.clone());
            let Some(key) = candidate else { break };
            let Some(entry) = st.entries.remove(&key) else { break };
            st.total_bytes -= entry.bytes;
            st.stats.evictions += 1;
            let _ = std::fs::remove_file(payload_path(&self.config.dir, &key));
        }
    }

    /// The single-flight lookup. Returns `Hit` / `Lease` / `Busy`.
    fn get(&self, conn_id: u64, key: &str, wait_ms: u32) -> Response {
        let deadline = Instant::now() + Duration::from_millis(u64::from(wait_ms));
        let mut st = self.lock_state();
        let mut waiting = false;
        let unregister = |st: &mut State, waiting: bool| {
            if waiting {
                if let Some(n) = st.waiters.get_mut(key) {
                    *n -= 1;
                    if *n == 0 {
                        st.waiters.remove(key);
                    }
                }
            }
        };
        loop {
            if st.entries.contains_key(key) {
                let path = payload_path(&self.config.dir, key);
                match std::fs::read(&path) {
                    Ok(payload) => {
                        st.tick += 1;
                        let tick = st.tick;
                        if let Some(e) = st.entries.get_mut(key) {
                            e.last_access = tick;
                        }
                        st.stats.hits += 1;
                        unregister(&mut st, waiting);
                        // Persist the access for cross-restart LRU;
                        // best-effort (a read-only volume just loses
                        // recency refinement, not correctness).
                        if let Ok(f) = std::fs::File::open(&path) {
                            let _ = f.set_modified(SystemTime::now());
                        }
                        return Response::Hit { payload };
                    }
                    Err(_) => {
                        // The file vanished or broke under us: drop the
                        // index entry and fall through to the miss path.
                        if let Some(entry) = st.entries.remove(key) {
                            st.total_bytes -= entry.bytes;
                        }
                    }
                }
            }
            let now = Instant::now();
            let lease = st.leases.get(key).map(|l| (l.conn_id, l.deadline));
            match lease {
                Some((holder, _)) if holder == conn_id => {
                    // Re-grant to the holder (refreshing the TTL): the
                    // same client asking again still owes exactly one
                    // simulation, and answering Busy could deadlock a
                    // single-connection client against itself.
                    st.leases.insert(
                        key.to_string(),
                        Lease { conn_id, deadline: now + self.config.lease_ttl },
                    );
                    unregister(&mut st, waiting);
                    return Response::Lease;
                }
                Some((_, lease_deadline))
                    if now >= lease_deadline
                        || faults::fire(faults::SERVER_LEASE_EXPIRE).is_some() =>
                {
                    // Expired: the holder hung. Drop the lease; the loop
                    // re-evaluates and grants it to this connection.
                    st.leases.remove(key);
                    st.stats.leases_expired += 1;
                }
                Some((_, lease_deadline)) => {
                    if now >= deadline || self.stopping() {
                        unregister(&mut st, waiting);
                        return Response::Busy { retry_ms: self.config.busy_retry_ms };
                    }
                    if !waiting {
                        waiting = true;
                        *st.waiters.entry(key.to_string()).or_default() += 1;
                        st.stats.lease_waits += 1;
                    }
                    // Sleep until publish, lease expiry, or our own
                    // deadline — whichever comes first.
                    let until = deadline.min(lease_deadline);
                    let dur = until.saturating_duration_since(now);
                    let (guard, _) = self
                        .published
                        .wait_timeout(st, dur)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                }
                None => {
                    st.stats.misses += 1;
                    st.stats.leases_granted += 1;
                    st.leases.insert(
                        key.to_string(),
                        Lease { conn_id, deadline: now + self.config.lease_ttl },
                    );
                    unregister(&mut st, waiting);
                    return Response::Lease;
                }
            }
        }
    }

    fn abandon(&self, conn_id: u64, key: &str) {
        let mut st = self.lock_state();
        if st.leases.get(key).is_some_and(|l| l.conn_id == conn_id) {
            st.leases.remove(key);
            drop(st);
            // Wake waiters so one of them claims a fresh lease.
            self.published.notify_all();
        }
    }

    fn release_connection(&self, conn_id: u64) {
        let mut st = self.lock_state();
        let before = st.leases.len();
        st.leases.retain(|_, l| l.conn_id != conn_id);
        let released = before != st.leases.len();
        drop(st);
        if released {
            self.published.notify_all();
        }
    }

    fn stats(&self) -> ServiceStats {
        let st = self.lock_state();
        ServiceStats {
            entries: st.entries.len() as u64,
            bytes: st.total_bytes,
            ..st.stats
        }
    }
}

/// A bound (but not yet serving) store server.
#[derive(Debug)]
pub struct StoreServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl StoreServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), creates
    /// the store directory, seeds the LRU index from the files already
    /// present (ordered by mtime), and applies the eviction budget once.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created or the
    /// address cannot be bound.
    pub fn bind(addr: &str, config: ServerConfig) -> Result<StoreServer, StoreError> {
        std::fs::create_dir_all(&config.dir)
            .map_err(|e| StoreError::Io(format!("create store dir {}: {e}", config.dir.display())))?;
        let listener =
            TcpListener::bind(addr).map_err(|e| StoreError::Io(format!("bind {addr}: {e}")))?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            published: Condvar::new(),
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            next_conn: AtomicU64::new(1),
            config,
        });
        let mut found: Vec<(String, u64, SystemTime)> = Vec::new();
        if let Ok(dir) = std::fs::read_dir(&shared.config.dir) {
            for e in dir.filter_map(Result::ok) {
                let path = e.path();
                let Some(stem) = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .and_then(|n| n.strip_suffix(".json"))
                else {
                    continue;
                };
                if !valid_key(stem) {
                    continue;
                }
                if let Ok(meta) = e.metadata() {
                    let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                    found.push((stem.to_string(), meta.len(), mtime));
                }
            }
        }
        found.sort_by_key(|(_, _, mtime)| *mtime);
        {
            let mut st = shared.lock_state();
            for (key, bytes, _) in found {
                st.tick += 1;
                let tick = st.tick;
                st.total_bytes += bytes;
                st.entries.insert(key, Entry { bytes, last_access: tick });
            }
            shared.evict(&mut st, None);
        }
        Ok(StoreServer { listener, shared })
    }

    /// The bound address (resolves an ephemeral port request).
    ///
    /// # Panics
    ///
    /// Never in practice — a bound listener always has a local address.
    pub fn local_addr(&self) -> SocketAddr {
        // lint:allow(error-typing) documented `# Panics`: a bound listener always has a local address
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Entries currently stored (test/CLI introspection shortcut).
    pub fn entries(&self) -> usize {
        self.shared.stats().entries as usize
    }

    /// Serves until [`ServerHandle::shutdown`] (from a [`StoreServer::spawn`]ed
    /// instance) or process death; one thread per connection.
    pub fn serve(self) {
        for stream in self.listener.incoming() {
            if self.shared.stopping() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            shared.active_conns.fetch_add(1, Ordering::AcqRel);
            std::thread::spawn(move || {
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                serve_connection(&shared, stream, conn_id);
                shared.release_connection(conn_id);
                shared.active_conns.fetch_sub(1, Ordering::AcqRel);
            });
        }
    }

    /// Runs the accept loop on a background thread and returns a handle
    /// for tests and in-process embedding.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.serve());
        ServerHandle { addr, shared, thread }
    }
}

/// Handle to a [`StoreServer::spawn`]ed server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters snapshot (same numbers a `Stats` request returns).
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Stops accepting, wakes parked waiters, closes live connections
    /// (they poll a stop flag between requests), and joins the accept
    /// loop. Waits up to ~2 s for connection threads to drain.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.published.notify_all();
        // Nudge the blocking accept so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.active_conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Per-connection request loop. The read timeout doubles as the stop-flag
/// poll interval, so a shutdown tears down idle connections within ~250 ms.
fn serve_connection(shared: &Shared, mut stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut shook_hands = false;
    loop {
        if shared.stopping() {
            return;
        }
        let mut body = match read_frame(&mut stream) {
            Ok(body) => body,
            Err(StoreError::Timeout(_)) => continue, // idle poll; check stop and re-read
            Err(_) => return,                        // EOF, reset, or an oversized frame
        };
        if faults::fire(faults::SERVER_RECV_CORRUPT).is_some() {
            faults::garble(&mut body, conn_id);
        }
        let (response, fatal) = match decode_request(&body) {
            Ok(Request::Ping { proto }) if proto == PROTO_VERSION => {
                shook_hands = true;
                (Response::Pong { proto: PROTO_VERSION.to_string() }, false)
            }
            Ok(Request::Ping { proto }) => (
                Response::Err {
                    code: ERR_GENERIC,
                    msg: format!("server speaks {PROTO_VERSION}, client sent {proto}"),
                },
                true,
            ),
            Ok(_) if !shook_hands => (
                Response::Err {
                    code: ERR_GENERIC,
                    msg: "handshake required: send Ping first".to_string(),
                },
                true,
            ),
            Ok(Request::Get { key, wait_ms }) if valid_key(&key) => {
                (shared.get(conn_id, &key, wait_ms), false)
            }
            Ok(Request::Put { key, payload }) if valid_key(&key) => {
                if shared.config.max_bytes.is_some_and(|b| payload.len() as u64 > b) {
                    // The publisher is giving up on this key as far as the
                    // store is concerned; release its lease so waiters
                    // simulate for themselves instead of idling out the TTL.
                    shared.abandon(conn_id, &key);
                    (
                        Response::Err {
                            code: ERR_EVICTED,
                            msg: format!(
                                "payload of {} bytes exceeds the {}-byte budget",
                                payload.len(),
                                shared.config.max_bytes.unwrap_or(0)
                            ),
                        },
                        false,
                    )
                } else {
                    match shared.publish(&key, &payload) {
                        Ok(()) => (Response::Ok, false),
                        Err(e) => {
                            (Response::Err { code: ERR_GENERIC, msg: e.to_string() }, false)
                        }
                    }
                }
            }
            Ok(Request::Abandon { key }) if valid_key(&key) => {
                shared.abandon(conn_id, &key);
                (Response::Ok, false)
            }
            Ok(Request::Get { key, .. } | Request::Put { key, .. } | Request::Abandon { key }) => (
                Response::Err { code: ERR_GENERIC, msg: format!("invalid key {key:?}") },
                true,
            ),
            Ok(Request::Stats) => (Response::Stats(shared.stats()), false),
            // Undecodable request: answer (the peer may still be reading)
            // and close — the stream offset can no longer be trusted.
            Err(e) => (Response::Err { code: ERR_GENERIC, msg: e.to_string() }, true),
        };
        if write_frame(&mut stream, &encode_response(&response)).is_err() || fatal {
            return;
        }
    }
}
