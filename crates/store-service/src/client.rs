//! The `eole-store/v2` client: one lazily-(re)connected TCP connection,
//! guarded for multi-threaded use, with connect/read timeouts and bounded
//! retry-with-backoff — the robustness layer that lets a caller treat the
//! daemon as *optional* (every failure is a typed [`StoreError`], never a
//! panic or a hang).
//!
//! The connection matters for more than efficiency: single-flight leases
//! are scoped to a connection server-side, so a client must issue the
//! `Get` that granted a lease and the `Put` that publishes it over the
//! *same* logical client. Losing the connection mid-lease releases the
//! lease (another client may pick it up — a duplicated simulation at
//! worst, never a lost result, since `Put` publishes with or without a
//! lease).

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use crate::faults;
use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, ServiceStats,
    ERR_EVICTED, PROTO_VERSION,
};
use crate::StoreError;

/// Client tuning knobs.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// `host:port` of the daemon.
    pub addr: String,
    /// Deadline for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for one response (extended by `wait_ms` on `Get`s, which
    /// the server may legitimately hold that long).
    pub io_timeout: Duration,
    /// Transport-failure retries per request (each reconnects; protocol
    /// errors are never retried — a confused peer stays confused).
    pub retries: u32,
    /// Base backoff between retries (doubles per attempt).
    pub backoff: Duration,
}

impl ClientConfig {
    /// Defaults tuned for a loopback or rack-local daemon: 2 s connect,
    /// 10 s I/O, 3 retries from 100 ms backoff.
    pub fn new(addr: impl Into<String>) -> Self {
        ClientConfig {
            addr: addr.into(),
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            retries: 3,
            backoff: Duration::from_millis(100),
        }
    }
}

/// Outcome of a single-flight [`StoreClient::get`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GetOutcome {
    /// The stored payload.
    Hit(Vec<u8>),
    /// This client now holds the key's lease: produce the payload and
    /// [`StoreClient::put`] it (or [`StoreClient::abandon`] on failure).
    Lease,
    /// Another client holds the lease; poll again after `retry_ms`.
    Busy {
        /// Server-suggested delay before the next poll.
        retry_ms: u32,
    },
}

/// A thread-safe client over one pooled connection.
#[derive(Debug)]
pub struct StoreClient {
    config: ClientConfig,
    conn: Mutex<Option<TcpStream>>,
}

impl StoreClient {
    /// Builds a client and verifies the daemon is reachable and speaks
    /// [`PROTO_VERSION`] (one `Ping` round-trip).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]/[`StoreError::Timeout`] if the daemon is
    /// unreachable, [`StoreError::Protocol`] on a version mismatch.
    pub fn connect(config: ClientConfig) -> Result<StoreClient, StoreError> {
        let client = StoreClient { config, conn: Mutex::new(None) };
        let stream = client.dial()?;
        *crate::lock_clean(&client.conn) = Some(stream);
        Ok(client)
    }

    /// The configured daemon address.
    pub fn addr(&self) -> &str {
        &self.config.addr
    }

    /// One TCP connect + handshake (no retries here; [`StoreClient::request`]
    /// owns the retry loop).
    fn dial(&self) -> Result<TcpStream, StoreError> {
        let addrs: Vec<_> = self
            .config
            .addr
            .to_socket_addrs()
            .map_err(|e| StoreError::Io(format!("resolve {}: {e}", self.config.addr)))?
            .collect();
        let mut last = StoreError::Io(format!("{} resolved to no addresses", self.config.addr));
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream
                        .set_read_timeout(Some(self.config.io_timeout))
                        .map_err(|e| StoreError::Io(format!("set read timeout: {e}")))?;
                    stream
                        .set_write_timeout(Some(self.config.io_timeout))
                        .map_err(|e| StoreError::Io(format!("set write timeout: {e}")))?;
                    let mut stream = stream;
                    let ping = Request::Ping { proto: PROTO_VERSION.to_string() };
                    write_frame(&mut stream, &encode_request(&ping))?;
                    return match decode_response(&read_frame(&mut stream)?)? {
                        Response::Pong { proto } if proto == PROTO_VERSION => Ok(stream),
                        Response::Pong { proto } => Err(StoreError::Protocol(format!(
                            "daemon speaks {proto}, this client speaks {PROTO_VERSION}"
                        ))),
                        Response::Err { msg, .. } => Err(StoreError::Protocol(msg)),
                        other => Err(StoreError::Protocol(format!(
                            "unexpected handshake response {other:?}"
                        ))),
                    };
                }
                Err(e) => {
                    last = match e.kind() {
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                            StoreError::Timeout(format!("connect {addr}: {e}"))
                        }
                        _ => StoreError::Io(format!("connect {addr}: {e}")),
                    };
                }
            }
        }
        Err(last)
    }

    /// One request/response exchange with reconnect-and-retry on
    /// transport failure. `extra_wait` stretches the read deadline for
    /// requests the server may legitimately hold (`Get` with `wait_ms`).
    fn request(&self, req: &Request, extra_wait: Duration) -> Result<Response, StoreError> {
        let mut guard = crate::lock_clean(&self.conn);
        let mut attempt = 0u32;
        loop {
            let result = (|| -> Result<Response, StoreError> {
                if guard.is_none() {
                    *guard = Some(self.dial()?);
                }
                let stream = guard
                    .as_mut()
                    .ok_or_else(|| StoreError::Io("connection missing after dial".to_string()))?;
                stream
                    .set_read_timeout(Some(self.config.io_timeout + extra_wait))
                    .map_err(|e| StoreError::Io(format!("set read timeout: {e}")))?;
                // Chaos hooks (inside the attempt closure, so an injected
                // transport fault exercises the same reconnect-and-retry
                // path a real one would).
                if let Some(arg) = faults::fire(faults::CLIENT_DELAY) {
                    std::thread::sleep(Duration::from_millis(arg.unwrap_or(25)));
                }
                if faults::fire(faults::CLIENT_SEND_IO).is_some() {
                    return Err(StoreError::Io("injected fault: client.send.io".to_string()));
                }
                write_frame(stream, &encode_request(req))?;
                let mut body = read_frame(stream)?;
                if let Some(salt) = faults::fire(faults::CLIENT_RECV_CORRUPT) {
                    faults::garble(&mut body, salt.unwrap_or(0));
                }
                if faults::fire(faults::CLIENT_RECV_TRUNCATE).is_some() {
                    body.truncate(body.len() / 2);
                }
                decode_response(&body)
            })();
            match result {
                Ok(resp) => return Ok(resp),
                // A protocol error is not transient; a corrupt error
                // cannot come from the transport. Everything else gets a
                // fresh connection and a bounded, backed-off retry.
                Err(e @ (StoreError::Protocol(_) | StoreError::Corrupt(_))) => {
                    *guard = None;
                    return Err(e);
                }
                Err(e) => {
                    *guard = None;
                    if attempt >= self.config.retries {
                        return Err(e);
                    }
                    std::thread::sleep(self.config.backoff * 2u32.pow(attempt.min(8)));
                    attempt += 1;
                }
            }
        }
    }

    /// Single-flight lookup; the server holds the response up to
    /// `wait_ms` when another connection holds the key's lease.
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`] on transport/protocol failure or an `Err`
    /// response.
    pub fn get(&self, key: &str, wait_ms: u32) -> Result<GetOutcome, StoreError> {
        let req = Request::Get { key: key.to_string(), wait_ms };
        match self.request(&req, Duration::from_millis(u64::from(wait_ms)))? {
            Response::Hit { payload } => Ok(GetOutcome::Hit(payload)),
            Response::Lease => Ok(GetOutcome::Lease),
            Response::Busy { retry_ms } => Ok(GetOutcome::Busy { retry_ms }),
            other => Err(unexpected(&other)),
        }
    }

    /// Publishes `payload` under `key` (releasing any lease this client
    /// holds on it, waking the waiters).
    ///
    /// # Errors
    ///
    /// [`StoreError::Evicted`] if the payload exceeds the daemon's byte
    /// budget; otherwise as [`StoreClient::get`].
    pub fn put(&self, key: &str, payload: Vec<u8>) -> Result<(), StoreError> {
        match self.request(&Request::Put { key: key.to_string(), payload }, Duration::ZERO)? {
            Response::Ok => Ok(()),
            Response::Err { code: ERR_EVICTED, .. } => Err(StoreError::Evicted),
            other => Err(unexpected(&other)),
        }
    }

    /// Releases this client's lease on `key` without publishing.
    ///
    /// # Errors
    ///
    /// As [`StoreClient::get`].
    pub fn abandon(&self, key: &str) -> Result<(), StoreError> {
        match self.request(&Request::Abandon { key: key.to_string() }, Duration::ZERO)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Service counters snapshot.
    ///
    /// # Errors
    ///
    /// As [`StoreClient::get`].
    pub fn stats(&self) -> Result<ServiceStats, StoreError> {
        match self.request(&Request::Stats, Duration::ZERO)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> StoreError {
    match resp {
        Response::Err { msg, .. } => StoreError::Protocol(msg.clone()),
        other => StoreError::Protocol(format!("unexpected response {other:?}")),
    }
}
